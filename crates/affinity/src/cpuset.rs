//! Affinity masks (cpusets) over the hardware threads of a node.

use std::fmt;

/// A set of OS processor IDs, the unit in which all affinity interfaces
/// (`sched_setaffinity`, `taskset`, `pthread_setaffinity_np`) express
/// bindings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CpuSet {
    bits: Vec<u64>,
}

impl CpuSet {
    /// The empty set.
    pub fn new() -> Self {
        CpuSet::default()
    }

    /// A set containing a single hardware thread.
    pub fn single(cpu: usize) -> Self {
        let mut s = CpuSet::new();
        s.insert(cpu);
        s
    }

    /// A set containing all hardware threads `0..n`.
    pub fn all(n: usize) -> Self {
        let mut s = CpuSet::new();
        for cpu in 0..n {
            s.insert(cpu);
        }
        s
    }

    /// Insert a hardware thread.
    pub fn insert(&mut self, cpu: usize) {
        let word = cpu / 64;
        if self.bits.len() <= word {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << (cpu % 64);
    }

    /// Remove a hardware thread.
    pub fn remove(&mut self, cpu: usize) {
        let word = cpu / 64;
        if let Some(w) = self.bits.get_mut(word) {
            *w &= !(1 << (cpu % 64));
        }
    }

    /// Whether the set contains a hardware thread.
    pub fn contains(&self, cpu: usize) -> bool {
        self.bits.get(cpu / 64).map_or(false, |w| w & (1 << (cpu % 64)) != 0)
    }

    /// Number of hardware threads in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(word, &w)| {
            (0..64).filter_map(
                move |bit| {
                    if w & (1 << bit) != 0 {
                        Some(word * 64 + bit)
                    } else {
                        None
                    }
                },
            )
        })
    }

    /// Union with another set.
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        let mut out = self.clone();
        for cpu in other.iter() {
            out.insert(cpu);
        }
        out
    }

    /// Intersection with another set.
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        let mut out = CpuSet::new();
        for cpu in self.iter() {
            if other.contains(cpu) {
                out.insert(cpu);
            }
        }
        out
    }
}

impl fmt::Display for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let members: Vec<String> = self.iter().map(|c| c.to_string()).collect();
        write!(f, "{{{}}}", members.join(","))
    }
}

impl FromIterator<usize> for CpuSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = CpuSet::new();
        for cpu in iter {
            s.insert(cpu);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = CpuSet::new();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(70);
        assert!(s.contains(3));
        assert!(s.contains(70));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let s: CpuSet = [5usize, 1, 64, 2].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 5, 64]);
    }

    #[test]
    fn union_and_intersection() {
        let a: CpuSet = [0usize, 1, 2].into_iter().collect();
        let b: CpuSet = [2usize, 3].into_iter().collect();
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn all_and_single_constructors() {
        assert_eq!(CpuSet::all(4).len(), 4);
        assert_eq!(CpuSet::single(7).iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn display_lists_members() {
        let s: CpuSet = [1usize, 3].into_iter().collect();
        assert_eq!(s.to_string(), "{1,3}");
    }

    #[test]
    fn removing_from_out_of_range_is_a_noop() {
        let mut s = CpuSet::single(1);
        s.remove(500);
        assert_eq!(s.len(), 1);
    }
}

//! Best-effort affinity control on the real host.
//!
//! The simulated machine carries all reproduced experiments, but the tool
//! binaries can also pin the *actual* process when run on a Linux host —
//! the same `sched_setaffinity`/`sched_getaffinity` calls the real
//! `likwid-pin` wrapper issues. Everything here degrades gracefully: on
//! unsupported platforms or when the syscall fails, the functions report
//! the failure instead of panicking, and nothing in the test suite depends
//! on them succeeding.

use crate::cpuset::CpuSet;

/// Number of CPUs the host operating system reports, if determinable.
pub fn host_cpu_count() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        let n = unsafe { libc::sysconf(libc::_SC_NPROCESSORS_ONLN) };
        if n > 0 {
            return Some(n as usize);
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Bind the calling thread to the given set of host CPUs. Returns `false`
/// if the platform does not support it or the syscall failed.
pub fn set_current_thread_affinity(cpus: &CpuSet) -> bool {
    #[cfg(target_os = "linux")]
    {
        if cpus.is_empty() {
            return false;
        }
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            libc::CPU_ZERO(&mut set);
            for cpu in cpus.iter() {
                if cpu < libc::CPU_SETSIZE as usize {
                    libc::CPU_SET(cpu, &mut set);
                }
            }
            libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cpus;
        false
    }
}

/// The set of host CPUs the calling thread is currently allowed to run on.
pub fn get_current_thread_affinity() -> Option<CpuSet> {
    #[cfg(target_os = "linux")]
    {
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            if libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set) != 0 {
                return None;
            }
            let mut cpus = CpuSet::new();
            for cpu in 0..libc::CPU_SETSIZE as usize {
                if libc::CPU_ISSET(cpu, &set) {
                    cpus.insert(cpu);
                }
            }
            Some(cpus)
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cpu_count_is_positive_when_reported() {
        if let Some(n) = host_cpu_count() {
            assert!(n >= 1);
        }
    }

    #[test]
    fn get_affinity_reports_a_nonempty_mask_on_linux() {
        if let Some(set) = get_current_thread_affinity() {
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn set_affinity_to_current_mask_round_trips() {
        // Re-applying the current mask must succeed on Linux and be a no-op
        // everywhere else.
        if let Some(current) = get_current_thread_affinity() {
            assert!(set_current_thread_affinity(&current));
            assert_eq!(get_current_thread_affinity(), Some(current));
        }
    }

    #[test]
    fn empty_set_is_rejected() {
        assert!(!set_current_thread_affinity(&CpuSet::new()));
    }
}

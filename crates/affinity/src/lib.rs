//! Thread/process affinity substrate.
//!
//! `likwid-pin` enforces thread-core affinity "from the outside": it starts
//! the target application with a wrapper library preloaded that intercepts
//! `pthread_create` and pins each newly created thread to the next entry of
//! a core-ID list, skipping management ("shepherd") threads according to a
//! skip mask. This crate models every piece of that mechanism:
//!
//! * [`cpuset::CpuSet`] — affinity masks over the node's hardware threads;
//! * [`pinlist`] — parsing of the `-c` pin lists (`0-3`, `0,2,4`, `S1:0-2`);
//! * [`skipmask`] — the `-s 0x3` skip masks and the per-compiler defaults
//!   (`-t intel`, `-t gnu`);
//! * [`pinner::PthreadPinner`] — the interception state machine itself:
//!   which created thread ends up on which hardware thread;
//! * [`scheduler::SimScheduler`] — the *absence* of pinning: a simulated
//!   OS scheduler that places threads with realistic randomness, used to
//!   reproduce the unpinned STREAM distributions of Figures 4, 7 and 9;
//! * [`host`] — best-effort real-host affinity through `libc` for running
//!   the tools against the actual Linux machine (never required by tests).

pub mod cpuset;
pub mod host;
pub mod pinlist;
pub mod pinner;
pub mod scheduler;
pub mod skipmask;

pub use cpuset::CpuSet;
pub use pinlist::{parse_pin_list, parse_pin_list_lenient, PinListError};
pub use pinner::{PinOutcome, PthreadPinner};
pub use scheduler::{PlacementStrategy, SimScheduler};
pub use skipmask::{SkipMask, ThreadingModel};

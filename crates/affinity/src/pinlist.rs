//! Parsing of `likwid-pin -c` pin lists.
//!
//! The paper-era syntax is a comma-separated list of OS processor IDs and
//! ranges (`-c 0-3`, `-c 0,2,4,6`). This module additionally supports the
//! socket-relative form `S<socket>:<list>` (e.g. `S0:0-2,S1:0-2`), which
//! expands to physical cores of that socket in the order "physical cores
//! first, then SMT threads" — the distribution used for the pinned STREAM
//! runs (Figures 5, 8 and 10).

use likwid_x86_machine::TopologySpec;

/// Errors from pin-list parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinListError {
    /// The expression could not be parsed.
    Syntax(String),
    /// A processor or socket index is out of range for this machine.
    OutOfRange(String),
}

impl std::fmt::Display for PinListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinListError::Syntax(s) => write!(f, "cannot parse pin expression '{s}'"),
            PinListError::OutOfRange(s) => write!(f, "pin expression '{s}' is out of range"),
        }
    }
}

impl std::error::Error for PinListError {}

/// Parse a numeric list/range expression ("0-3", "0,2,4", "3").
fn parse_numeric_list(expr: &str) -> Result<Vec<usize>, PinListError> {
    let mut out = Vec::new();
    for part in expr.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            let lo: usize =
                lo.trim().parse().map_err(|_| PinListError::Syntax(part.to_string()))?;
            let hi: usize =
                hi.trim().parse().map_err(|_| PinListError::Syntax(part.to_string()))?;
            if hi < lo {
                return Err(PinListError::Syntax(part.to_string()));
            }
            out.extend(lo..=hi);
        } else {
            out.push(part.parse().map_err(|_| PinListError::Syntax(part.to_string()))?);
        }
    }
    Ok(out)
}

/// Parse a full `-c` pin list against a machine topology, returning the OS
/// processor IDs in pinning order.
///
/// Supported forms (mixed freely, separated by commas at the top level for
/// numeric entries):
///
/// * `0-5`, `0,2,4` — literal OS processor IDs;
/// * `S<k>:<list>` — the *n*-th physical core of socket *k* in "cores
///   first, SMT threads second" order; several socket expressions are
///   separated by `@` (e.g. `S0:0-1@S1:0-1`).
pub fn parse_pin_list(expr: &str, topo: &TopologySpec) -> Result<Vec<usize>, PinListError> {
    expand_pin_list(expr, topo, false)
}

/// Like [`parse_pin_list`], but *lenient*: entries naming hardware threads
/// (or whole sockets) that do not exist on this machine are dropped instead
/// of failing the expression. This is the semantic a benchmark harness
/// wants — `S0:0-3` means "up to four threads of socket 0" and works on
/// everything from a single-core Pentium M to a two-socket Westmere node.
/// Syntax errors still fail, and so does an expression that selects nothing
/// at all.
pub fn parse_pin_list_lenient(expr: &str, topo: &TopologySpec) -> Result<Vec<usize>, PinListError> {
    expand_pin_list(expr, topo, true)
}

/// The one expansion behind both parsers. `lenient` decides the policy for
/// entries the machine does not have: skip them, or fail the expression.
fn expand_pin_list(
    expr: &str,
    topo: &TopologySpec,
    lenient: bool,
) -> Result<Vec<usize>, PinListError> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err(PinListError::Syntax(String::new()));
    }

    let mut out = Vec::new();
    if expr.starts_with('S') || expr.contains('@') {
        // Socket-relative form.
        for part in expr.split('@') {
            let part = part.trim();
            let Some(rest) = part.strip_prefix('S') else {
                return Err(PinListError::Syntax(part.to_string()));
            };
            let Some((socket_str, list_str)) = rest.split_once(':') else {
                return Err(PinListError::Syntax(part.to_string()));
            };
            let socket: u32 =
                socket_str.parse().map_err(|_| PinListError::Syntax(part.to_string()))?;
            if socket >= topo.sockets {
                if lenient {
                    // The whole domain does not exist here — skip it, but a
                    // typo'd entry list must still be a syntax error.
                    parse_numeric_list(list_str)?;
                    continue;
                }
                return Err(PinListError::OutOfRange(part.to_string()));
            }
            let entries = parse_numeric_list(list_str)?;
            if entries.is_empty() && !lenient {
                // "S0:" or "S0:," — a socket domain must select something.
                return Err(PinListError::Syntax(part.to_string()));
            }
            // "Physical cores first, then SMT threads": the k-th entry of a
            // socket is the k-th physical core's SMT thread 0 for
            // k < cores_per_socket, then SMT thread 1 of the (k - cores)-th
            // core, and so on.
            let cores = topo.socket_cores(socket);
            let cores_per_socket = cores.len();
            for k in entries {
                let smt = k / cores_per_socket;
                let core = k % cores_per_socket;
                match cores.get(core).and_then(|c| c.get(smt)) {
                    Some(&id) => out.push(id),
                    None if lenient => {}
                    None => return Err(PinListError::OutOfRange(part.to_string())),
                }
            }
        }
    } else {
        // Plain numeric form.
        for id in parse_numeric_list(expr)? {
            if id < topo.num_hw_threads() {
                out.push(id);
            } else if !lenient {
                return Err(PinListError::OutOfRange(id.to_string()));
            }
        }
    }

    if lenient && out.is_empty() {
        return Err(PinListError::OutOfRange(expr.to_string()));
    }
    Ok(out)
}

/// Expand a "scatter" placement: threads distributed round-robin across
/// sockets, physical cores before SMT threads — the placement
/// `KMP_AFFINITY=scatter` produces and the one used for the pinned STREAM
/// figures.
pub fn scatter_placement(topo: &TopologySpec, num_threads: usize) -> Vec<usize> {
    // Build per-socket lists in "cores first, then SMT" order.
    let per_socket: Vec<Vec<usize>> = (0..topo.sockets)
        .map(|s| {
            let cores = topo.socket_cores(s);
            let mut list = Vec::new();
            for smt in 0..topo.threads_per_core as usize {
                for core in &cores {
                    if let Some(&id) = core.get(smt) {
                        list.push(id);
                    }
                }
            }
            list
        })
        .collect();

    let mut out = Vec::with_capacity(num_threads);
    let mut index = vec![0usize; topo.sockets as usize];
    let mut socket = 0usize;
    while out.len() < num_threads {
        let s = socket % topo.sockets as usize;
        if let Some(&id) = per_socket[s].get(index[s]) {
            out.push(id);
            index[s] += 1;
        } else {
            // All sockets exhausted: wrap around (oversubscription).
            if index.iter().zip(&per_socket).all(|(i, l)| *i >= l.len()) {
                index.iter_mut().for_each(|i| *i = 0);
                continue;
            }
        }
        socket += 1;
    }
    out
}

/// Expand a "compact" placement: fill one socket's physical cores, then its
/// SMT threads, then the next socket (`KMP_AFFINITY=compact`).
pub fn compact_placement(topo: &TopologySpec, num_threads: usize) -> Vec<usize> {
    let mut order = Vec::new();
    for s in 0..topo.sockets {
        let cores = topo.socket_cores(s);
        for smt in 0..topo.threads_per_core as usize {
            for core in &cores {
                if let Some(&id) = core.get(smt) {
                    order.push(id);
                }
            }
        }
    }
    (0..num_threads).map(|i| order[i % order.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::MachinePreset;

    fn westmere() -> TopologySpec {
        MachinePreset::WestmereEp2S.topology()
    }

    #[test]
    fn numeric_ranges_and_lists() {
        let topo = westmere();
        assert_eq!(parse_pin_list("0-3", &topo).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_pin_list("0,2,4", &topo).unwrap(), vec![0, 2, 4]);
        assert_eq!(parse_pin_list("7", &topo).unwrap(), vec![7]);
        assert_eq!(parse_pin_list("0-2,5", &topo).unwrap(), vec![0, 1, 2, 5]);
    }

    #[test]
    fn syntax_errors_are_reported() {
        let topo = westmere();
        assert!(matches!(parse_pin_list("a-b", &topo), Err(PinListError::Syntax(_))));
        assert!(matches!(parse_pin_list("3-1", &topo), Err(PinListError::Syntax(_))));
        assert!(matches!(parse_pin_list("", &topo), Err(PinListError::Syntax(_))));
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let topo = westmere();
        assert!(matches!(parse_pin_list("0-99", &topo), Err(PinListError::OutOfRange(_))));
    }

    #[test]
    fn socket_expressions_expand_to_physical_cores_first() {
        let topo = westmere();
        // S0:0-2 = the first three physical cores of socket 0 (SMT thread 0):
        // OS processor IDs 0, 1, 2 on this preset.
        assert_eq!(parse_pin_list("S0:0-2", &topo).unwrap(), vec![0, 1, 2]);
        // S1:0-1 = first two cores of socket 1: OS IDs 6, 7.
        assert_eq!(parse_pin_list("S1:0-1", &topo).unwrap(), vec![6, 7]);
        // Combined with '@'.
        assert_eq!(parse_pin_list("S0:0-1@S1:0-1", &topo).unwrap(), vec![0, 1, 6, 7]);
        // Entry 6 of a hexa-core socket is the SMT sibling of core 0.
        assert_eq!(parse_pin_list("S0:6", &topo).unwrap(), vec![12]);
    }

    #[test]
    fn socket_expression_errors() {
        let topo = westmere();
        assert!(matches!(parse_pin_list("S9:0", &topo), Err(PinListError::OutOfRange(_))));
        assert!(matches!(parse_pin_list("S0-3", &topo), Err(PinListError::Syntax(_))));
        assert!(matches!(parse_pin_list("S0:99", &topo), Err(PinListError::OutOfRange(_))));
    }

    #[test]
    fn lenient_parsing_drops_what_the_machine_does_not_have() {
        let topo = westmere();
        // On a machine that has everything, lenient == strict.
        assert_eq!(parse_pin_list_lenient("S0:0-3", &topo).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_pin_list_lenient("0-3", &topo).unwrap(), vec![0, 1, 2, 3]);

        // A single-core, single-thread Pentium M keeps only what exists.
        let small = MachinePreset::PentiumM.topology();
        assert_eq!(parse_pin_list_lenient("S0:0-3", &small).unwrap(), vec![0]);
        assert_eq!(parse_pin_list_lenient("0-99", &small).unwrap(), vec![0]);
        // A socket that does not exist is dropped, not fatal.
        assert_eq!(parse_pin_list_lenient("S0:0@S1:0", &small).unwrap(), vec![0]);

        // The two-thread Atom keeps its SMT sibling too.
        let atom = MachinePreset::Atom.topology();
        assert_eq!(parse_pin_list_lenient("S0:0-3", &atom).unwrap(), vec![0, 1]);

        // Nothing selected and syntax errors still fail — the latter even
        // inside a socket domain the machine does not have.
        assert!(matches!(parse_pin_list_lenient("S1:0", &small), Err(PinListError::OutOfRange(_))));
        assert!(matches!(parse_pin_list_lenient("a-b", &topo), Err(PinListError::Syntax(_))));
        assert!(matches!(parse_pin_list_lenient("", &topo), Err(PinListError::Syntax(_))));
        assert!(matches!(
            parse_pin_list_lenient("S5:garbage@S0:0", &small),
            Err(PinListError::Syntax(_))
        ));
        assert!(matches!(
            parse_pin_list_lenient("S0:0@S5:0-", &small),
            Err(PinListError::Syntax(_))
        ));
    }

    #[test]
    fn scatter_distributes_across_sockets_physical_cores_first() {
        let topo = westmere();
        let p = scatter_placement(&topo, 4);
        // Round robin over sockets: core 0 of socket 0, core 0 of socket 1,
        // core 1 of socket 0, core 1 of socket 1 => OS IDs 0, 6, 1, 7.
        assert_eq!(p, vec![0, 6, 1, 7]);
        // With 13 threads the 13th lands on an SMT thread (all 12 physical
        // cores are taken first).
        let p = scatter_placement(&topo, 13);
        assert_eq!(p.len(), 13);
        let physical_first_12: Vec<usize> = p[..12].to_vec();
        assert!(
            physical_first_12.iter().all(|&id| id < 12),
            "first 12 threads use physical cores (SMT 0)"
        );
        assert!(p[12] >= 12, "13th thread lands on an SMT sibling");
    }

    #[test]
    fn compact_fills_one_socket_first() {
        let topo = westmere();
        let p = compact_placement(&topo, 6);
        assert_eq!(p, vec![0, 1, 2, 3, 4, 5], "compact stays on socket 0's physical cores");
        let p = compact_placement(&topo, 7);
        assert_eq!(p[6], 12, "the 7th compact thread uses socket 0's first SMT sibling");
    }

    #[test]
    fn socket_domain_covers_physical_then_smt_in_logical_order() {
        let topo = westmere();
        // S0:0-3 — the paper's "cores first" logical numbering within a
        // socket domain: entries 0..5 are SMT thread 0 of each physical
        // core, entries 6..11 their SMT siblings.
        assert_eq!(parse_pin_list("S0:0-3", &topo).unwrap(), vec![0, 1, 2, 3]);
        let full = parse_pin_list("S0:0-11", &topo).unwrap();
        assert_eq!(full.len(), 12);
        assert!(full[..6].iter().all(|&id| id < 6), "first six entries are physical cores");
        assert!(full[6..].iter().all(|&id| (12..18).contains(&id)), "last six are SMT siblings");
        // Logical entry k on socket 1 maps to socket 1's k-th physical core.
        assert_eq!(parse_pin_list("S1:3", &topo).unwrap(), vec![9]);
    }

    #[test]
    fn parsed_ids_round_trip_through_rendering() {
        let topo = westmere();
        for expr in ["0-3", "0,2,4,6", "5", "0-1,8-9", "11,3,7"] {
            let ids = parse_pin_list(expr, &topo).unwrap();
            let rendered = ids.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
            assert_eq!(parse_pin_list(&rendered, &topo).unwrap(), ids, "{expr} round-trips");
        }
    }

    #[test]
    fn malformed_expressions_are_rejected() {
        let topo = westmere();
        for expr in
            ["S0:", "S0:,", "S0:,,", "S0", "S:0", "-1", "0--3", "0x2", "1.5", "S0:0-", "@", "S0:0@"]
        {
            assert!(parse_pin_list(expr, &topo).is_err(), "'{expr}' must be rejected");
        }
        // Tolerated degenerate forms: stray empty segments between commas.
        assert_eq!(parse_pin_list("1,,2", &topo).unwrap(), vec![1, 2]);
        assert_eq!(parse_pin_list("0-2,", &topo).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn whitespace_inside_expressions_is_tolerated() {
        let topo = westmere();
        assert_eq!(parse_pin_list(" 0 - 3 ", &topo).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_pin_list("0 , 2 , 4", &topo).unwrap(), vec![0, 2, 4]);
    }

    #[test]
    fn istanbul_has_no_smt_expansion() {
        let topo = MachinePreset::IstanbulH2S.topology();
        let p = scatter_placement(&topo, 12);
        assert_eq!(p.len(), 12);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12, "all 12 cores used exactly once");
    }
}

//! The `pthread_create` interception state machine.
//!
//! `likwid-pin` preloads a wrapper library into the target process. The
//! wrapper pins the initial (master) thread to the first entry of the pin
//! list before `main` runs, and then, every time the application (or its
//! OpenMP runtime) calls `pthread_create`, decides whether the new thread is
//! a worker — in which case it is pinned to the next unused pin-list entry —
//! or a shepherd that must be skipped. This module reproduces that decision
//! logic so that the interaction between pin lists, skip masks and
//! runtime-specific thread creation order can be tested and so that the
//! workload layer can ask "where does worker *k* actually run?".

use crate::skipmask::SkipMask;

/// What happened to one created thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinOutcome {
    /// The thread was pinned to the given OS processor ID.
    Pinned(usize),
    /// The thread was recognised as a shepherd and left unpinned.
    Skipped,
    /// The pin list was exhausted; the thread runs unpinned (the wrapper
    /// prints a warning in this case on the real tool).
    Overflowed,
}

impl PinOutcome {
    /// The processor the thread ended up bound to, if any.
    pub fn cpu(self) -> Option<usize> {
        match self {
            PinOutcome::Pinned(cpu) => Some(cpu),
            _ => None,
        }
    }
}

/// The wrapper-library state for one target process.
#[derive(Debug, Clone)]
pub struct PthreadPinner {
    pin_list: Vec<usize>,
    skip_mask: SkipMask,
    /// Index of the next unused pin-list entry.
    next_entry: usize,
    /// How many `pthread_create` calls have been observed.
    created: usize,
    /// Recorded outcomes in creation order.
    outcomes: Vec<PinOutcome>,
    /// Where the master thread was pinned.
    master_cpu: Option<usize>,
}

impl PthreadPinner {
    /// Initialise the wrapper with the pin list and skip mask from the
    /// environment. Pins the master thread to the first list entry, exactly
    /// like the preloaded library does before `main`.
    pub fn new(pin_list: Vec<usize>, skip_mask: SkipMask) -> Self {
        let master_cpu = pin_list.first().copied();
        PthreadPinner {
            pin_list,
            skip_mask,
            next_entry: 1,
            created: 0,
            outcomes: Vec::new(),
            master_cpu,
        }
    }

    /// Where the master (initial) thread is pinned.
    pub fn master_cpu(&self) -> Option<usize> {
        self.master_cpu
    }

    /// Observe one `pthread_create` call and decide the new thread's fate.
    pub fn on_thread_create(&mut self) -> PinOutcome {
        let index = self.created;
        self.created += 1;
        let outcome = if self.skip_mask.skips(index) {
            PinOutcome::Skipped
        } else if self.next_entry < self.pin_list.len() {
            let cpu = self.pin_list[self.next_entry];
            self.next_entry += 1;
            PinOutcome::Pinned(cpu)
        } else {
            PinOutcome::Overflowed
        };
        self.outcomes.push(outcome);
        outcome
    }

    /// All outcomes so far, in creation order.
    pub fn outcomes(&self) -> &[PinOutcome] {
        &self.outcomes
    }

    /// The processors of the application's *worker* threads in creation
    /// order, with the master thread first — i.e. the placement the parallel
    /// region actually runs with. Skipped shepherd threads are excluded;
    /// overflowed threads appear as `None`.
    pub fn worker_placement(&self) -> Vec<Option<usize>> {
        let mut placement = vec![self.master_cpu];
        for outcome in &self.outcomes {
            match outcome {
                PinOutcome::Pinned(cpu) => placement.push(Some(*cpu)),
                PinOutcome::Overflowed => placement.push(None),
                PinOutcome::Skipped => {}
            }
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skipmask::ThreadingModel;

    #[test]
    fn master_thread_is_pinned_to_the_first_entry() {
        let p = PthreadPinner::new(vec![3, 4, 5], SkipMask::NONE);
        assert_eq!(p.master_cpu(), Some(3));
    }

    #[test]
    fn gcc_openmp_workers_consume_the_list_in_order() {
        // gcc, 4 OpenMP threads: the master is pinned to entry 0 and the 3
        // created workers to entries 1..3.
        let mut p =
            PthreadPinner::new(vec![0, 1, 2, 3], ThreadingModel::GccOpenMp.default_skip_mask());
        let outcomes: Vec<PinOutcome> = (0..3).map(|_| p.on_thread_create()).collect();
        assert_eq!(
            outcomes,
            vec![PinOutcome::Pinned(1), PinOutcome::Pinned(2), PinOutcome::Pinned(3)]
        );
        assert_eq!(p.worker_placement(), vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn intel_openmp_shepherd_is_skipped_and_does_not_consume_an_entry() {
        // Intel, 4 OpenMP threads: 4 threads are created; the first is the
        // shepherd. Workers must still land on cores 1, 2, 3.
        let mut p =
            PthreadPinner::new(vec![0, 1, 2, 3], ThreadingModel::IntelOpenMp.default_skip_mask());
        let outcomes: Vec<PinOutcome> = (0..4).map(|_| p.on_thread_create()).collect();
        assert_eq!(outcomes[0], PinOutcome::Skipped);
        assert_eq!(outcomes[1], PinOutcome::Pinned(1));
        assert_eq!(outcomes[3], PinOutcome::Pinned(3));
        assert_eq!(p.worker_placement(), vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn forgetting_the_intel_skip_mask_shifts_every_worker() {
        // The failure mode the paper warns about: pinning an Intel binary
        // without the skip mask pins the shepherd to entry 1 and shifts all
        // workers, so the last worker overflows the list and two threads can
        // end up sharing a core.
        let mut p = PthreadPinner::new(vec![0, 1, 2, 3], SkipMask::NONE);
        let outcomes: Vec<PinOutcome> = (0..4).map(|_| p.on_thread_create()).collect();
        assert_eq!(outcomes[0], PinOutcome::Pinned(1), "the shepherd wrongly consumes core 1");
        assert_eq!(outcomes[3], PinOutcome::Overflowed, "the last worker has no core left");
    }

    #[test]
    fn hybrid_mask_skips_two_threads() {
        let mut p = PthreadPinner::new(
            vec![0, 1, 2],
            ThreadingModel::IntelMpiIntelOpenMp.default_skip_mask(),
        );
        let outcomes: Vec<PinOutcome> = (0..4).map(|_| p.on_thread_create()).collect();
        assert_eq!(outcomes[0], PinOutcome::Skipped);
        assert_eq!(outcomes[1], PinOutcome::Skipped);
        assert_eq!(outcomes[2], PinOutcome::Pinned(1));
        assert_eq!(outcomes[3], PinOutcome::Pinned(2));
    }

    #[test]
    fn empty_pin_list_leaves_everything_unpinned() {
        let mut p = PthreadPinner::new(vec![], SkipMask::NONE);
        assert_eq!(p.master_cpu(), None);
        assert_eq!(p.on_thread_create(), PinOutcome::Overflowed);
    }

    #[test]
    fn outcomes_are_recorded_in_creation_order() {
        let mut p = PthreadPinner::new(vec![5, 6], SkipMask(0x1));
        p.on_thread_create();
        p.on_thread_create();
        p.on_thread_create();
        assert_eq!(
            p.outcomes(),
            &[PinOutcome::Skipped, PinOutcome::Pinned(6), PinOutcome::Overflowed]
        );
        assert_eq!(p.worker_placement(), vec![Some(5), Some(6), None]);
    }

    #[test]
    fn pin_outcome_cpu_accessor() {
        assert_eq!(PinOutcome::Pinned(4).cpu(), Some(4));
        assert_eq!(PinOutcome::Skipped.cpu(), None);
        assert_eq!(PinOutcome::Overflowed.cpu(), None);
    }
}

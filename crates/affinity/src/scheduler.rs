//! A simulated OS scheduler for *unpinned* runs.
//!
//! The unpinned STREAM measurements of the paper (Figures 4, 7 and 9) are a
//! statement about where the Linux scheduler happens to put threads when
//! nobody pins them: sometimes all threads land on one socket and see half
//! the node's memory bandwidth, sometimes two threads share a physical core
//! via SMT and starve each other, sometimes the placement is accidentally
//! perfect. The box plots are built from 100 samples per thread count.
//!
//! This module reproduces that sampling experiment. The scheduler places
//! each requested thread on a hardware thread according to a
//! [`PlacementStrategy`]; the default [`PlacementStrategy::CfsLike`]
//! approximates the Linux CFS wake-up balancing of the era: threads prefer
//! idle hardware threads (load balancing works at the run-queue level), but
//! the choice of socket and of SMT sibling is effectively random, and with
//! more threads than hardware threads run queues get shared.

use likwid_x86_machine::TopologySpec;
use rand::seq::SliceRandom;
use rand::Rng;

/// How the simulated scheduler chooses hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Uniformly random hardware thread per task, independent draws: tasks
    /// can pile onto the same hardware thread (the most pessimistic model).
    UniformRandom,
    /// CFS-like: tasks are spread over *idle* hardware threads first (random
    /// order), only oversubscribing once every hardware thread is busy.
    /// Which socket / SMT sibling a task gets remains random.
    CfsLike,
    /// Pathological "no balancing": all tasks start on hardware thread 0's
    /// socket and only spill when that socket's hardware threads are full.
    FillFirstSocket,
}

/// The simulated scheduler.
#[derive(Debug, Clone)]
pub struct SimScheduler {
    strategy: PlacementStrategy,
}

impl SimScheduler {
    /// Scheduler with the given strategy.
    pub fn new(strategy: PlacementStrategy) -> Self {
        SimScheduler { strategy }
    }

    /// The default model used for the unpinned figures.
    pub fn cfs_like() -> Self {
        SimScheduler::new(PlacementStrategy::CfsLike)
    }

    /// Place `num_threads` application threads on the node, returning the
    /// hardware thread each one runs on. One placement corresponds to one
    /// sample (one run) of the unpinned experiment.
    pub fn place<R: Rng + ?Sized>(
        &self,
        topo: &TopologySpec,
        num_threads: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        let total = topo.num_hw_threads();
        match self.strategy {
            PlacementStrategy::UniformRandom => {
                (0..num_threads).map(|_| rng.gen_range(0..total)).collect()
            }
            PlacementStrategy::CfsLike => {
                let mut placement = Vec::with_capacity(num_threads);
                let mut remaining = num_threads;
                while remaining > 0 {
                    let batch = remaining.min(total);
                    let mut hw: Vec<usize> = (0..total).collect();
                    hw.shuffle(rng);
                    placement.extend(hw.into_iter().take(batch));
                    remaining -= batch;
                }
                placement
            }
            PlacementStrategy::FillFirstSocket => {
                // Order hardware threads socket by socket, physical cores
                // before SMT siblings, and fill in that order.
                let mut order = Vec::new();
                for s in 0..topo.sockets {
                    let cores = topo.socket_cores(s);
                    for smt in 0..topo.threads_per_core as usize {
                        for core in &cores {
                            if let Some(&id) = core.get(smt) {
                                order.push(id);
                            }
                        }
                    }
                }
                (0..num_threads).map(|i| order[i % order.len()]).collect()
            }
        }
    }

    /// Draw `samples` placements (one per run of the benchmark).
    pub fn sample_placements<R: Rng + ?Sized>(
        &self,
        topo: &TopologySpec,
        num_threads: usize,
        samples: usize,
        rng: &mut R,
    ) -> Vec<Vec<usize>> {
        (0..samples).map(|_| self.place(topo, num_threads, rng)).collect()
    }
}

/// Summary of how a placement uses the machine, the quantities that drive
/// the bandwidth model: how many threads run on each socket and how many
/// physical cores are oversubscribed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementSummary {
    /// Number of application threads per socket.
    pub threads_per_socket: Vec<usize>,
    /// Number of distinct physical cores used per socket.
    pub busy_cores_per_socket: Vec<usize>,
    /// Maximum number of application threads sharing one hardware thread.
    pub max_per_hw_thread: usize,
    /// Maximum number of application threads sharing one physical core.
    pub max_per_core: usize,
}

impl PlacementSummary {
    /// Analyse a placement against a topology.
    pub fn analyse(topo: &TopologySpec, placement: &[usize]) -> Self {
        let sockets = topo.sockets as usize;
        let mut threads_per_socket = vec![0usize; sockets];
        let mut per_core = std::collections::HashMap::<(u32, u32), usize>::new();
        let mut per_hw = std::collections::HashMap::<usize, usize>::new();
        for &hw in placement {
            let t = &topo.hw_threads[hw];
            threads_per_socket[t.socket as usize] += 1;
            *per_core.entry((t.socket, t.core_index)).or_insert(0) += 1;
            *per_hw.entry(hw).or_insert(0) += 1;
        }
        let mut busy_cores_per_socket = vec![0usize; sockets];
        for (&(socket, _), _) in per_core.iter() {
            busy_cores_per_socket[socket as usize] += 1;
        }
        PlacementSummary {
            threads_per_socket,
            busy_cores_per_socket,
            max_per_hw_thread: per_hw.values().copied().max().unwrap_or(0),
            max_per_core: per_core.values().copied().max().unwrap_or(0),
        }
    }

    /// Number of sockets actually used.
    pub fn sockets_used(&self) -> usize {
        self.threads_per_socket.iter().filter(|&&n| n > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::MachinePreset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn westmere() -> TopologySpec {
        MachinePreset::WestmereEp2S.topology()
    }

    #[test]
    fn cfs_like_does_not_oversubscribe_hardware_threads_below_capacity() {
        let topo = westmere();
        let sched = SimScheduler::cfs_like();
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 4, 12, 24] {
            let p = sched.place(&topo, n, &mut rng);
            let summary = PlacementSummary::analyse(&topo, &p);
            assert_eq!(p.len(), n);
            assert_eq!(summary.max_per_hw_thread, 1, "{n} threads fit without sharing");
        }
    }

    #[test]
    fn cfs_like_oversubscribes_only_past_capacity() {
        let topo = westmere();
        let sched = SimScheduler::cfs_like();
        let mut rng = StdRng::seed_from_u64(7);
        let p = sched.place(&topo, 26, &mut rng);
        let summary = PlacementSummary::analyse(&topo, &p);
        assert_eq!(summary.max_per_hw_thread, 2, "26 threads on 24 hardware threads share twice");
    }

    #[test]
    fn unpinned_small_counts_sometimes_use_one_socket_sometimes_two() {
        // This is the mechanism behind the large variance at small thread
        // counts in Figure 4: with 2 threads the probability of landing on
        // one socket is sizeable.
        let topo = westmere();
        let sched = SimScheduler::cfs_like();
        let mut rng = StdRng::seed_from_u64(123);
        let placements = sched.sample_placements(&topo, 2, 200, &mut rng);
        let mut one_socket = 0;
        let mut two_sockets = 0;
        for p in &placements {
            match PlacementSummary::analyse(&topo, p).sockets_used() {
                1 => one_socket += 1,
                2 => two_sockets += 1,
                _ => unreachable!(),
            }
        }
        assert!(one_socket > 20, "one-socket placements must occur ({one_socket})");
        assert!(two_sockets > 20, "two-socket placements must occur ({two_sockets})");
    }

    #[test]
    fn unpinned_can_place_two_threads_on_one_physical_core() {
        // SMT makes it possible for two threads to share a physical core even
        // when physical cores are still free — the oversubscription effect
        // the paper attributes the Westmere variance to.
        let topo = westmere();
        let sched = SimScheduler::cfs_like();
        let mut rng = StdRng::seed_from_u64(99);
        let placements = sched.sample_placements(&topo, 6, 300, &mut rng);
        let shared = placements
            .iter()
            .filter(|p| PlacementSummary::analyse(&topo, p).max_per_core >= 2)
            .count();
        assert!(shared > 0, "some placements must share a physical core");
        assert!(shared < 300, "not every placement shares a physical core");
    }

    #[test]
    fn fill_first_socket_uses_socket_zero_first() {
        let topo = westmere();
        let sched = SimScheduler::new(PlacementStrategy::FillFirstSocket);
        let mut rng = StdRng::seed_from_u64(1);
        let p = sched.place(&topo, 6, &mut rng);
        let summary = PlacementSummary::analyse(&topo, &p);
        assert_eq!(summary.threads_per_socket, vec![6, 0]);
    }

    #[test]
    fn uniform_random_can_pile_up() {
        let topo = MachinePreset::Core2Quad.topology();
        let sched = SimScheduler::new(PlacementStrategy::UniformRandom);
        let mut rng = StdRng::seed_from_u64(5);
        // With 4 threads on 4 hardware threads and independent draws,
        // collisions happen in most samples.
        let collisions = (0..100)
            .filter(|_| {
                let p = sched.place(&topo, 4, &mut rng);
                PlacementSummary::analyse(&topo, &p).max_per_hw_thread >= 2
            })
            .count();
        assert!(collisions > 50);
    }

    #[test]
    fn istanbul_placements_have_no_smt_sharing() {
        let topo = MachinePreset::IstanbulH2S.topology();
        let sched = SimScheduler::cfs_like();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let p = sched.place(&topo, 12, &mut rng);
            let summary = PlacementSummary::analyse(&topo, &p);
            assert_eq!(
                summary.max_per_core, 1,
                "Istanbul has no SMT: one thread per core at 12 threads"
            );
        }
    }

    #[test]
    fn placement_summary_counts_busy_cores() {
        let topo = westmere();
        // Threads on OS IDs 0 and 12 share physical core 0 of socket 0.
        let summary = PlacementSummary::analyse(&topo, &[0, 12, 1]);
        assert_eq!(summary.threads_per_socket, vec![3, 0]);
        assert_eq!(summary.busy_cores_per_socket, vec![2, 0]);
        assert_eq!(summary.max_per_core, 2);
        assert_eq!(summary.max_per_hw_thread, 1);
        assert_eq!(summary.sockets_used(), 1);
    }
}

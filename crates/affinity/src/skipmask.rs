//! Skip masks and threading-model personalities.
//!
//! The wrapper library must know which newly created threads are *not*
//! application worker threads. The Intel OpenMP runtime creates
//! `OMP_NUM_THREADS` threads in addition to the initial master thread and
//! uses the first created thread as a management ("shepherd") thread that
//! must not be pinned; gcc's libgomp creates `OMP_NUM_THREADS - 1` workers
//! and has no shepherd. Hybrid MPI + OpenMP binaries add MPI shepherd
//! threads on top (skip mask `0x3` for Intel MPI + Intel OpenMP). The skip
//! mask is a bit pattern over the *creation order* of threads: bit *i* set
//! means the *i*-th created thread is skipped.

/// A skip mask over thread-creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SkipMask(pub u64);

impl SkipMask {
    /// No threads are skipped.
    pub const NONE: SkipMask = SkipMask(0);

    /// Whether the `creation_index`-th created thread (0-based) should be
    /// skipped (not pinned, not consuming a pin-list entry).
    pub fn skips(self, creation_index: usize) -> bool {
        creation_index < 64 && (self.0 >> creation_index) & 1 == 1
    }

    /// Parse a mask written as hex (`0x3`), or decimal.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok().map(SkipMask)
        } else {
            s.parse().ok().map(SkipMask)
        }
    }

    /// Number of skipped threads among the first `n` created threads.
    pub fn skipped_among(self, n: usize) -> usize {
        (0..n.min(64)).filter(|&i| self.skips(i)).count()
    }
}

impl std::fmt::Display for SkipMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The threading model of the target binary (`likwid-pin -t …`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadingModel {
    /// Raw POSIX threads: every created thread is a worker.
    Posix,
    /// Intel OpenMP (icc): the first created thread is a shepherd.
    IntelOpenMp,
    /// GNU OpenMP (gcc libgomp): no shepherd thread; this is the default
    /// when no `-t` switch is given.
    GccOpenMp,
    /// Intel MPI + Intel OpenMP hybrid: the first two created threads are
    /// shepherds (MPI progress thread + OpenMP management thread).
    IntelMpiIntelOpenMp,
}

impl ThreadingModel {
    /// The default skip mask for this model (the value `likwid-pin` sets when
    /// only `-t` is given).
    pub fn default_skip_mask(self) -> SkipMask {
        match self {
            ThreadingModel::Posix | ThreadingModel::GccOpenMp => SkipMask(0x0),
            ThreadingModel::IntelOpenMp => SkipMask(0x1),
            ThreadingModel::IntelMpiIntelOpenMp => SkipMask(0x3),
        }
    }

    /// How many threads the runtime creates (via `pthread_create`) for a
    /// parallel region with `omp_num_threads` application threads. The
    /// master thread is the initial process thread and is not created.
    pub fn created_threads(self, omp_num_threads: usize) -> usize {
        match self {
            // Intel OpenMP always creates OMP_NUM_THREADS new threads and
            // uses the first as a shepherd.
            ThreadingModel::IntelOpenMp => omp_num_threads,
            ThreadingModel::IntelMpiIntelOpenMp => omp_num_threads + 1,
            // gcc creates OMP_NUM_THREADS - 1 workers; POSIX code is assumed
            // to create one thread per worker besides the master.
            ThreadingModel::GccOpenMp => omp_num_threads.saturating_sub(1),
            ThreadingModel::Posix => omp_num_threads.saturating_sub(1),
        }
    }

    /// The `-t` command-line name.
    pub fn cli_name(self) -> &'static str {
        match self {
            ThreadingModel::Posix => "posix",
            ThreadingModel::IntelOpenMp => "intel",
            ThreadingModel::GccOpenMp => "gnu",
            ThreadingModel::IntelMpiIntelOpenMp => "intel-mpi",
        }
    }

    /// Parse a `-t` argument.
    pub fn from_cli_name(name: &str) -> Option<Self> {
        match name {
            "posix" => Some(ThreadingModel::Posix),
            "intel" => Some(ThreadingModel::IntelOpenMp),
            "gnu" | "gcc" => Some(ThreadingModel::GccOpenMp),
            "intel-mpi" => Some(ThreadingModel::IntelMpiIntelOpenMp),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_mask_skips_only_the_first_created_thread() {
        let m = ThreadingModel::IntelOpenMp.default_skip_mask();
        assert!(m.skips(0));
        assert!(!m.skips(1));
        assert!(!m.skips(5));
    }

    #[test]
    fn hybrid_mask_skips_the_first_two() {
        let m = ThreadingModel::IntelMpiIntelOpenMp.default_skip_mask();
        assert_eq!(m, SkipMask(0x3));
        assert!(m.skips(0));
        assert!(m.skips(1));
        assert!(!m.skips(2));
        assert_eq!(m.skipped_among(8), 2);
    }

    #[test]
    fn gcc_and_posix_skip_nothing() {
        assert_eq!(ThreadingModel::GccOpenMp.default_skip_mask(), SkipMask::NONE);
        assert_eq!(ThreadingModel::Posix.default_skip_mask(), SkipMask::NONE);
    }

    #[test]
    fn parse_hex_and_decimal() {
        assert_eq!(SkipMask::parse("0x3"), Some(SkipMask(3)));
        assert_eq!(SkipMask::parse("0X1"), Some(SkipMask(1)));
        assert_eq!(SkipMask::parse("5"), Some(SkipMask(5)));
        assert_eq!(SkipMask::parse("zz"), None);
        assert_eq!(SkipMask(3).to_string(), "0x3");
    }

    #[test]
    fn created_thread_counts_per_runtime() {
        // The paper: "the Intel OpenMP implementation always runs
        // OMP_NUM_THREADS+1 threads" (master + created), "gcc OpenMP only
        // creates OMP_NUM_THREADS-1 additional threads".
        assert_eq!(ThreadingModel::IntelOpenMp.created_threads(4), 4);
        assert_eq!(ThreadingModel::GccOpenMp.created_threads(4), 3);
        assert_eq!(ThreadingModel::IntelMpiIntelOpenMp.created_threads(8), 9);
    }

    #[test]
    fn cli_names_round_trip() {
        for m in [
            ThreadingModel::Posix,
            ThreadingModel::IntelOpenMp,
            ThreadingModel::GccOpenMp,
            ThreadingModel::IntelMpiIntelOpenMp,
        ] {
            assert_eq!(ThreadingModel::from_cli_name(m.cli_name()), Some(m));
        }
        assert_eq!(ThreadingModel::from_cli_name("pgi"), None);
    }

    #[test]
    fn out_of_range_creation_indices_are_not_skipped() {
        assert!(!SkipMask(u64::MAX).skips(64));
        assert!(!SkipMask(u64::MAX).skips(1000));
    }

    #[test]
    fn display_and_parse_round_trip() {
        for mask in [0u64, 1, 3, 0x5, 0xFF, u64::MAX] {
            let rendered = SkipMask(mask).to_string();
            assert_eq!(SkipMask::parse(&rendered), Some(SkipMask(mask)), "mask {rendered}");
        }
    }

    #[test]
    fn malformed_masks_are_rejected() {
        for s in ["0x", "0xZZ", "-1", "1.5", "", "  ", "0b11"] {
            assert_eq!(SkipMask::parse(s), None, "'{s}' must be rejected");
        }
        // Whitespace around a valid mask is tolerated.
        assert_eq!(SkipMask::parse(" 0x3 "), Some(SkipMask(3)));
    }

    #[test]
    fn skipped_among_counts_only_below_the_prefix() {
        let m = SkipMask(0b1011);
        assert_eq!(m.skipped_among(0), 0);
        assert_eq!(m.skipped_among(1), 1);
        assert_eq!(m.skipped_among(2), 2);
        assert_eq!(m.skipped_among(4), 3);
        assert_eq!(m.skipped_among(100), 3, "counting saturates at 64 mask bits");
    }
}

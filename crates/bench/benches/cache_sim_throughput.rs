//! Criterion bench for the cache-simulator substrate: accesses per second
//! for streaming and cache-resident patterns, with and without prefetchers.
//!
//! This is the ablation bench for the simulator design choices called out in
//! DESIGN.md (prefetcher modelling, inclusive back-invalidation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use likwid_cache_sim::{Access, HierarchyConfig, NodeCacheSystem, NumaPolicy, PrefetchConfig};
use likwid_x86_machine::{MachinePreset, SimMachine};

fn cache_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim_throughput");
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let accesses_per_iter = 10_000u64;
    group.throughput(Throughput::Elements(accesses_per_iter));

    for (label, prefetch) in [
        ("prefetch_on", PrefetchConfig::all_enabled()),
        ("prefetch_off", PrefetchConfig::all_disabled()),
    ] {
        group.bench_with_input(BenchmarkId::new("stream", label), &prefetch, |b, &prefetch| {
            let mut cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
            cfg.prefetch = prefetch;
            let mut sys = NodeCacheSystem::new(cfg);
            let mut next = 0u64;
            b.iter(|| {
                for _ in 0..accesses_per_iter {
                    sys.access(0, Access::load(next * 64));
                    next += 1;
                }
            })
        });
    }

    group.bench_function("resident_working_set", |b| {
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        b.iter(|| {
            for i in 0..accesses_per_iter {
                sys.access(0, Access::load((i % 256) * 64));
            }
        })
    });

    group.bench_function("write_allocate_stream", |b| {
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..accesses_per_iter {
                sys.access(0, Access::store(next * 64));
                next += 1;
            }
        })
    });

    group.finish();
}

criterion_group!(benches, cache_sim);
criterion_main!(benches);

//! Criterion bench for the cache-simulator substrate: accesses per second
//! for streaming and cache-resident patterns, with and without prefetchers.
//!
//! This is the ablation bench for the simulator design choices called out in
//! the README (prefetcher modelling, inclusive back-invalidation, presence
//! directory). `BENCH_cache_sim.json` at the workspace root records the
//! measured baseline trajectory for the scenarios below.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use likwid_cache_sim::{
    Access, AccessKind, HierarchyConfig, NodeCacheSystem, NumaPolicy, PrefetchConfig,
    ShardedCacheSystem,
};
use likwid_workloads::jacobi::Jacobi;
use likwid_workloads::{JacobiConfig, JacobiVariant, Placement, StoreCoherence};
use likwid_x86_machine::{MachinePreset, SimMachine};

fn cache_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim_throughput");
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let accesses_per_iter = 10_000u64;
    group.throughput(Throughput::Elements(accesses_per_iter));

    for (label, prefetch) in [
        ("prefetch_on", PrefetchConfig::all_enabled()),
        ("prefetch_off", PrefetchConfig::all_disabled()),
    ] {
        group.bench_with_input(BenchmarkId::new("stream", label), &prefetch, |b, &prefetch| {
            let mut cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
            cfg.prefetch = prefetch;
            let mut sys = NodeCacheSystem::new(cfg);
            let mut next = 0u64;
            b.iter(|| {
                sys.access_run(0, next * 64, 64, accesses_per_iter, 8, AccessKind::Load);
                next += accesses_per_iter;
            })
        });
    }

    // 39 passes over a 256-line L1-resident window: 9984 accesses.
    group.throughput(Throughput::Elements(256 * (accesses_per_iter / 256)));
    group.bench_function("resident_working_set", |b| {
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        b.iter(|| {
            for _ in 0..(accesses_per_iter / 256) {
                sys.access_run(0, 0, 64, 256, 8, AccessKind::Load);
            }
        })
    });

    group.throughput(Throughput::Elements(accesses_per_iter));
    group.bench_function("write_allocate_stream", |b| {
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        let mut next = 0u64;
        b.iter(|| {
            sys.access_run(0, next * 64, 64, accesses_per_iter, 8, AccessKind::Store);
            next += accesses_per_iter;
        })
    });

    // Store-heavy multi-thread coherence traffic shaped like the paper's
    // wavefront hand-off (Figure 11): two producer/consumer pairs pass a
    // plane ring through the cache (producer stores invalidate the
    // consumer's copies, the consumer re-reads them), while all four
    // threads also stream stores through private working sets. The private
    // stores are where a broadcast coherence walk burns its time probing 18
    // instances that cannot hold the line; the presence directory answers
    // them with one mask lookup.
    group.bench_function("multi_thread_store_coherence", |b| {
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        let threads = [0usize, 1, 4, 5];
        let rounds = accesses_per_iter / 5;
        b.iter(|| {
            for i in 0..rounds {
                let ring = (i % 128) * 64;
                // Producer 0 → consumer 1 (socket 0), producer 4 →
                // consumer 5 (socket 1), interleaved round-robin.
                match i % 4 {
                    0 => sys.access(0, Access::store((1 << 26) + ring)),
                    1 => sys.access(1, Access::load((1 << 26) + ring)),
                    2 => sys.access(4, Access::store((1 << 27) + ring)),
                    _ => sys.access(5, Access::load((1 << 27) + ring)),
                };
                // Every thread advances its private store stream.
                for (idx, &thread) in threads.iter().enumerate() {
                    let private = ((idx as u64 + 2) << 28) + (i % 4096) * 64;
                    sys.access(thread, Access::store(private));
                }
            }
        })
    });

    // Jacobi-shaped strided sweep: per destination row, five source-row
    // streams (j, j±1, k±1) and one store stream, row by row — the access
    // shape of the Table II stencil drivers, expressed as batched runs.
    // 26 destination rows of 6 streams × 64 lines: 9984 accesses.
    group.throughput(Throughput::Elements(6 * 64 * (accesses_per_iter / (6 * 64))));
    group.bench_function("jacobi_strided_sweep", |b| {
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let mut sys = NodeCacheSystem::new(cfg);
        let lines_per_row = 64u64; // 4 KiB rows
        let rows_per_plane = 16u64;
        let row_bytes = lines_per_row * 64;
        let plane_bytes = rows_per_plane * row_bytes;
        let src = 0u64;
        let dst = 1 << 30;
        let rows = accesses_per_iter / (6 * lines_per_row);
        b.iter(|| {
            for r in 0..rows {
                let row = src + (r + rows_per_plane) * row_bytes;
                for base in
                    [row, row - row_bytes, row + row_bytes, row - plane_bytes, row + plane_bytes]
                {
                    sys.access_run(0, base, 64, lines_per_row, 64, AccessKind::Load);
                }
                let store_row = dst + (r + rows_per_plane) * row_bytes;
                sys.access_run(0, store_row, 64, lines_per_row, 64, AccessKind::Store);
            }
        })
    });

    // The sharded engine on the same store-coherence shape, prebuilt as an
    // epoch-batched replay queue whose epochs pass the conflict analysis:
    // both socket shards replay their producer/consumer ring and private
    // store streams concurrently, and the merge is bit-identical to the
    // sequential drain whatever the worker count. Worker count 1 measures
    // the sharding overhead (conflict analysis + merge, no parallelism);
    // 2 and 4 measure the speedup over `multi_thread_store_coherence`.
    {
        let placement = Placement::pinned(vec![0, 1, 4, 5]);
        let kernel = StoreCoherence::new(1 << 20, 1);
        let queue = kernel.replay_queue(&machine, &placement);
        group.throughput(Throughput::Elements(queue.total_accesses()));
        for workers in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new("sharded_store_coherence", format!("{workers}w")),
                &workers,
                |b, &workers| {
                    let cfg = HierarchyConfig::from_machine(
                        &machine,
                        NumaPolicy::interleave_over(4096, 2),
                    );
                    let mut sys = ShardedCacheSystem::with_workers(cfg, workers);
                    b.iter(|| sys.replay(&queue))
                },
            );
        }
    }

    // The sharded engine on the Jacobi threaded sweep, split by the
    // interior/boundary epoch structure of `Jacobi::threaded_replay_queue`:
    // interior planes shard across the two sockets, the block-boundary
    // planes serialize through the exact fallback.
    {
        let jacobi = Jacobi::new(&machine);
        let config = JacobiConfig {
            size: 32,
            time_steps: 2,
            placement: vec![0, 1, 4, 5],
            variant: JacobiVariant::Threaded,
        };
        let queue = jacobi.threaded_replay_queue(&config);
        group.throughput(Throughput::Elements(queue.total_accesses()));
        for workers in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new("sharded_jacobi_sweep", format!("{workers}w")),
                &workers,
                |b, &workers| {
                    let cfg = HierarchyConfig::from_machine(
                        &machine,
                        NumaPolicy::SingleNode { socket: 0 },
                    );
                    let mut sys = ShardedCacheSystem::with_workers(cfg, workers);
                    b.iter(|| sys.replay(&queue))
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, cache_sim);
criterion_main!(benches);

//! Criterion bench for the Jacobi simulation (Figure 11, Table II).
//!
//! Measures the cache-simulation cost of the three variants at a small grid
//! size — the unit of work behind every point of Figure 11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use likwid_workloads::jacobi::{Jacobi, JacobiConfig, JacobiVariant};
use likwid_x86_machine::{MachinePreset, SimMachine};

fn jacobi_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_stencil");
    group.sample_size(10);
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let size = 48usize;

    for variant in [JacobiVariant::Threaded, JacobiVariant::ThreadedNt, JacobiVariant::Wavefront] {
        group.bench_with_input(
            BenchmarkId::new("one_socket", variant.name()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    Jacobi::new(&machine).run(&JacobiConfig {
                        size,
                        time_steps: 4,
                        placement: vec![0, 1, 2, 3],
                        variant,
                    })
                })
            },
        );
    }

    group.bench_function("wavefront_split_sockets", |b| {
        b.iter(|| {
            Jacobi::new(&machine).run(&JacobiConfig {
                size,
                time_steps: 4,
                placement: vec![0, 1, 4, 5],
                variant: JacobiVariant::Wavefront,
            })
        })
    });

    group.finish();
}

criterion_group!(benches, jacobi_variants);
criterion_main!(benches);

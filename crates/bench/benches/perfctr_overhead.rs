//! Criterion bench for the measurement interfaces (Table I, "User API
//! support"): marker-API region start/stop, PAPI-style start/stop, full
//! wrapper-mode setup, and multiplex group switching.

use criterion::{criterion_group, criterion_main, Criterion};
use likwid::marker::MarkerApi;
use likwid::perfctr::{EventGroupKind, MeasurementSpec, PerfCtr, PerfCtrConfig};
use likwid_papi_compat::{Papi, PapiPreset};
use likwid_x86_machine::{MachinePreset, SimMachine};

fn api_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("perfctr_overhead");
    let machine = SimMachine::new(MachinePreset::Core2Quad);

    group.bench_function("likwid_marker_start_stop", |b| {
        let mut session = PerfCtr::new(
            &machine,
            PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) },
        )
        .unwrap();
        session.start().unwrap();
        let mut marker = MarkerApi::init(1, 1);
        let region = marker.register_region("bench");
        b.iter(|| {
            marker.start_region(0, 0, &session).unwrap();
            marker.stop_region(0, 0, region, &session).unwrap();
        });
    });

    group.bench_function("papi_start_stop", |b| {
        let mut papi = Papi::library_init(&machine);
        let set = papi.create_eventset(0).unwrap();
        papi.add_event(set, PapiPreset::PAPI_DP_OPS).unwrap();
        papi.add_event(set, PapiPreset::PAPI_TOT_CYC).unwrap();
        b.iter(|| {
            papi.start(set).unwrap();
            papi.stop(set).unwrap()
        });
    });

    group.bench_function("wrapper_mode_session_setup", |b| {
        b.iter(|| {
            PerfCtr::new(
                &machine,
                PerfCtrConfig {
                    cpus: vec![0, 1, 2, 3],
                    spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
                },
            )
            .unwrap()
        });
    });

    let nehalem = SimMachine::new(MachinePreset::NehalemEp2S);
    group.bench_function("multiplex_group_switch", |b| {
        let mut session = PerfCtr::new(
            &nehalem,
            PerfCtrConfig {
                cpus: vec![0],
                spec: MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::L2]),
            },
        )
        .unwrap();
        session.start().unwrap();
        b.iter(|| session.switch_group().unwrap());
    });

    group.finish();
}

criterion_group!(benches, api_overhead);
criterion_main!(benches);

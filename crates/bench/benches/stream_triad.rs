//! Criterion bench for the STREAM triad experiment (Figures 4–10).
//!
//! Measures the cost of producing one unpinned sample and one pinned sample
//! of the bandwidth model, and of a full (reduced-sample) figure series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use likwid_workloads::openmp::{CompilerPersonality, PlacementPolicy};
use likwid_workloads::stream::StreamExperiment;
use likwid_x86_machine::MachinePreset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stream_samples(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_triad");
    group.sample_size(20);

    for (label, preset, personality) in [
        ("westmere_icc", MachinePreset::WestmereEp2S, CompilerPersonality::IntelIcc),
        ("westmere_gcc", MachinePreset::WestmereEp2S, CompilerPersonality::Gcc),
        ("istanbul_icc", MachinePreset::IstanbulH2S, CompilerPersonality::IntelIcc),
    ] {
        let experiment = StreamExperiment::new(preset, personality);
        group.bench_with_input(BenchmarkId::new("unpinned_sample", label), &experiment, |b, e| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| e.run_once(12, &PlacementPolicy::Unpinned, &mut rng).bandwidth_mbs)
        });
        group.bench_with_input(BenchmarkId::new("pinned_sample", label), &experiment, |b, e| {
            let mut rng = StdRng::seed_from_u64(1);
            let policy = e.paper_pinned_policy(12);
            b.iter(|| e.run_once(12, &policy, &mut rng).bandwidth_mbs)
        });
    }

    // A reduced figure series (5 samples per point) — the unit of work the
    // figure binaries perform 20x over.
    group.bench_function("figure5_series_5_samples", |b| {
        let mut experiment =
            StreamExperiment::new(MachinePreset::WestmereEp2S, CompilerPersonality::IntelIcc);
        experiment.samples_per_point = 5;
        b.iter(|| experiment.series([1usize, 6, 12, 24], |t| experiment.paper_pinned_policy(t), 3))
    });

    group.finish();
}

criterion_group!(benches, stream_samples);
criterion_main!(benches);

//! Criterion bench for `likwid-topology` (Figure 1 / Section II-B): the
//! cost of probing and rendering the topology of every machine preset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use likwid::topology::CpuTopology;
use likwid_x86_machine::{MachinePreset, SimMachine};

fn topology_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_probe");
    for &preset in MachinePreset::all() {
        let machine = SimMachine::new(preset);
        group.bench_with_input(BenchmarkId::new("probe", preset.id()), &machine, |b, m| {
            b.iter(|| CpuTopology::probe(m).expect("probe"))
        });
    }
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let topo = CpuTopology::probe(&machine).expect("probe");
    group.bench_function("render_text_extended", |b| b.iter(|| topo.render_text(true)));
    group.bench_function("render_ascii_socket", |b| b.iter(|| topo.render_ascii_socket(0)));
    group.finish();
}

criterion_group!(benches, topology_probe);
criterion_main!(benches);

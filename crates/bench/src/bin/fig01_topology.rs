//! Regenerates Figure 1 and the Section II-B `likwid-topology` listings.

use likwid::args::ArgSpec;

fn main() {
    let spec =
        ArgSpec::new("fig01_topology", "Figure 1: probed topology of the evaluation machines");
    std::process::exit(likwid_bench::figure_bin_main(
        &spec,
        |_| Ok(likwid_bench::figure1_report()),
    ));
}

//! Regenerates Figure 1 and the Section II-B `likwid-topology` listings.

fn main() {
    print!("{}", likwid_bench::figure1_text());
}

//! Regenerates Figure 2: event sets, events and counters.

use likwid_x86_machine::MachinePreset;

fn main() {
    print!("{}", likwid_bench::figure2_text(MachinePreset::WestmereEp2S));
    print!("{}", likwid_bench::figure2_text(MachinePreset::Core2Quad));
}

//! Regenerates Figure 2: event sets, events and counters.

use likwid::args::ArgSpec;
use likwid::report::Report;
use likwid_x86_machine::MachinePreset;

fn main() {
    let spec = ArgSpec::new(
        "fig02_eventsets",
        "Figure 2: event set -> event -> counter mapping on Westmere EP and Core 2 Quad",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |_| {
        let mut report = Report::new("figure2");
        report.extend(likwid_bench::figure2_report(MachinePreset::WestmereEp2S));
        report.extend(likwid_bench::figure2_report(MachinePreset::Core2Quad));
        Ok(report)
    }));
}

//! Regenerates Figure 3: the likwid-pin wrapper mechanism trace.

fn main() {
    print!("{}", likwid_bench::figure3_text());
}

//! Regenerates Figure 3: the likwid-pin wrapper mechanism trace.

use likwid::args::ArgSpec;

fn main() {
    let spec = ArgSpec::new(
        "fig03_pin_mechanism",
        "Figure 3: likwid-pin wrapper mechanism (Intel OpenMP binary)",
    );
    std::process::exit(likwid_bench::figure_bin_main(
        &spec,
        |_| Ok(likwid_bench::figure3_report()),
    ));
}

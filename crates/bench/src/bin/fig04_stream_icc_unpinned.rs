//! Regenerates Figure 4: STREAM triad, Intel icc, Westmere EP, not pinned.

fn main() {
    let spec = likwid_bench::stream_figure_spec(
        "fig04_stream_icc_unpinned",
        "Figure 4: STREAM triad, Intel icc, Westmere EP, not pinned",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let samples = parsed.positional_number(100)?;
        Ok(likwid_bench::stream_figure_report(likwid_bench::stream_figures()[0], samples, 4))
    }));
}

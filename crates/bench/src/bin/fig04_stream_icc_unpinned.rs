//! Regenerates Figure 4: STREAM triad, Intel icc, Westmere EP, not pinned.

fn main() {
    std::process::exit(likwid_bench::stream_figure_bin_main(
        "fig04_stream_icc_unpinned",
        "Figure 4: STREAM triad, Intel icc, Westmere EP, not pinned",
        0,
    ));
}

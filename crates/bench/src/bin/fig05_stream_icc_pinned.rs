//! Regenerates Figure 5: STREAM triad, Intel icc, Westmere EP, pinned with
//! likwid-pin (round robin across sockets, physical cores first).

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let fig = likwid_bench::stream_figures()[1];
    print!("{}", likwid_bench::stream_figure_text(fig, samples, 5));
}

//! Regenerates Figure 5: STREAM triad, Intel icc, Westmere EP, pinned with
//! likwid-pin (round robin across sockets, physical cores first).

fn main() {
    let spec = likwid_bench::stream_figure_spec(
        "fig05_stream_icc_pinned",
        "Figure 5: STREAM triad, Intel icc, Westmere EP, pinned with likwid-pin",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let samples = parsed.positional_number(100)?;
        Ok(likwid_bench::stream_figure_report(likwid_bench::stream_figures()[1], samples, 5))
    }));
}

//! Regenerates Figure 5: STREAM triad, Intel icc, Westmere EP, pinned with
//! likwid-pin (round robin across sockets, physical cores first).

fn main() {
    std::process::exit(likwid_bench::stream_figure_bin_main(
        "fig05_stream_icc_pinned",
        "Figure 5: STREAM triad, Intel icc, Westmere EP, pinned with likwid-pin",
        1,
    ));
}

//! Regenerates Figure 6: STREAM triad, Intel icc, Westmere EP, with the
//! Intel OpenMP affinity interface set to scatter.

fn main() {
    let spec = likwid_bench::stream_figure_spec(
        "fig06_stream_icc_scatter",
        "Figure 6: STREAM triad, Intel icc, Westmere EP, KMP_AFFINITY=scatter",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let samples = parsed.positional_number(100)?;
        Ok(likwid_bench::stream_figure_report(likwid_bench::stream_figures()[2], samples, 6))
    }));
}

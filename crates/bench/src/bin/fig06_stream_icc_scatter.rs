//! Regenerates Figure 6: STREAM triad, Intel icc, Westmere EP, with the
//! Intel OpenMP affinity interface set to scatter.

fn main() {
    std::process::exit(likwid_bench::stream_figure_bin_main(
        "fig06_stream_icc_scatter",
        "Figure 6: STREAM triad, Intel icc, Westmere EP, KMP_AFFINITY=scatter",
        2,
    ));
}

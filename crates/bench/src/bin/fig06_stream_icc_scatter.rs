//! Regenerates Figure 6: STREAM triad, Intel icc, Westmere EP, with the
//! Intel OpenMP affinity interface set to scatter.

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let fig = likwid_bench::stream_figures()[2];
    print!("{}", likwid_bench::stream_figure_text(fig, samples, 6));
}

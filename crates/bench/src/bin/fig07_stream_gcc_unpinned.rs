//! Regenerates Figure 7: STREAM triad, gcc, Westmere EP, not pinned.

fn main() {
    std::process::exit(likwid_bench::stream_figure_bin_main(
        "fig07_stream_gcc_unpinned",
        "Figure 7: STREAM triad, gcc, Westmere EP, not pinned",
        3,
    ));
}

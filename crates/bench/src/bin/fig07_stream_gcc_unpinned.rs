//! Regenerates Figure 7: STREAM triad, gcc, Westmere EP, not pinned.

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let fig = likwid_bench::stream_figures()[3];
    print!("{}", likwid_bench::stream_figure_text(fig, samples, 7));
}

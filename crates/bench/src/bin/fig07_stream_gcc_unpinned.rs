//! Regenerates Figure 7: STREAM triad, gcc, Westmere EP, not pinned.

fn main() {
    let spec = likwid_bench::stream_figure_spec(
        "fig07_stream_gcc_unpinned",
        "Figure 7: STREAM triad, gcc, Westmere EP, not pinned",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let samples = parsed.positional_number(100)?;
        Ok(likwid_bench::stream_figure_report(likwid_bench::stream_figures()[3], samples, 7))
    }));
}

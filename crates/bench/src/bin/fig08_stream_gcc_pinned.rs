//! Regenerates Figure 8: STREAM triad, gcc, Westmere EP, pinned with
//! likwid-pin.

fn main() {
    std::process::exit(likwid_bench::stream_figure_bin_main(
        "fig08_stream_gcc_pinned",
        "Figure 8: STREAM triad, gcc, Westmere EP, pinned with likwid-pin",
        4,
    ));
}

//! Regenerates Figure 8: STREAM triad, gcc, Westmere EP, pinned with
//! likwid-pin.

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let fig = likwid_bench::stream_figures()[4];
    print!("{}", likwid_bench::stream_figure_text(fig, samples, 8));
}

//! Regenerates Figure 8: STREAM triad, gcc, Westmere EP, pinned with
//! likwid-pin.

fn main() {
    let spec = likwid_bench::stream_figure_spec(
        "fig08_stream_gcc_pinned",
        "Figure 8: STREAM triad, gcc, Westmere EP, pinned with likwid-pin",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let samples = parsed.positional_number(100)?;
        Ok(likwid_bench::stream_figure_report(likwid_bench::stream_figures()[4], samples, 8))
    }));
}

//! Regenerates Figure 9: STREAM triad, Intel icc, AMD Istanbul, not pinned.

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let fig = likwid_bench::stream_figures()[5];
    print!("{}", likwid_bench::stream_figure_text(fig, samples, 9));
}

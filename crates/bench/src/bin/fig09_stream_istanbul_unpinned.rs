//! Regenerates Figure 9: STREAM triad, Intel icc, AMD Istanbul, not pinned.

fn main() {
    std::process::exit(likwid_bench::stream_figure_bin_main(
        "fig09_stream_istanbul_unpinned",
        "Figure 9: STREAM triad, Intel icc, AMD Istanbul, not pinned",
        5,
    ));
}

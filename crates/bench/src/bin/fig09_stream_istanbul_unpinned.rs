//! Regenerates Figure 9: STREAM triad, Intel icc, AMD Istanbul, not pinned.

fn main() {
    let spec = likwid_bench::stream_figure_spec(
        "fig09_stream_istanbul_unpinned",
        "Figure 9: STREAM triad, Intel icc, AMD Istanbul, not pinned",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let samples = parsed.positional_number(100)?;
        Ok(likwid_bench::stream_figure_report(likwid_bench::stream_figures()[5], samples, 9))
    }));
}

//! Regenerates Figure 10: STREAM triad, Intel icc, AMD Istanbul, pinned with
//! likwid-pin.

fn main() {
    let spec = likwid_bench::stream_figure_spec(
        "fig10_stream_istanbul_pinned",
        "Figure 10: STREAM triad, Intel icc, AMD Istanbul, pinned with likwid-pin",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let samples = parsed.positional_number(100)?;
        Ok(likwid_bench::stream_figure_report(likwid_bench::stream_figures()[6], samples, 10))
    }));
}

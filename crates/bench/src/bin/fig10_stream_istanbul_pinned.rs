//! Regenerates Figure 10: STREAM triad, Intel icc, AMD Istanbul, pinned with
//! likwid-pin.

fn main() {
    std::process::exit(likwid_bench::stream_figure_bin_main(
        "fig10_stream_istanbul_pinned",
        "Figure 10: STREAM triad, Intel icc, AMD Istanbul, pinned with likwid-pin",
        6,
    ));
}

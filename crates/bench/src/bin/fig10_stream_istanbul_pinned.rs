//! Regenerates Figure 10: STREAM triad, Intel icc, AMD Istanbul, pinned with
//! likwid-pin.

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let fig = likwid_bench::stream_figures()[6];
    print!("{}", likwid_bench::stream_figure_text(fig, samples, 10));
}

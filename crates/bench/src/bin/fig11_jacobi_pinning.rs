//! Regenerates Figure 11: Jacobi MLUPS vs. problem size for the three
//! pinning/blocking variants.
//!
//! Pass problem sizes as arguments to override the default sweep.

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let sizes = if args.is_empty() { vec![50, 100, 150, 200, 250] } else { args };
    print!("{}", likwid_bench::figure11_text(&sizes, 4));
}

//! Regenerates Figure 11: Jacobi MLUPS vs. problem size for the three
//! pinning/blocking variants.
//!
//! Pass problem sizes as arguments to override the default sweep.

use likwid::args::ArgSpec;
use likwid::LikwidError;

fn main() {
    let spec = ArgSpec::new(
        "fig11_jacobi_pinning",
        "Figure 11: 3D Jacobi MLUPS vs. problem size for three pinning/blocking variants",
    )
    .positional("size", "problem sizes (default: 50 100 150 200 250)", true);
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let sizes: Vec<usize> = parsed
            .positionals()
            .iter()
            .map(|raw| raw.parse().map_err(|_| LikwidError::Usage(format!("bad size '{raw}'"))))
            .collect::<likwid::Result<_>>()?;
        let sizes = if sizes.is_empty() { vec![50, 100, 150, 200, 250] } else { sizes };
        Ok(likwid_bench::figure11_report(&sizes, 4))
    }));
}

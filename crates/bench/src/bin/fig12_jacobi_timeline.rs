//! Time-resolved Jacobi case study: the blocked vs naive phase structure
//! in MEM bandwidth over virtual time (timeline mode on the experiment
//! harness).

fn main() {
    let spec = likwid_bench::jacobi_timeline_spec();
    std::process::exit(likwid_bench::figure_bin_main(
        &spec,
        likwid_bench::jacobi_timeline_report_from,
    ));
}

//! `likwid-bench`: run a registered microbenchmark kernel on a simulated
//! machine and report bandwidth, flops and optional counter metrics.

fn main() {
    let spec = likwid_bench::microbench::likwid_bench_spec();
    std::process::exit(likwid_bench::figure_bin_main(
        &spec,
        likwid_bench::microbench::likwid_bench_report,
    ));
}

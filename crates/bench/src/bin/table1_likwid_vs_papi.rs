//! Regenerates Table I (qualitative comparison) and adds the measured
//! marker-API vs. PAPI-style API overhead.

fn main() {
    print!("{}", likwid_bench::table1_text());
    let (likwid_ns, papi_ns) = likwid_bench::api_overhead_ns(10_000);
    println!("\nMeasured API overhead per start/stop pair (simulated machine):");
    println!("  LIKWID marker API : {likwid_ns:8.0} ns");
    println!("  PAPI-style API    : {papi_ns:8.0} ns");
}

//! Regenerates Table I (qualitative comparison) and adds the measured
//! marker-API vs. PAPI-style API overhead.

use likwid::args::ArgSpec;

fn main() {
    let spec = ArgSpec::new(
        "table1_likwid_vs_papi",
        "Table I: LIKWID vs. PAPI comparison plus measured API overhead",
    );
    std::process::exit(likwid_bench::figure_bin_main(&spec, |_| {
        Ok(likwid_bench::table1_bin_report(10_000))
    }));
}

//! Regenerates Table II: uncore traffic and performance of the three Jacobi
//! variants on one Nehalem EP socket, measured through likwid-perfctr.
//!
//! Pass a grid size as the first argument (default 150).

use likwid::args::ArgSpec;

fn main() {
    let spec = ArgSpec::new(
        "table2_jacobi_traffic",
        "Table II: uncore traffic and MLUPS of the three Jacobi variants",
    )
    .positional("size", "grid size (default 150)", false);
    std::process::exit(likwid_bench::figure_bin_main(&spec, |parsed| {
        let size = parsed.positional_number(150)?;
        Ok(likwid_bench::table2_report(size, 4))
    }));
}

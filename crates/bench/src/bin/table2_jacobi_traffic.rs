//! Regenerates Table II: uncore traffic and performance of the three Jacobi
//! variants on one Nehalem EP socket, measured through likwid-perfctr.
//!
//! Pass a grid size as the first argument (default 150).

fn main() {
    let size: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(150);
    print!("{}", likwid_bench::table2_text(size, 4));
}

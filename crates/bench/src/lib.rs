//! Figure and table regeneration harness.
//!
//! Every figure and table of the paper's evaluation (Section IV) has a
//! binary in `src/bin/` that regenerates it against the simulated machines;
//! the shared logic lives here so that the binaries stay thin and the
//! integration tests can call the same functions. The Criterion benches in
//! `benches/` measure the cost of the building blocks themselves (topology
//! probing, counter programming, marker/PAPI API overhead, cache-simulator
//! throughput, the workload models).
//!
//! Output format: plain-text tables with one row per x-axis point, columns
//! `min / q1 / median / q3 / max` for the box-plot figures — the same
//! summary statistics the paper plots.

use likwid::perfctr::{group_definition, supported_groups, EventGroupKind};
use likwid::pin::{PinConfig, PinTool};
use likwid::topology::CpuTopology;
use likwid_affinity::ThreadingModel;
use likwid_workloads::jacobi::{Jacobi, JacobiConfig, JacobiVariant};
use likwid_workloads::openmp::{CompilerPersonality, KmpAffinity, PlacementPolicy};
use likwid_workloads::stream::StreamExperiment;
use likwid_x86_machine::{MachinePreset, SimMachine};

/// Which placement regime a STREAM figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamScenario {
    /// No pinning: the simulated scheduler decides (Figures 4, 7, 9).
    Unpinned,
    /// Pinned with likwid-pin, round robin over sockets, physical cores
    /// first (Figures 5, 8, 10).
    Pinned,
    /// The Intel OpenMP runtime's `KMP_AFFINITY=scatter` (Figure 6).
    KmpScatter,
}

impl StreamScenario {
    /// Caption fragment used in the emitted tables.
    pub fn label(self) -> &'static str {
        match self {
            StreamScenario::Unpinned => "not pinned",
            StreamScenario::Pinned => "pinned with likwid-pin",
            StreamScenario::KmpScatter => "KMP_AFFINITY=scatter",
        }
    }
}

/// Description of one STREAM figure of the paper.
#[derive(Debug, Clone, Copy)]
pub struct StreamFigure {
    /// Figure number in the paper.
    pub number: u32,
    /// Machine the experiment runs on.
    pub preset: MachinePreset,
    /// Compiler personality.
    pub personality: CompilerPersonality,
    /// Placement regime.
    pub scenario: StreamScenario,
}

/// The seven STREAM figures (4–10) of the paper.
pub fn stream_figures() -> Vec<StreamFigure> {
    use CompilerPersonality::{Gcc, IntelIcc};
    use MachinePreset::{IstanbulH2S, WestmereEp2S};
    vec![
        StreamFigure {
            number: 4,
            preset: WestmereEp2S,
            personality: IntelIcc,
            scenario: StreamScenario::Unpinned,
        },
        StreamFigure {
            number: 5,
            preset: WestmereEp2S,
            personality: IntelIcc,
            scenario: StreamScenario::Pinned,
        },
        StreamFigure {
            number: 6,
            preset: WestmereEp2S,
            personality: IntelIcc,
            scenario: StreamScenario::KmpScatter,
        },
        StreamFigure {
            number: 7,
            preset: WestmereEp2S,
            personality: Gcc,
            scenario: StreamScenario::Unpinned,
        },
        StreamFigure {
            number: 8,
            preset: WestmereEp2S,
            personality: Gcc,
            scenario: StreamScenario::Pinned,
        },
        StreamFigure {
            number: 9,
            preset: IstanbulH2S,
            personality: IntelIcc,
            scenario: StreamScenario::Unpinned,
        },
        StreamFigure {
            number: 10,
            preset: IstanbulH2S,
            personality: IntelIcc,
            scenario: StreamScenario::Pinned,
        },
    ]
}

/// Regenerate one STREAM figure as a text table.
///
/// `samples` is the number of runs per thread count (the paper uses 100).
pub fn stream_figure_text(figure: StreamFigure, samples: usize, seed: u64) -> String {
    let mut experiment = StreamExperiment::new(figure.preset, figure.personality);
    experiment.samples_per_point = samples.max(1);
    let counts = experiment.paper_thread_counts();
    let series = experiment.series(
        counts,
        |threads| match figure.scenario {
            StreamScenario::Unpinned => PlacementPolicy::Unpinned,
            StreamScenario::Pinned => experiment.paper_pinned_policy(threads),
            StreamScenario::KmpScatter => PlacementPolicy::Kmp(KmpAffinity::Scatter),
        },
        seed,
    );

    let mut out = String::new();
    out.push_str(&format!(
        "Figure {}: STREAM triad, {} compiler, {}, {} ({} samples per thread count)\n",
        figure.number,
        figure.personality.name(),
        figure.preset.id(),
        figure.scenario.label(),
        samples
    ));
    out.push_str("threads  min[MB/s]  q1[MB/s]  median[MB/s]  q3[MB/s]  max[MB/s]\n");
    for point in &series {
        out.push_str(&format!(
            "{:7}  {:9.0}  {:8.0}  {:12.0}  {:8.0}  {:9.0}\n",
            point.threads,
            point.stats.min,
            point.stats.q1,
            point.stats.median,
            point.stats.q3,
            point.stats.max
        ));
    }
    out
}

/// Regenerate Figure 11: MLUPS vs. problem size for the three Jacobi
/// curves (wavefront on one socket, wavefront split 2+2, threaded baseline).
pub fn figure11_text(sizes: &[usize], time_steps: usize) -> String {
    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let jacobi = Jacobi::new(&machine);
    let one_socket = vec![0usize, 1, 2, 3];
    let split = vec![0usize, 1, 4, 5];

    let mut out = String::new();
    out.push_str("Figure 11: 3D Jacobi smoother on Nehalem EP (2.66 GHz), 4 threads [MLUPS]\n");
    out.push_str(
        "size  wavefront 1x4 (one socket)  wavefront 1x4 (2 per socket)  threaded baseline\n",
    );
    for &size in sizes {
        let wavefront = jacobi.run(&JacobiConfig {
            size,
            time_steps,
            placement: one_socket.clone(),
            variant: JacobiVariant::Wavefront,
        });
        let wrong = jacobi.run(&JacobiConfig {
            size,
            time_steps,
            placement: split.clone(),
            variant: JacobiVariant::Wavefront,
        });
        let baseline = jacobi.run(&JacobiConfig {
            size,
            time_steps,
            placement: one_socket.clone(),
            variant: JacobiVariant::Threaded,
        });
        out.push_str(&format!(
            "{:4}  {:26.0}  {:28.0}  {:17.0}\n",
            size, wavefront.mlups, wrong.mlups, baseline.mlups
        ));
    }
    out
}

/// Regenerate Table II: uncore L3 line counts, data volume and MLUPS for the
/// three Jacobi variants on one Nehalem EP socket, measured through
/// `likwid-perfctr` (counters programmed via MSRs, credited by the counting
/// engine from the simulated run).
pub fn table2_text(size: usize, time_steps: usize) -> String {
    use likwid::perfctr::{MeasurementSpec, PerfCtr, PerfCtrConfig};
    use likwid_perf_events::EventEngine;
    use likwid_workloads::exec::sample_from_simulation;

    let machine = SimMachine::new(MachinePreset::NehalemEp2S);
    let placement = vec![0usize, 1, 2, 3];

    let mut rows = Vec::new();
    for variant in [JacobiVariant::Threaded, JacobiVariant::ThreadedNt, JacobiVariant::Wavefront] {
        // Measure the run through the real tool path: program the uncore
        // events of the custom Table II set, run, credit, read back.
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        let spec = likwid::perfctr::parse_event_spec(
            "UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1",
            &table,
        )
        .expect("event spec");
        let mut session = PerfCtr::new(
            &machine,
            PerfCtrConfig { cpus: placement.clone(), spec: MeasurementSpec::Custom(spec) },
        )
        .expect("session");
        session.start().expect("start");

        let result = Jacobi::new(&machine).run(&JacobiConfig {
            size,
            time_steps,
            placement: placement.clone(),
            variant,
        });
        let sample = sample_from_simulation(&machine, &result.stats, &result.profile);
        EventEngine::new(&machine).apply(&machine, &sample);

        session.stop().expect("stop");
        let counts = session.read_counts().expect("read");
        let results = session.results(&counts).expect("results");
        let lines_in = results.event_count("UNC_L3_LINES_IN_ANY", 0).unwrap_or(0);
        let lines_out = results.event_count("UNC_L3_LINES_OUT_ANY", 0).unwrap_or(0);

        rows.push((
            variant.name().to_string(),
            lines_in,
            lines_out,
            result.memory_bytes as f64 / 1e9,
            result.mlups,
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Table II: likwid-perfCtr measurements on one Nehalem EP socket (N = {size}, {time_steps} sweeps)\n"
    ));
    out.push_str(&format!(
        "{:28} {:>16} {:>16} {:>22} {:>20}\n",
        "", "threaded", "threaded (NT)", "blocked (wavefront)", ""
    ));
    let metric_rows = [
        (
            "UNC_L3_LINES_IN_ANY",
            rows.iter().map(|r| format!("{:.3e}", r.1 as f64)).collect::<Vec<_>>(),
        ),
        (
            "UNC_L3_LINES_OUT_ANY",
            rows.iter().map(|r| format!("{:.3e}", r.2 as f64)).collect::<Vec<_>>(),
        ),
        ("Total data volume [GB]", rows.iter().map(|r| format!("{:.2}", r.3)).collect::<Vec<_>>()),
        ("Performance [MLUPS]", rows.iter().map(|r| format!("{:.0}", r.4)).collect::<Vec<_>>()),
    ];
    for (name, values) in metric_rows {
        out.push_str(&format!(
            "{:28} {:>16} {:>16} {:>22}\n",
            name, values[0], values[1], values[2]
        ));
    }
    out
}

/// Regenerate Table I: the qualitative LIKWID-vs-PAPI comparison.
pub fn table1_text() -> String {
    let mut out = String::new();
    out.push_str("Table I: Comparison between LIKWID and PAPI\n");
    for (aspect, likwid, papi) in likwid_papi_compat::table1_rows() {
        out.push_str(&format!("{aspect}\n  LIKWID: {likwid}\n  PAPI:   {papi}\n"));
    }
    out
}

/// Regenerate Figure 1 and the Section II-B listing: the probed topology of
/// the evaluation machines.
pub fn figure1_text() -> String {
    let mut out = String::new();
    for preset in [MachinePreset::NehalemEp2S, MachinePreset::WestmereEp2S] {
        let machine = SimMachine::new(preset);
        let topo = CpuTopology::probe(&machine).expect("topology probe");
        out.push_str(&format!("==== {} ====\n", preset.id()));
        out.push_str(&topo.render_text(true));
        for socket in 0..topo.sockets {
            out.push_str(&format!("Socket {socket}:\n"));
            out.push_str(&topo.render_ascii_socket(socket));
        }
    }
    out
}

/// Regenerate Figure 2: the mapping from event sets through events to
/// counters for every group supported on an architecture.
pub fn figure2_text(preset: MachinePreset) -> String {
    let machine = SimMachine::new(preset);
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2: event sets -> hardware events -> performance counters ({})\n",
        machine.arch().display_name()
    ));
    for kind in supported_groups(machine.arch()) {
        let def = group_definition(machine.arch(), kind).expect("supported group");
        out.push_str(&format!("{} ({}):\n", kind.name(), kind.description()));
        for (event, slot) in &def.events {
            out.push_str(&format!("    {:40} -> {}\n", event, slot.name()));
        }
        for (metric, formula) in &def.metrics {
            out.push_str(&format!("    metric {:28} = {}\n", metric, formula));
        }
    }
    out
}

/// Regenerate Figure 3: the likwid-pin interception mechanism, traced for
/// an Intel OpenMP binary on the Westmere node.
pub fn figure3_text() -> String {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let tool =
        PinTool::new(&machine, PinConfig::new("0-3").with_model(ThreadingModel::IntelOpenMp))
            .expect("pin configuration");
    let mut out = String::new();
    out.push_str("Figure 3: likwid-pin wrapper mechanism (Intel OpenMP binary, -c 0-3 -t intel)\n");
    let env = tool.environment();
    out.push_str(&format!(
        "exported environment: LIKWID_PIN={} LIKWID_SKIP={} KMP_AFFINITY={} LD_PRELOAD={}\n",
        env.likwid_pin, env.likwid_skip, env.kmp_affinity, env.ld_preload
    ));
    out.push_str(&format!(
        "master thread pinned to hardware thread {:?}\n",
        tool.pinner().master_cpu()
    ));
    let mut pinner = tool.pinner();
    for i in 0..ThreadingModel::IntelOpenMp.created_threads(4) {
        let outcome = pinner.on_thread_create();
        out.push_str(&format!("pthread_create #{i}: {outcome:?}\n"));
    }
    out
}

/// Marker-API vs. PAPI-style API overhead: the measured counterpart to the
/// "User API support" row of Table I. Returns (likwid_ns, papi_ns) per
/// start/stop pair, measured with `iterations` repetitions.
pub fn api_overhead_ns(iterations: u32) -> (f64, f64) {
    use likwid::marker::MarkerApi;
    use likwid::perfctr::{MeasurementSpec, PerfCtr, PerfCtrConfig};
    use likwid_papi_compat::{Papi, PapiPreset};
    use std::time::Instant;

    let machine = SimMachine::new(MachinePreset::Core2Quad);

    let config =
        PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) };
    let mut session = PerfCtr::new(&machine, config).expect("session");
    session.start().expect("start");
    let mut marker = MarkerApi::init(1, 1);
    let region = marker.register_region("bench");
    let start = Instant::now();
    for _ in 0..iterations {
        marker.start_region(0, 0, &session).expect("start region");
        marker.stop_region(0, 0, region, &session).expect("stop region");
    }
    let likwid_ns = start.elapsed().as_nanos() as f64 / iterations as f64;

    let mut papi = Papi::library_init(&machine);
    let set = papi.create_eventset(0).expect("eventset");
    papi.add_event(set, PapiPreset::PAPI_DP_OPS).expect("add");
    papi.add_event(set, PapiPreset::PAPI_TOT_CYC).expect("add");
    let start = Instant::now();
    for _ in 0..iterations {
        papi.start(set).expect("start");
        papi.stop(set).expect("stop");
    }
    let papi_ns = start.elapsed().as_nanos() as f64 / iterations as f64;

    (likwid_ns, papi_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stream_figures_are_described() {
        let figs = stream_figures();
        assert_eq!(figs.len(), 7);
        assert_eq!(figs[0].number, 4);
        assert_eq!(figs[6].number, 10);
    }

    #[test]
    fn stream_figure_text_has_one_row_per_thread_count() {
        let fig = stream_figures()[1]; // Figure 5, pinned (deterministic, cheap)
        let text = stream_figure_text(fig, 3, 1);
        let rows = text
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit() || c == ' '))
            .count();
        assert!(text.contains("Figure 5"));
        assert!(rows >= 24, "24 thread counts on the Westmere node:\n{text}");
    }

    #[test]
    fn figure11_text_contains_all_three_curves() {
        let text = figure11_text(&[32, 48], 4);
        assert!(text.contains("wavefront 1x4 (one socket)"));
        assert!(text.contains("2 per socket"));
        assert!(text.contains("threaded baseline"));
        assert_eq!(text.lines().count(), 2 + 2, "header lines plus one row per size");
    }

    #[test]
    fn table2_text_reports_the_four_metrics() {
        let text = table2_text(48, 4);
        assert!(text.contains("UNC_L3_LINES_IN_ANY"));
        assert!(text.contains("UNC_L3_LINES_OUT_ANY"));
        assert!(text.contains("Total data volume [GB]"));
        assert!(text.contains("Performance [MLUPS]"));
    }

    #[test]
    fn table1_and_conceptual_figures_render() {
        assert!(table1_text().contains("Thread and process pinning"));
        assert!(figure1_text().contains("Cache Topology"));
        let fig2 = figure2_text(MachinePreset::WestmereEp2S);
        assert!(fig2.contains("FLOPS_DP"));
        assert!(fig2.contains("UPMC0"));
        let fig3 = figure3_text();
        assert!(fig3.contains("Skipped"));
        assert!(fig3.contains("KMP_AFFINITY=disabled"));
    }

    #[test]
    fn api_overhead_measures_both_interfaces() {
        let (likwid_ns, papi_ns) = api_overhead_ns(100);
        assert!(likwid_ns > 0.0);
        assert!(papi_ns > 0.0);
    }
}

//! Figure and table regeneration harness.
//!
//! Every figure and table of the paper's evaluation (Section IV) has a
//! binary in `src/bin/` that regenerates it against the simulated machines;
//! the shared logic lives here so that the binaries stay thin and the
//! integration tests can call the same functions. The Criterion benches in
//! `benches/` measure the cost of the building blocks themselves (topology
//! probing, counter programming, marker/PAPI API overhead, cache-simulator
//! throughput, the workload models).
//!
//! Output: every generator builds a typed [`likwid::Report`] — one table
//! row per x-axis point, columns `min / q1 / median / q3 / max` for the
//! box-plot figures, the same summary statistics the paper plots. The
//! `*_text` helpers render the classic plain-text form; the binaries accept
//! `-O <ascii|csv|json>` / `-o <file>` through [`figure_bin_main`] like the
//! four tools.

use likwid::args::{ArgSpec, ParsedArgs};
use likwid::perfctr::{group_definition, supported_groups, EventGroupKind};
use likwid::pin::{PinConfig, PinTool};
use likwid::report::{
    Ascii, Body, KvEntry, Render, Report, Row, Section, Table, TimeSeries, Value,
};
use likwid::topology::CpuTopology;
use likwid_affinity::ThreadingModel;
use likwid_fleet::{
    run_sweep, PlacementAxis, RunOptions, SeedRule, SweepSpec, ThreadsAxis, WorkloadSpec,
};
use likwid_workloads::jacobi::{JacobiVariant, JacobiWorkload};
use likwid_workloads::openmp::{CompilerPersonality, PlacementPolicy};
use likwid_workloads::workload::WorkloadRun;
use likwid_workloads::Experiment;
use likwid_x86_machine::{MachinePreset, SimMachine};

pub mod microbench;

/// Which placement regime a STREAM figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamScenario {
    /// No pinning: the simulated scheduler decides (Figures 4, 7, 9).
    Unpinned,
    /// Pinned with likwid-pin, round robin over sockets, physical cores
    /// first (Figures 5, 8, 10).
    Pinned,
    /// The Intel OpenMP runtime's `KMP_AFFINITY=scatter` (Figure 6).
    KmpScatter,
}

impl StreamScenario {
    /// Caption fragment used in the emitted tables.
    pub fn label(self) -> &'static str {
        match self {
            StreamScenario::Unpinned => "not pinned",
            StreamScenario::Pinned => "pinned with likwid-pin",
            StreamScenario::KmpScatter => "KMP_AFFINITY=scatter",
        }
    }
}

/// Description of one STREAM figure of the paper.
#[derive(Debug, Clone, Copy)]
pub struct StreamFigure {
    /// Figure number in the paper.
    pub number: u32,
    /// Machine the experiment runs on.
    pub preset: MachinePreset,
    /// Compiler personality.
    pub personality: CompilerPersonality,
    /// Placement regime.
    pub scenario: StreamScenario,
}

/// The seven STREAM figures (4–10) of the paper.
pub fn stream_figures() -> Vec<StreamFigure> {
    use CompilerPersonality::{Gcc, IntelIcc};
    use MachinePreset::{IstanbulH2S, WestmereEp2S};
    vec![
        StreamFigure {
            number: 4,
            preset: WestmereEp2S,
            personality: IntelIcc,
            scenario: StreamScenario::Unpinned,
        },
        StreamFigure {
            number: 5,
            preset: WestmereEp2S,
            personality: IntelIcc,
            scenario: StreamScenario::Pinned,
        },
        StreamFigure {
            number: 6,
            preset: WestmereEp2S,
            personality: IntelIcc,
            scenario: StreamScenario::KmpScatter,
        },
        StreamFigure {
            number: 7,
            preset: WestmereEp2S,
            personality: Gcc,
            scenario: StreamScenario::Unpinned,
        },
        StreamFigure {
            number: 8,
            preset: WestmereEp2S,
            personality: Gcc,
            scenario: StreamScenario::Pinned,
        },
        StreamFigure {
            number: 9,
            preset: IstanbulH2S,
            personality: IntelIcc,
            scenario: StreamScenario::Unpinned,
        },
        StreamFigure {
            number: 10,
            preset: IstanbulH2S,
            personality: IntelIcc,
            scenario: StreamScenario::Pinned,
        },
    ]
}

/// The declarative fleet sweep behind one STREAM figure: the whole
/// `1..=num_hw_threads` family as a single [`SweepSpec`] instead of a
/// hand-rolled loop.
pub fn stream_figure_sweep(figure: StreamFigure, samples: usize, seed: u64) -> SweepSpec {
    let mut sweep = SweepSpec::new(WorkloadSpec::StreamTriad, figure.preset);
    sweep.personalities = vec![figure.personality];
    sweep.placements = vec![match figure.scenario {
        StreamScenario::Unpinned => PlacementAxis::Unpinned,
        // The paper's pinned runs: round robin across sockets, physical
        // cores before SMT threads.
        StreamScenario::Pinned => PlacementAxis::Scatter,
        StreamScenario::KmpScatter => PlacementAxis::KmpScatter,
    }];
    sweep.threads = ThreadsAxis::AllHwThreads;
    sweep.samples = samples.max(1);
    sweep.seed = SeedRule::XorThreads(seed);
    sweep
}

/// Regenerate one STREAM figure as a typed report by running its
/// [`stream_figure_sweep`] through the fleet scheduler (the points of the
/// family run in parallel; the report is deterministic regardless).
///
/// `samples` is the number of runs per thread count (the paper uses 100).
pub fn stream_figure_report(figure: StreamFigure, samples: usize, seed: u64) -> Report {
    let sweep = stream_figure_sweep(figure, samples, seed);
    let outcome = run_sweep(&sweep, &RunOptions::default())
        .expect("a counter-less figure sweep cannot fail to expand");

    let mut table =
        Table::plain(vec!["threads", "min_mb_s", "q1_mb_s", "median_mb_s", "q3_mb_s", "max_mb_s"])
            .with_ascii_header("threads  min[MB/s]  q1[MB/s]  median[MB/s]  q3[MB/s]  max[MB/s]");
    for (point, result) in &outcome.points {
        let result = result.as_ref().expect("a counter-less experiment cannot fail");
        let stats = likwid_workloads::BoxStats::from_samples(&result.bandwidths)
            .expect("at least one sample");
        let threads = point.threads;
        table.push(
            Row::new(vec![
                Value::Count(threads as u64),
                Value::Real(stats.min),
                Value::Real(stats.q1),
                Value::Real(stats.median),
                Value::Real(stats.q3),
                Value::Real(stats.max),
            ])
            .with_ascii(format!(
                "{:7}  {:9.0}  {:8.0}  {:12.0}  {:8.0}  {:9.0}",
                threads, stats.min, stats.q1, stats.median, stats.q3, stats.max
            )),
        );
    }
    let mut report = Report::new(format!("figure{}", figure.number));
    report.push(Section::new("series", Body::Table(table)).with_heading(format!(
        "Figure {}: STREAM triad, {} compiler, {}, {} ({} samples per thread count)",
        figure.number,
        figure.personality.name(),
        figure.preset.id(),
        figure.scenario.label(),
        samples
    )));
    report
}

/// Regenerate one STREAM figure as a text table.
pub fn stream_figure_text(figure: StreamFigure, samples: usize, seed: u64) -> String {
    Ascii.render(&stream_figure_report(figure, samples, seed))
}

/// Regenerate Figure 11 as a typed report: MLUPS vs. problem size for the
/// three Jacobi curves (wavefront on one socket, wavefront split 2+2,
/// threaded baseline).
pub fn figure11_report(sizes: &[usize], time_steps: usize) -> Report {
    let one_socket = vec![0usize, 1, 2, 3];
    let split = vec![0usize, 1, 4, 5];
    let run = |variant: JacobiVariant, placement: &[usize], size: usize| -> WorkloadRun {
        Experiment::on(MachinePreset::NehalemEp2S)
            .placement(PlacementPolicy::LikwidPin(placement.to_vec()))
            .run(&JacobiWorkload { variant, size, time_steps })
            .expect("a counter-less experiment cannot fail")
            .runs
            .remove(0)
    };
    let mlups = |r: &WorkloadRun| r.iterations_per_second() / 1e6;

    let mut table = Table::plain(vec![
        "size",
        "wavefront_one_socket_mlups",
        "wavefront_split_mlups",
        "threaded_mlups",
    ])
    .with_ascii_header(
        "size  wavefront 1x4 (one socket)  wavefront 1x4 (2 per socket)  threaded baseline",
    );
    for &size in sizes {
        let wavefront = run(JacobiVariant::Wavefront, &one_socket, size);
        let wrong = run(JacobiVariant::Wavefront, &split, size);
        let baseline = run(JacobiVariant::Threaded, &one_socket, size);
        table.push(
            Row::new(vec![
                Value::Count(size as u64),
                Value::Real(mlups(&wavefront)),
                Value::Real(mlups(&wrong)),
                Value::Real(mlups(&baseline)),
            ])
            .with_ascii(format!(
                "{:4}  {:26.0}  {:28.0}  {:17.0}",
                size,
                mlups(&wavefront),
                mlups(&wrong),
                mlups(&baseline)
            )),
        );
    }
    let mut report = Report::new("figure11");
    report.push(
        Section::new("series", Body::Table(table)).with_heading(
            "Figure 11: 3D Jacobi smoother on Nehalem EP (2.66 GHz), 4 threads [MLUPS]",
        ),
    );
    report
}

/// Regenerate Figure 11 as a text table.
pub fn figure11_text(sizes: &[usize], time_steps: usize) -> String {
    Ascii.render(&figure11_report(sizes, time_steps))
}

/// The time-resolved Jacobi case study: MEM bandwidth over virtual time
/// for the naive threaded sweep vs. the temporally blocked wavefront, four
/// threads on one Nehalem EP socket, measured through the timeline mode of
/// the experiment harness.
///
/// The phase structure that end-to-end totals hide becomes visible here:
/// the threaded variant alternates memory-saturating sweeps with
/// zero-traffic fork/join barriers (a sawtooth in the bandwidth series),
/// while the wavefront streams steadily at a fraction of the bandwidth
/// because only the pipeline's two ends touch main memory.
pub fn jacobi_timeline_report(
    size: usize,
    time_steps: usize,
    interval_s: f64,
) -> likwid::Result<Report> {
    let placement = vec![0usize, 1, 2, 3];
    let mut report = Report::new("fig12");
    report.push(Section::new("banner", Body::Text(String::new())).with_heading(format!(
        "Time-resolved Jacobi on one Nehalem EP socket (N = {size}, {time_steps} sweeps, \
             4 threads, sampling interval {} s)",
        likwid::output::format_value(interval_s)
    )));
    for (variant, label) in
        [(JacobiVariant::Threaded, "threaded"), (JacobiVariant::Wavefront, "wavefront")]
    {
        let result = Experiment::on(MachinePreset::NehalemEp2S)
            .placement(PlacementPolicy::LikwidPin(placement.clone()))
            .group(EventGroupKind::MEM)
            .timeline(interval_s)
            .run(&JacobiWorkload { variant, size, time_steps })?;
        let timeline = result.timeline.as_ref().expect("timeline was configured");
        let run = result.first();
        let series = timeline.time_series("MEM").expect("MEM group series");
        // The socket-lock owner (hardware thread 0) carries the uncore
        // bandwidth counts; the other threads read 0 for them.
        let bandwidth = TimeSeries {
            timestamps: series.timestamps.clone(),
            series: series
                .series
                .iter()
                .filter(|s| s.cpu == 0 && s.metric == "Memory bandwidth [MBytes/s]")
                .cloned()
                .collect(),
        };
        report.push(
            Section::new(format!("{label}.summary"), {
                Body::KeyValues(vec![
                    KvEntry::new("Runtime [s]", Value::Real(run.runtime_s)),
                    KvEntry::new(
                        "Performance [MLUPS]",
                        Value::Real(run.iterations_per_second() / 1e6),
                    ),
                    KvEntry::new(
                        "Memory data volume [GBytes]",
                        Value::Real(run.stats.total_memory_bytes() as f64 / 1e9),
                    ),
                ])
            })
            .with_heading(format!("{}:", variant.name())),
        );
        report.push(Section::new(format!("{label}.timeline"), Body::TimeSeries(bandwidth)));
    }
    Ok(report)
}

/// The argument spec of the `fig12_jacobi_timeline` binary.
pub fn jacobi_timeline_spec() -> ArgSpec {
    ArgSpec::new(
        "fig12_jacobi_timeline",
        "time-resolved Jacobi: blocked vs naive phase structure in MEM bandwidth",
    )
    .flag("-t", None, Some("interval"), "sampling interval of virtual time (default 200us)")
    .flag("-s", None, Some("steps"), "time steps / sweeps (default 4)")
    .positional("size", "grid size in every dimension (default 104)", false)
}

/// Build the `fig12_jacobi_timeline` report from parsed arguments.
pub fn jacobi_timeline_report_from(parsed: &ParsedArgs) -> likwid::Result<Report> {
    let size = parsed.positional_number(104)?;
    let time_steps: usize = match parsed.value("-s") {
        None => 4,
        Some(raw) => raw
            .parse()
            .map_err(|_| likwid::LikwidError::Usage(format!("bad time step count '{raw}'")))?,
    };
    let interval_s = match parsed.value("-t") {
        None => 200e-6,
        Some(raw) => likwid::perfctr::parse_interval(raw)?,
    };
    jacobi_timeline_report(size, time_steps, interval_s)
}

/// Regenerate Table II as a typed report: uncore L3 line counts, data
/// volume and MLUPS for the three Jacobi variants on one Nehalem EP socket,
/// measured through `likwid-perfctr` (counters programmed via MSRs,
/// credited by the counting engine from the simulated run).
pub fn table2_report(size: usize, time_steps: usize) -> Report {
    let preset = MachinePreset::NehalemEp2S;
    let placement = vec![0usize, 1, 2, 3];
    // The custom Table II uncore event set, measured through the real tool
    // path (session programming, marker region, counting engine, read-back)
    // by the experiment harness.
    let event_table = likwid_perf_events::tables::for_arch(preset.arch());
    let spec = likwid::perfctr::parse_measurement_spec(
        "UNC_L3_LINES_IN_ANY:UPMC0,UNC_L3_LINES_OUT_ANY:UPMC1",
        &event_table,
    )
    .expect("event spec");

    let mut rows = Vec::new();
    for variant in [JacobiVariant::Threaded, JacobiVariant::ThreadedNt, JacobiVariant::Wavefront] {
        let result = Experiment::on(preset)
            .placement(PlacementPolicy::LikwidPin(placement.clone()))
            .counters(spec.clone())
            .run(&JacobiWorkload { variant, size, time_steps })
            .expect("Table II measurement");
        let counters = result.counters.as_ref().expect("counters were configured");
        let lines_in = counters.event_count("UNC_L3_LINES_IN_ANY", 0).unwrap_or(0);
        let lines_out = counters.event_count("UNC_L3_LINES_OUT_ANY", 0).unwrap_or(0);
        let run = result.first();
        rows.push((
            lines_in,
            lines_out,
            run.stats.total_memory_bytes() as f64 / 1e9,
            run.iterations_per_second() / 1e6,
        ));
    }

    let mut table = Table::plain(vec!["metric", "threaded", "threaded_nt", "wavefront"])
        .with_ascii_header(format!(
            "{:28} {:>16} {:>16} {:>22} {:>20}",
            "", "threaded", "threaded (NT)", "blocked (wavefront)", ""
        ));
    let count_row = |name: &str, values: [u64; 3]| {
        let ascii: Vec<String> = values.iter().map(|&v| format!("{:.3e}", v as f64)).collect();
        Row::new(vec![
            Value::Str(name.to_string()),
            Value::Count(values[0]),
            Value::Count(values[1]),
            Value::Count(values[2]),
        ])
        .with_ascii(format!("{:28} {:>16} {:>16} {:>22}", name, ascii[0], ascii[1], ascii[2]))
    };
    table.push(count_row("UNC_L3_LINES_IN_ANY", [rows[0].0, rows[1].0, rows[2].0]));
    table.push(count_row("UNC_L3_LINES_OUT_ANY", [rows[0].1, rows[1].1, rows[2].1]));
    table.push(
        Row::new(vec![
            Value::Str("Total data volume [GB]".to_string()),
            Value::Real(rows[0].2),
            Value::Real(rows[1].2),
            Value::Real(rows[2].2),
        ])
        .with_ascii(format!(
            "{:28} {:>16} {:>16} {:>22}",
            "Total data volume [GB]",
            format!("{:.2}", rows[0].2),
            format!("{:.2}", rows[1].2),
            format!("{:.2}", rows[2].2)
        )),
    );
    table.push(
        Row::new(vec![
            Value::Str("Performance [MLUPS]".to_string()),
            Value::Real(rows[0].3),
            Value::Real(rows[1].3),
            Value::Real(rows[2].3),
        ])
        .with_ascii(format!(
            "{:28} {:>16} {:>16} {:>22}",
            "Performance [MLUPS]",
            format!("{:.0}", rows[0].3),
            format!("{:.0}", rows[1].3),
            format!("{:.0}", rows[2].3)
        )),
    );

    let mut report = Report::new("table2");
    report.push(Section::new("measurements", Body::Table(table)).with_heading(format!(
        "Table II: likwid-perfCtr measurements on one Nehalem EP socket (N = {size}, {time_steps} sweeps)"
    )));
    report
}

/// Regenerate Table II as a text table.
pub fn table2_text(size: usize, time_steps: usize) -> String {
    Ascii.render(&table2_report(size, time_steps))
}

/// Regenerate Table I as a typed report: the qualitative LIKWID-vs-PAPI
/// comparison.
pub fn table1_report() -> Report {
    let mut table = Table::plain(vec!["aspect", "likwid", "papi"]);
    for (aspect, likwid, papi) in likwid_papi_compat::table1_rows() {
        table.push(
            Row::new(vec![
                Value::Str(aspect.to_string()),
                Value::Str(likwid.to_string()),
                Value::Str(papi.to_string()),
            ])
            .with_ascii(format!("{aspect}\n  LIKWID: {likwid}\n  PAPI:   {papi}")),
        );
    }
    let mut report = Report::new("table1");
    report.push(
        Section::new("comparison", Body::Table(table))
            .with_heading("Table I: Comparison between LIKWID and PAPI"),
    );
    report
}

/// Regenerate Table I as text.
pub fn table1_text() -> String {
    Ascii.render(&table1_report())
}

/// The full report of the Table I binary: the qualitative comparison plus
/// the measured marker-API vs. PAPI-style API overhead.
pub fn table1_bin_report(iterations: u32) -> Report {
    let mut report = table1_report();
    let (likwid_ns, papi_ns) = api_overhead_ns(iterations);
    report.push(
        Section::new(
            "api-overhead",
            Body::KeyValues(vec![
                KvEntry::new("LIKWID marker API [ns]", Value::Real(likwid_ns))
                    .with_ascii(format!("  LIKWID marker API : {likwid_ns:8.0} ns")),
                KvEntry::new("PAPI-style API [ns]", Value::Real(papi_ns))
                    .with_ascii(format!("  PAPI-style API    : {papi_ns:8.0} ns")),
            ]),
        )
        .with_heading("\nMeasured API overhead per start/stop pair (simulated machine):"),
    );
    report
}

/// Regenerate Figure 1 and the Section II-B listing as a typed report: the
/// probed topology of the evaluation machines.
pub fn figure1_report() -> Report {
    let mut report = Report::new("figure1");
    for preset in [MachinePreset::NehalemEp2S, MachinePreset::WestmereEp2S] {
        let machine = SimMachine::new(preset);
        let topo = CpuTopology::probe(&machine).expect("topology probe");
        report.push(
            Section::new(format!("{}.banner", preset.id()), Body::Text(String::new()))
                .with_heading(format!("==== {} ====", preset.id())),
        );
        for mut section in topo.report(true, true).sections {
            section.id = format!("{}.{}", preset.id(), section.id);
            report.push(section);
        }
    }
    report
}

/// Regenerate Figure 1 as text.
pub fn figure1_text() -> String {
    Ascii.render(&figure1_report())
}

/// Regenerate Figure 2 as a typed report: the mapping from event sets
/// through events to counters for every group supported on an architecture.
pub fn figure2_report(preset: MachinePreset) -> Report {
    let machine = SimMachine::new(preset);
    let mut report = Report::new("figure2");
    report.push(
        Section::new(format!("{}.banner", preset.id()), Body::Text(String::new())).with_heading(
            format!(
                "Figure 2: event sets -> hardware events -> performance counters ({})",
                machine.arch().display_name()
            ),
        ),
    );
    for kind in supported_groups(machine.arch()) {
        let def = group_definition(machine.arch(), kind).expect("supported group");
        let mut table = Table::plain(vec!["kind", "name", "mapping"]);
        for (event, slot) in &def.events {
            table.push(
                Row::new(vec![
                    Value::Str("event".to_string()),
                    Value::Str(event.to_string()),
                    Value::Str(slot.name()),
                ])
                .with_ascii(format!("    {:40} -> {}", event, slot.name())),
            );
        }
        for (metric, formula) in &def.metrics {
            table.push(
                Row::new(vec![
                    Value::Str("metric".to_string()),
                    Value::Str(metric.to_string()),
                    Value::Str(formula.to_string()),
                ])
                .with_ascii(format!("    metric {:28} = {}", metric, formula)),
            );
        }
        report.push(
            Section::new(format!("{}.group.{}", preset.id(), kind.name()), Body::Table(table))
                .with_heading(format!("{} ({}):", kind.name(), kind.description())),
        );
    }
    report
}

/// Regenerate Figure 2 as text.
pub fn figure2_text(preset: MachinePreset) -> String {
    Ascii.render(&figure2_report(preset))
}

/// Regenerate Figure 3 as a typed report: the likwid-pin interception
/// mechanism, traced for an Intel OpenMP binary on the Westmere node.
pub fn figure3_report() -> Report {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let tool =
        PinTool::new(&machine, PinConfig::new("0-3").with_model(ThreadingModel::IntelOpenMp))
            .expect("pin configuration");
    let env = tool.environment();
    let mut entries = vec![
        KvEntry::new(
            "exported environment",
            Value::Str(format!(
                "LIKWID_PIN={} LIKWID_SKIP={} KMP_AFFINITY={} LD_PRELOAD={}",
                env.likwid_pin, env.likwid_skip, env.kmp_affinity, env.ld_preload
            )),
        ),
        {
            let master = tool.pinner().master_cpu();
            let value = match master {
                Some(c) => Value::CpuId(c),
                None => Value::Str("unpinned".to_string()),
            };
            KvEntry::new("master thread", value)
                .with_ascii(format!("master thread pinned to hardware thread {master:?}"))
        },
    ];
    let mut pinner = tool.pinner();
    for i in 0..ThreadingModel::IntelOpenMp.created_threads(4) {
        let outcome = pinner.on_thread_create();
        entries
            .push(KvEntry::new(format!("pthread_create #{i}"), Value::Str(format!("{outcome:?}"))));
    }
    let mut report = Report::new("figure3");
    report.push(Section::new("mechanism", Body::KeyValues(entries)).with_heading(
        "Figure 3: likwid-pin wrapper mechanism (Intel OpenMP binary, -c 0-3 -t intel)",
    ));
    report
}

/// Regenerate Figure 3 as text.
pub fn figure3_text() -> String {
    Ascii.render(&figure3_report())
}

/// Marker-API vs. PAPI-style API overhead: the measured counterpart to the
/// "User API support" row of Table I. Returns (likwid_ns, papi_ns) per
/// start/stop pair, measured with `iterations` repetitions.
pub fn api_overhead_ns(iterations: u32) -> (f64, f64) {
    use likwid::marker::MarkerApi;
    use likwid::perfctr::{MeasurementSpec, PerfCtr, PerfCtrConfig};
    use likwid_papi_compat::{Papi, PapiPreset};
    use std::time::Instant;

    let machine = SimMachine::new(MachinePreset::Core2Quad);

    let config =
        PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) };
    let mut session = PerfCtr::new(&machine, config).expect("session");
    session.start().expect("start");
    let mut marker = MarkerApi::init(1, 1);
    let region = marker.register_region("bench");
    let start = Instant::now();
    for _ in 0..iterations {
        marker.start_region(0, 0, &session).expect("start region");
        marker.stop_region(0, 0, region, &session).expect("stop region");
    }
    let likwid_ns = start.elapsed().as_nanos() as f64 / iterations as f64;

    let mut papi = Papi::library_init(&machine);
    let set = papi.create_eventset(0).expect("eventset");
    papi.add_event(set, PapiPreset::PAPI_DP_OPS).expect("add");
    papi.add_event(set, PapiPreset::PAPI_TOT_CYC).expect("add");
    let start = Instant::now();
    for _ in 0..iterations {
        papi.start(set).expect("start");
        papi.stop(set).expect("stop");
    }
    let papi_ns = start.elapsed().as_nanos() as f64 / iterations as f64;

    (likwid_ns, papi_ns)
}

/// Parse args, build the report, render it in the selected format and
/// resolve the target (the testable core of [`figure_bin_main`]). `-h`
/// requests surface as `Ok(None)`.
pub fn run_figure_bin(
    spec: &ArgSpec,
    args: &[String],
    build: impl FnOnce(&ParsedArgs) -> likwid::Result<Report>,
) -> likwid::Result<Option<(String, likwid::args::OutputTarget)>> {
    match likwid::args::drive(spec, args, build)? {
        likwid::args::Invocation::Help(_) => Ok(None),
        likwid::args::Invocation::Rendered { text, target } => Ok(Some((text, target))),
    }
}

/// Binary entry point shared by the thirteen figure/table binaries: the
/// tools' driver ([`likwid::args::bin_main`]) applied to the process
/// arguments. Returns the process exit code.
pub fn figure_bin_main(
    spec: &ArgSpec,
    build: impl FnOnce(&ParsedArgs) -> likwid::Result<Report>,
) -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    likwid::args::bin_main(spec, &args, build)
}

/// The argument spec of a STREAM figure binary (positional sample count).
pub fn stream_figure_spec(tool: &'static str, about: &'static str) -> ArgSpec {
    ArgSpec::new(tool, about).positional("samples", "runs per thread count (default 100)", false)
}

/// The whole entry point of a STREAM figure binary: spec, sample-count
/// parsing and the fleet-backed report for `stream_figures()[index]`,
/// seeded by the figure number (the historical convention of the seven
/// binaries). Returns the process exit code.
pub fn stream_figure_bin_main(tool: &'static str, about: &'static str, index: usize) -> i32 {
    let spec = stream_figure_spec(tool, about);
    figure_bin_main(&spec, |parsed| {
        let figure = stream_figures()[index];
        let samples = parsed.positional_number(100)?;
        Ok(stream_figure_report(figure, samples, figure.number as u64))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stream_figures_are_described() {
        let figs = stream_figures();
        assert_eq!(figs.len(), 7);
        assert_eq!(figs[0].number, 4);
        assert_eq!(figs[6].number, 10);
    }

    #[test]
    fn stream_figure_text_has_one_row_per_thread_count() {
        let fig = stream_figures()[1]; // Figure 5, pinned (deterministic, cheap)
        let text = stream_figure_text(fig, 3, 1);
        let rows = text
            .lines()
            .filter(|l| l.starts_with(|c: char| c.is_ascii_digit() || c == ' '))
            .count();
        assert!(text.contains("Figure 5"));
        assert!(rows >= 24, "24 thread counts on the Westmere node:\n{text}");
    }

    #[test]
    fn stream_figure_report_round_trips_and_matches_the_text() {
        use likwid::report::Json;
        let fig = stream_figures()[1];
        let report = stream_figure_report(fig, 3, 1);
        let table = report.table("series").expect("series table");
        assert_eq!(table.num_columns(), 6);
        assert!(table.num_rows() >= 24);
        assert_eq!(table.rows[0].values[0].as_count(), Some(1));
        let parsed = Report::from_json(&Json.render(&report)).expect("round trip");
        assert_eq!(parsed, report);
        assert_eq!(Ascii.render(&report), stream_figure_text(fig, 3, 1));
    }

    #[test]
    fn figure11_text_contains_all_three_curves() {
        let text = figure11_text(&[32, 48], 4);
        assert!(text.contains("wavefront 1x4 (one socket)"));
        assert!(text.contains("2 per socket"));
        assert!(text.contains("threaded baseline"));
        assert_eq!(text.lines().count(), 2 + 2, "header lines plus one row per size");
    }

    #[test]
    fn table2_text_reports_the_four_metrics() {
        let text = table2_text(48, 4);
        assert!(text.contains("UNC_L3_LINES_IN_ANY"));
        assert!(text.contains("UNC_L3_LINES_OUT_ANY"));
        assert!(text.contains("Total data volume [GB]"));
        assert!(text.contains("Performance [MLUPS]"));
    }

    #[test]
    fn table2_report_exposes_typed_counts() {
        let report = table2_report(48, 4);
        let table = report.table("measurements").expect("measurements table");
        assert_eq!(table.num_rows(), 4);
        let lines_in = table.cell("UNC_L3_LINES_IN_ANY", "threaded").expect("typed cell");
        assert!(lines_in.as_count().unwrap() > 0, "the threaded variant moves L3 lines");
        let mlups = table.cell("Performance [MLUPS]", "wavefront").expect("typed cell");
        assert!(mlups.as_real().unwrap() > 0.0);
    }

    #[test]
    fn table1_and_conceptual_figures_render() {
        assert!(table1_text().contains("Thread and process pinning"));
        assert!(figure1_text().contains("Cache Topology"));
        let fig2 = figure2_text(MachinePreset::WestmereEp2S);
        assert!(fig2.contains("FLOPS_DP"));
        assert!(fig2.contains("UPMC0"));
        let fig3 = figure3_text();
        assert!(fig3.contains("Skipped"));
        assert!(fig3.contains("KMP_AFFINITY=disabled"));
    }

    #[test]
    fn api_overhead_measures_both_interfaces() {
        let (likwid_ns, papi_ns) = api_overhead_ns(100);
        assert!(likwid_ns > 0.0);
        assert!(papi_ns > 0.0);
    }

    #[test]
    fn figure_bin_driver_renders_and_validates() {
        let spec = stream_figure_spec("fig-test", "test figure");
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();

        let (text, target) = run_figure_bin(&spec, &args(&["2", "-O", "json"]), |parsed| {
            let samples = parsed.positional_number(100)?;
            Ok(stream_figure_report(stream_figures()[1], samples, 5))
        })
        .unwrap()
        .expect("not a help request");
        assert!(target.path.is_none());
        let parsed = Report::from_json(&text).expect("valid JSON");
        assert!(parsed.table("series").is_some());

        assert!(run_figure_bin(&spec, &args(&["-h"]), |_| Ok(Report::new("unused")))
            .unwrap()
            .is_none());
        assert!(run_figure_bin(&spec, &args(&["two"]), |parsed| {
            parsed.positional_number(100)?;
            Ok(Report::new("unused"))
        })
        .is_err());
        assert!(run_figure_bin(&spec, &args(&["--bogus"]), |_| Ok(Report::new("unused"))).is_err());
    }
}

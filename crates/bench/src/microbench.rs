//! The `likwid-bench` microbenchmark tool.
//!
//! Real LIKWID later grew `likwid-bench`, a harness that runs registered
//! streaming/latency kernels on selected hardware threads and reports
//! bandwidth and flops. This module reproduces that tool on the simulated
//! substrate: any kernel of the [`likwid_workloads::kernels`] registry runs
//! on any machine preset through the [`Experiment`] harness, optionally
//! measured with a `likwid-perfctr` event group for derived counter
//! metrics.
//!
//! ```text
//! likwid-bench -t daxpy -w 64MB -c S0:0-3 -g MEM -i 2 --machine nehalem-ep-2s
//! ```
//!
//! The pin list uses the *lenient* expansion
//! ([`likwid_affinity::parse_pin_list_lenient`]): entries a machine does
//! not have are dropped, so `-c S0:0-3` means "up to four threads of
//! socket 0" on everything from the Pentium M to the two-socket nodes.

use likwid::args::{ArgSpec, ParsedArgs};
use likwid::cli::parse_machine;
use likwid::error::{LikwidError, Result};
use likwid::perfctr::parse_measurement_spec;
use likwid::report::{Body, KvEntry, Report, Row, Section, Table, Value};
use likwid_affinity::parse_pin_list_lenient;
use likwid_workloads::kernels::{
    kernel_by_name_with_workers, kernel_description, kernel_names, parse_size,
};
use likwid_workloads::{Experiment, PlacementPolicy};

/// The argument specification of the `likwid-bench` binary.
pub fn likwid_bench_spec() -> ArgSpec {
    likwid::trace::trace_flag(
        ArgSpec::new("likwid-bench", "run a microbenchmark kernel on a simulated machine")
            .machine_flag()
            .flag("-t", None, Some("kernel"), "the kernel to run (see -a for the registry)")
            .flag("-w", None, Some("size"), "working set size, e.g. 64MB (default 16MB)")
            .flag("-c", None, Some("pinlist"), "hardware threads to run on (default S0:0)")
            .flag(
                "-g",
                None,
                Some("group|EVENT:CTR,..."),
                "measure the run with this counter group",
            )
            .flag("-i", None, Some("iters"), "passes over the working set (default 1)")
            .flag("-a", None, None, "list the registered kernels")
            .flag(
                "-W",
                None,
                Some("workers"),
                "simulation worker threads for sharded kernels (default 1; never changes results)",
            )
            .flag(
                "-T",
                None,
                Some("interval"),
                "timeline: sample the counters every <interval> of virtual time (requires -g)",
            )
            .flag(
                "--inject",
                None,
                Some("spec"),
                "inject faults into the MSR substrate (e.g. seed=7,read=0.2x3,stuck=0x186@0)",
            ),
    )
    .note(likwid::perfctr::multiplex_note())
}

/// Build the report of one `likwid-bench` invocation.
pub fn likwid_bench_report(parsed: &ParsedArgs) -> Result<Report> {
    if parsed.has("-a") {
        let mut table = Table::plain(vec!["kernel", "description"]);
        for &name in kernel_names() {
            let description = kernel_description(name).expect("registered kernel");
            table.push(
                Row::new(vec![Value::Str(name.to_string()), Value::Str(description.to_string())])
                    .with_ascii(format!("{name:8} {description}")),
            );
        }
        let mut report = Report::new("likwid-bench");
        report
            .push(Section::new("kernels", Body::Table(table)).with_heading("Registered kernels:"));
        return Ok(report);
    }

    let kernel_name = parsed
        .value("-t")
        .ok_or_else(|| LikwidError::Usage("likwid-bench requires -t <kernel> (or -a)".into()))?;
    let working_set = match parsed.value("-w") {
        None => 16 << 20,
        Some(raw) => parse_size(raw)
            .ok_or_else(|| LikwidError::Usage(format!("bad working set size '{raw}'")))?,
    };
    let passes: u64 = match parsed.value("-i") {
        None => 1,
        Some(raw) => {
            raw.parse().map_err(|_| LikwidError::Usage(format!("bad iteration count '{raw}'")))?
        }
    };
    let workers: usize = match parsed.value("-W") {
        None => 1,
        Some(raw) => match raw.parse() {
            Ok(w) if w >= 1 => w,
            _ => return Err(LikwidError::Usage(format!("bad worker count '{raw}'"))),
        },
    };
    let preset = parse_machine(parsed)?;
    let topo = preset.topology();
    let pin_expr = parsed.value("-c").unwrap_or("S0:0");
    let cpus = parse_pin_list_lenient(pin_expr, &topo)
        .map_err(|e| LikwidError::Usage(format!("bad pin list '{pin_expr}': {e}")))?;
    let workload = kernel_by_name_with_workers(kernel_name, working_set, passes, workers)
        .ok_or_else(|| LikwidError::Usage(format!("unknown kernel '{kernel_name}' (try -a)")))?;

    let mut experiment = Experiment::on(preset)
        .placement(PlacementPolicy::LikwidPin(cpus.clone()))
        .threads(cpus.len());
    if let Some(group_arg) = parsed.value("-g") {
        let event_table = likwid_perf_events::tables::for_arch(preset.arch());
        experiment = experiment.counters(parse_measurement_spec(group_arg, &event_table)?);
    }
    if let Some(interval) = parsed.interval("-T")? {
        if parsed.value("-g").is_none() {
            return Err(LikwidError::Usage("-T (timeline) requires -g <group>".into()));
        }
        experiment = experiment.timeline(interval);
    }
    if let Some(spec) = parsed.value("--inject") {
        let plan = likwid_x86_machine::FaultPlan::parse(spec)
            .map_err(|e| LikwidError::Usage(format!("bad --inject spec: {e}")))?;
        experiment = experiment.inject(plan);
    }
    let result = experiment.run(workload.as_ref())?;
    let run = result.first();
    // Threads that actually did work: a serial kernel (the pointer chase)
    // uses one thread however long the pin list is, and the report must
    // not claim otherwise.
    let active_threads = run.profile.cycles.iter().filter(|&&c| c > 0).count().max(1);

    let entries = vec![
        KvEntry::new("Kernel", Value::Str(kernel_name.to_string())),
        KvEntry::new("Machine", Value::Str(preset.id().to_string())),
        KvEntry::new("CPU type", Value::Str(preset.arch().display_name().to_string())),
        KvEntry::new("Working set", Value::Bytes(workload.working_set_bytes()))
            .with_ascii(format!("Working set: {} bytes", workload.working_set_bytes())),
        KvEntry::new("Threads", Value::Count(active_threads as u64)),
        KvEntry::new("Placement", Value::Str(format!("{cpus:?}"))),
        KvEntry::new("Iterations", Value::Count(run.iterations)),
        KvEntry::new("Runtime [s]", Value::Real(run.runtime_s)),
        KvEntry::new("Bandwidth [MBytes/s]", Value::Real(run.bandwidth_mbs)),
        KvEntry::new("MFlops/s", Value::Real(run.mflops)),
        KvEntry::new("Time per iteration [ns]", Value::Real(run.time_per_iteration_ns())),
    ];
    let mut report = Report::new("likwid-bench");
    report.push(
        Section::new("bench", Body::KeyValues(entries))
            .with_heading(format!("Microbenchmark {kernel_name} on {}", preset.id())),
    );
    if let Some(timeline) = &result.timeline {
        // The timeline report carries the per-interval series and the
        // aggregate tables; the plain counters sections would repeat the
        // latter.
        for mut section in timeline.report().sections {
            section.id = format!("timeline.{}", section.id);
            report.push(section);
        }
    } else if let Some(counters) = &result.counters {
        for mut section in counters.report().sections {
            section.id = format!("counters.{}", section.id);
            report.push(section);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid::report::{Json, Render};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn report_for(list: &[&str]) -> Result<Report> {
        likwid_bench_report(&likwid_bench_spec().parse(&args(list)).unwrap())
    }

    #[test]
    fn kernel_listing_names_every_registered_kernel() {
        let report = report_for(&["-a"]).unwrap();
        let table = report.table("kernels").expect("kernel table");
        assert_eq!(table.num_rows(), kernel_names().len());
        assert_eq!(table.rows[0].values[0].as_str(), Some("copy"));
    }

    #[test]
    fn daxpy_with_counters_reports_bandwidth_and_metrics() {
        let report = report_for(&[
            "-t",
            "daxpy",
            "-w",
            "16MB",
            "-c",
            "S0:0-3",
            "-g",
            "MEM",
            "--machine",
            "nehalem-ep-2s",
        ])
        .unwrap();
        let bw = report.value("bench", "Bandwidth [MBytes/s]").unwrap().as_real().unwrap();
        assert!(bw > 1000.0, "a four-thread daxpy moves gigabytes per second, got {bw}");
        let threads = report.value("bench", "Threads").unwrap().as_count();
        assert_eq!(threads, Some(4));
        // Derived counter metrics ride along from the MEM group.
        assert!(report.table("counters.metrics").is_some());
        let parsed = Report::from_json(&Json.render(&report)).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn timeline_flag_adds_per_interval_series() {
        let report = report_for(&[
            "-t",
            "triad",
            "-w",
            "16MB",
            "-c",
            "S0:0-3",
            "-g",
            "MEM",
            "-T",
            "100us",
            "--machine",
            "nehalem-ep-2s",
        ])
        .unwrap();
        let series_section =
            report.section("timeline.timeseries.MEM").expect("timeline series section rides along");
        let likwid::report::Body::TimeSeries(ts) = &series_section.body else {
            panic!("not a timeseries body");
        };
        assert!(ts.timestamps.len() >= 2, "multiple sampling intervals");
        assert!(ts.series_for("Memory bandwidth [MBytes/s]", 0).is_some());
        assert!(report.table("timeline.aggregate.MEM.events").is_some());
        assert!(report.section("counters.events").is_none(), "aggregates live in the timeline");
        let parsed = Report::from_json(&Json.render(&report)).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn timeline_flag_requires_a_group_and_a_sane_interval() {
        let err = report_for(&["-t", "copy", "-T", "1ms"]).unwrap_err();
        assert!(matches!(err, LikwidError::Usage(_)), "got {err:?}");
        for bad in ["0", "0us", "soon"] {
            let err = report_for(&["-t", "copy", "-g", "MEM", "-T", bad]).unwrap_err();
            assert!(matches!(err, LikwidError::Usage(_)), "'{bad}' gave {err:?}");
        }
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(report_for(&[]), Err(LikwidError::Usage(_))), "missing -t");
        assert!(matches!(report_for(&["-t", "frob"]), Err(LikwidError::Usage(_))));
        assert!(matches!(report_for(&["-t", "copy", "-w", "lots"]), Err(LikwidError::Usage(_))));
        assert!(matches!(report_for(&["-t", "copy", "-i", "many"]), Err(LikwidError::Usage(_))));
        assert!(report_for(&["-t", "copy", "-g", "NOT_A_GROUP"]).is_err());
    }

    #[test]
    fn degenerate_working_sets_still_produce_finite_figures() {
        // A working set smaller than one line per array used to yield a
        // 0-iteration run and NaN bandwidth/latency.
        let report = report_for(&["-t", "copy", "-w", "64B"]).unwrap();
        let bw = report.value("bench", "Bandwidth [MBytes/s]").unwrap().as_real().unwrap();
        let ns = report.value("bench", "Time per iteration [ns]").unwrap().as_real().unwrap();
        assert!(bw.is_finite() && bw > 0.0, "got {bw}");
        assert!(ns.is_finite() && ns > 0.0, "got {ns}");
        assert!(report.value("bench", "Iterations").unwrap().as_count().unwrap() > 0);
        // And the working set reports what actually streams: two arrays of
        // one line each, not the raw 64-byte request.
        assert_eq!(report.value("bench", "Working set").unwrap().as_bytes(), Some(128));

        // With one line and four pinned threads, only one thread owns any
        // lines — the report must say so.
        let report =
            report_for(&["-t", "copy", "-w", "64B", "-c", "S0:0-3", "--machine", "nehalem-ep-2s"])
                .unwrap();
        assert_eq!(report.value("bench", "Threads").unwrap().as_count(), Some(1));
    }

    #[test]
    fn chase_on_a_multi_thread_pin_list_reports_one_thread() {
        // The pointer chase is serial by construction; the report must not
        // claim the whole pin list did work.
        let report =
            report_for(&["-t", "chase", "-w", "1MB", "-c", "S0:0-3", "--machine", "nehalem-ep-2s"])
                .unwrap();
        assert_eq!(report.value("bench", "Threads").unwrap().as_count(), Some(1));
        // A streaming kernel on the same pin list really uses all four.
        let report =
            report_for(&["-t", "copy", "-w", "8MB", "-c", "S0:0-3", "--machine", "nehalem-ep-2s"])
                .unwrap();
        assert_eq!(report.value("bench", "Threads").unwrap().as_count(), Some(4));
    }

    #[test]
    fn worker_count_parses_and_does_not_change_the_report() {
        let base = &[
            "-t",
            "coherence",
            "-w",
            "1MB",
            "-c",
            "S0:0-1@S1:0-1",
            "-g",
            "MEM",
            "--machine",
            "nehalem-ep-2s",
        ];
        let reference = report_for(base).unwrap();
        for workers in ["1", "2", "4"] {
            let mut with_workers = base.to_vec();
            with_workers.extend(["-W", workers]);
            assert_eq!(report_for(&with_workers).unwrap(), reference, "-W {workers}");
        }
        for bad in ["0", "many"] {
            let err = report_for(&["-t", "coherence", "-W", bad]).unwrap_err();
            assert!(matches!(err, LikwidError::Usage(_)), "'{bad}' gave {err:?}");
        }
    }

    #[test]
    fn chase_reports_a_latency_per_iteration() {
        let report = report_for(&["-t", "chase", "-w", "64kB", "--machine", "core2-quad"]).unwrap();
        let ns = report.value("bench", "Time per iteration [ns]").unwrap().as_real().unwrap();
        assert!(ns > 0.0 && ns < 1000.0, "in-L2 chase latency in nanoseconds, got {ns}");
    }
}

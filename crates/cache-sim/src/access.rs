//! Memory access descriptions issued by the workload execution engine.

/// The kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Load,
    /// Regular (temporal, write-allocate) store.
    Store,
    /// Non-temporal (streaming) store: bypasses the cache hierarchy and goes
    /// straight to memory through write-combining buffers, avoiding the
    /// write-allocate read of the target line.
    NonTemporalStore,
    /// Software or hardware prefetch request: fills the cache but is not
    /// counted as a demand access.
    Prefetch,
}

impl AccessKind {
    /// Whether the access writes data.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::NonTemporalStore)
    }

    /// Whether the access is a demand access (issued by the program rather
    /// than a prefetcher).
    pub fn is_demand(self) -> bool {
        !matches!(self, AccessKind::Prefetch)
    }
}

/// One memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Virtual/physical byte address (the simulator is agnostic).
    pub address: u64,
    /// Number of bytes touched (8 for a double, 16/32 for SSE/AVX, …).
    pub size: u32,
    /// Load, store, non-temporal store or prefetch.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for an 8-byte (double precision) load.
    pub fn load(address: u64) -> Self {
        Access { address, size: 8, kind: AccessKind::Load }
    }

    /// Convenience constructor for an 8-byte store.
    pub fn store(address: u64) -> Self {
        Access { address, size: 8, kind: AccessKind::Store }
    }

    /// Convenience constructor for an 8-byte non-temporal store.
    pub fn nt_store(address: u64) -> Self {
        Access { address, size: 8, kind: AccessKind::NonTemporalStore }
    }

    /// The cache lines `[first, last]` touched by this access for a given
    /// line size (an access may straddle a line boundary).
    pub fn line_range(&self, line_size: u64) -> (u64, u64) {
        let first = self.address / line_size;
        let last = (self.address + self.size.max(1) as u64 - 1) / line_size;
        (first, last)
    }
}

/// Where in the hierarchy a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Satisfied by the first-level cache.
    L1,
    /// Satisfied by the second-level cache.
    L2,
    /// Satisfied by the last-level (shared) cache.
    L3,
    /// Satisfied by main memory.
    Memory,
    /// Non-temporal store: streamed to memory without a cache fill.
    Streaming,
}

impl HitLevel {
    /// Approximate access latency in core cycles, used by the performance
    /// model (numbers are typical Nehalem-class latencies).
    pub fn latency_cycles(self, memory_latency: u64) -> u64 {
        match self {
            HitLevel::L1 => 4,
            HitLevel::L2 => 10,
            HitLevel::L3 => 38,
            HitLevel::Memory => memory_latency,
            HitLevel::Streaming => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_classification() {
        assert!(AccessKind::Store.is_write());
        assert!(AccessKind::NonTemporalStore.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(AccessKind::Load.is_demand());
        assert!(!AccessKind::Prefetch.is_demand());
    }

    #[test]
    fn line_range_for_aligned_and_straddling_accesses() {
        let a = Access { address: 64, size: 8, kind: AccessKind::Load };
        assert_eq!(a.line_range(64), (1, 1));
        let straddle = Access { address: 60, size: 8, kind: AccessKind::Load };
        assert_eq!(straddle.line_range(64), (0, 1));
        let wide = Access { address: 0, size: 256, kind: AccessKind::Load };
        assert_eq!(wide.line_range(64), (0, 3));
    }

    #[test]
    fn hit_level_latency_is_monotonic() {
        let mem_lat = 200;
        assert!(HitLevel::L1.latency_cycles(mem_lat) < HitLevel::L2.latency_cycles(mem_lat));
        assert!(HitLevel::L2.latency_cycles(mem_lat) < HitLevel::L3.latency_cycles(mem_lat));
        assert!(HitLevel::L3.latency_cycles(mem_lat) < HitLevel::Memory.latency_cycles(mem_lat));
    }

    #[test]
    fn constructors_use_double_precision_width() {
        assert_eq!(Access::load(8).size, 8);
        assert_eq!(Access::store(8).kind, AccessKind::Store);
        assert_eq!(Access::nt_store(8).kind, AccessKind::NonTemporalStore);
    }
}

//! A single set-associative cache instance.

use crate::replacement::{ReplacementPolicy, ReplacementState};
use crate::stats::CacheStats;

/// State of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
}

impl Line {
    const INVALID: Line = Line { tag: 0, valid: false, dirty: false };
}

/// Result of a fill: what had to leave the cache to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// An invalid way was used; nothing was evicted.
    None,
    /// A clean line with the given line address was dropped.
    Clean(u64),
    /// A dirty line with the given line address must be written back.
    Dirty(u64),
}

/// A set-associative, write-back cache with per-instance statistics.
///
/// Addresses are handled at line granularity: all methods take *line
/// addresses* (byte address divided by the line size); the caller performs
/// the division so that one convention holds across all levels.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_size: u64,
    lines: Vec<Line>,
    replacement: Vec<ReplacementState>,
    /// Public counters; the hierarchy updates demand hit/miss fields, the
    /// cache itself updates fill/eviction fields.
    pub stats: CacheStats,
}

impl SetAssocCache {
    /// Create a cache with `sets` sets of `ways` ways and `line_size`-byte lines.
    pub fn new(sets: usize, ways: usize, line_size: u64, policy: ReplacementPolicy) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one set and way");
        SetAssocCache {
            sets,
            ways,
            line_size,
            lines: vec![Line::INVALID; sets * ways],
            replacement: vec![ReplacementState::new(policy, ways); sets],
            stats: CacheStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    fn set_index(&self, line_addr: u64) -> usize {
        (line_addr % self.sets as u64) as usize
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Whether the line is present (does not touch replacement state or stats).
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr);
        (0..self.ways).any(|w| {
            let l = self.lines[self.slot(set, w)];
            l.valid && l.tag == line_addr
        })
    }

    /// Look up a line as a demand access. Returns `true` on hit and updates
    /// the replacement state; on a store hit the line is marked dirty.
    pub fn lookup(&mut self, line_addr: u64, is_write: bool) -> bool {
        let set = self.set_index(line_addr);
        for way in 0..self.ways {
            let slot = self.slot(set, way);
            if self.lines[slot].valid && self.lines[slot].tag == line_addr {
                if is_write {
                    self.lines[slot].dirty = true;
                }
                self.replacement[set].on_hit(way);
                return true;
            }
        }
        false
    }

    /// Allocate a line (after a miss or for a prefetch). Returns what was
    /// evicted. The new line is marked dirty if `dirty` is set
    /// (write-allocate stores dirty the line immediately).
    pub fn fill(&mut self, line_addr: u64, dirty: bool) -> Eviction {
        let set = self.set_index(line_addr);
        // If the line is already present (e.g. racing prefetch), just update flags.
        for way in 0..self.ways {
            let slot = self.slot(set, way);
            if self.lines[slot].valid && self.lines[slot].tag == line_addr {
                self.lines[slot].dirty |= dirty;
                self.replacement[set].on_hit(way);
                return Eviction::None;
            }
        }

        let lines = &self.lines;
        let ways = self.ways;
        let victim_way = self.replacement[set].choose_victim(|w| lines[set * ways + w].valid);
        let slot = self.slot(set, victim_way);
        let evicted = self.lines[slot];
        let eviction = if !evicted.valid {
            Eviction::None
        } else if evicted.dirty {
            Eviction::Dirty(evicted.tag)
        } else {
            Eviction::Clean(evicted.tag)
        };

        self.lines[slot] = Line { tag: line_addr, valid: true, dirty };
        self.replacement[set].on_fill(victim_way);

        self.stats.lines_in += 1;
        if !matches!(eviction, Eviction::None) {
            self.stats.lines_out += 1;
            if matches!(eviction, Eviction::Dirty(_)) {
                self.stats.writebacks += 1;
            }
        }
        eviction
    }

    /// Invalidate a line (used for inclusive back-invalidation). Returns
    /// `Some(dirty)` if the line was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        let set = self.set_index(line_addr);
        for way in 0..self.ways {
            let slot = self.slot(set, way);
            if self.lines[slot].valid && self.lines[slot].tag == line_addr {
                let dirty = self.lines[slot].dirty;
                self.lines[slot] = Line::INVALID;
                self.stats.lines_out += 1;
                if dirty {
                    self.stats.writebacks += 1;
                }
                return Some(dirty);
            }
        }
        None
    }

    /// Mark a present line dirty (used when a dirty line is written back from
    /// an inner level).
    pub fn mark_dirty(&mut self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr);
        for way in 0..self.ways {
            let slot = self.slot(set, way);
            if self.lines[slot].valid && self.lines[slot].tag == line_addr {
                self.lines[slot].dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of currently valid lines (diagnostic).
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes.
        SetAssocCache::new(4, 2, 64, ReplacementPolicy::Lru)
    }

    #[test]
    fn capacity_and_geometry() {
        let c = small_cache();
        assert_eq!(c.capacity_bytes(), 512);
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.line_size(), 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.lookup(10, false));
        assert_eq!(c.fill(10, false), Eviction::None);
        assert!(c.lookup(10, false));
        assert!(c.contains(10));
    }

    #[test]
    fn conflict_eviction_in_one_set() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways -> third fill evicts.
        c.fill(0, false);
        c.fill(4, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Clean(0), "LRU victim is the first line filled");
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(c.contains(8));
        assert_eq!(c.stats.lines_in, 3);
        assert_eq!(c.stats.lines_out, 1);
    }

    #[test]
    fn dirty_eviction_is_reported_for_writeback() {
        let mut c = small_cache();
        c.fill(0, true);
        c.fill(4, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Dirty(0));
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn store_hit_marks_line_dirty() {
        let mut c = small_cache();
        c.fill(0, false);
        assert!(c.lookup(0, true));
        c.fill(4, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Dirty(0));
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = small_cache();
        c.fill(0, false);
        assert_eq!(c.fill(0, true), Eviction::None);
        assert_eq!(c.stats.lines_in, 1, "second fill of the same line is not a new allocation");
    }

    #[test]
    fn invalidate_removes_the_line() {
        let mut c = small_cache();
        c.fill(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.contains(0));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn mark_dirty_only_applies_to_present_lines() {
        let mut c = small_cache();
        c.fill(0, false);
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(99));
    }

    #[test]
    fn lru_keeps_the_hot_line() {
        let mut c = small_cache();
        c.fill(0, false);
        c.fill(4, false);
        // Touch line 0 so line 4 is the LRU victim.
        c.lookup(0, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Clean(4));
        assert!(c.contains(0));
    }

    #[test]
    fn resident_line_count_tracks_valid_lines() {
        let mut c = small_cache();
        assert_eq!(c.resident_lines(), 0);
        c.fill(0, false);
        c.fill(1, false);
        assert_eq!(c.resident_lines(), 2);
        c.invalidate(0);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn working_set_larger_than_capacity_cycles_lines() {
        let mut c = small_cache();
        // 16 distinct lines through an 8-line cache: every fill after the
        // first 8 evicts something.
        let mut evictions = 0;
        for line in 0..16 {
            if !matches!(c.fill(line, false), Eviction::None) {
                evictions += 1;
            }
        }
        assert_eq!(evictions, 8);
        assert_eq!(c.resident_lines(), 8);
    }
}

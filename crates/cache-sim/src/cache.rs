//! A single set-associative cache instance.

use crate::replacement::{FlatReplacement, ReplacementPolicy};
use crate::stats::CacheStats;

/// Result of a fill: what had to leave the cache to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// An invalid way was used; nothing was evicted.
    None,
    /// A clean line with the given line address was dropped.
    Clean(u64),
    /// A dirty line with the given line address must be written back.
    Dirty(u64),
}

/// A set-associative, write-back cache with per-instance statistics.
///
/// Addresses are handled at line granularity: all methods take *line
/// addresses* (byte address divided by the line size); the caller performs
/// the division so that one convention holds across all levels.
///
/// All per-set bookkeeping lives in flat contiguous arrays: tags in one
/// dense `u64` slab (scanned without chasing line structs), valid and dirty
/// flags as one bitmask word per set (so "first invalid way" is a single
/// `trailing_zeros`), replacement stamps in one slab. When the set count is
/// a power of two — true for every machine preset — the set index is a bit
/// mask instead of a division.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_size: u64,
    /// `sets - 1` when `sets` is a power of two, else `None` (modulo path).
    set_mask: Option<u64>,
    /// `tags[set * ways + way]` — line address stored in one way.
    tags: Vec<u64>,
    /// `valid[set]` — bit `way` set when the way holds a line.
    valid: Vec<u64>,
    /// `dirty[set]` — bit `way` set when the way's line is dirty.
    dirty: Vec<u64>,
    /// All-ways-valid value for one set (`ways` low bits).
    full_mask: u64,
    replacement: FlatReplacement,
    /// Public counters; the hierarchy updates demand hit/miss fields, the
    /// cache itself updates fill/eviction fields.
    pub stats: CacheStats,
}

impl SetAssocCache {
    /// Create a cache with `sets` sets of `ways` ways and `line_size`-byte lines.
    pub fn new(sets: usize, ways: usize, line_size: u64, policy: ReplacementPolicy) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one set and way");
        assert!(ways <= 64, "per-set bitmask flags support at most 64 ways");
        SetAssocCache {
            sets,
            ways,
            line_size,
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            tags: vec![0; sets * ways],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            full_mask: if ways == 64 { u64::MAX } else { (1u64 << ways) - 1 },
            replacement: FlatReplacement::new(policy, sets, ways),
            stats: CacheStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    #[inline]
    fn set_index(&self, line_addr: u64) -> usize {
        match self.set_mask {
            Some(mask) => (line_addr & mask) as usize,
            None => (line_addr % self.sets as u64) as usize,
        }
    }

    /// Find the way of `set` holding `line_addr`, if present. Short sets in
    /// the steady state (all ways valid, at most 8 of them) take a straight
    /// linear compare over the flat tag slab — no bit extraction, trivially
    /// unrolled and vectorized; sparse or wide sets scan only the valid ways,
    /// one `trailing_zeros` per candidate. Both paths probe ways in
    /// ascending order, so they are observationally identical.
    #[inline]
    fn find(&self, set: usize, line_addr: u64) -> Option<usize> {
        let base = set * self.ways;
        let valid = self.valid[set];
        if self.ways <= 8 && valid == self.full_mask {
            return self.tags[base..base + self.ways].iter().position(|&tag| tag == line_addr);
        }
        let mut candidates = valid;
        while candidates != 0 {
            let way = candidates.trailing_zeros() as usize;
            candidates &= candidates - 1;
            if self.tags[base + way] == line_addr {
                return Some(way);
            }
        }
        None
    }

    /// Whether the line is present (does not touch replacement state or stats).
    pub fn contains(&self, line_addr: u64) -> bool {
        self.find(self.set_index(line_addr), line_addr).is_some()
    }

    /// Whether a repeated demand hit on this line could be collapsed into a
    /// pure counter update: the line is present and its replacement touch
    /// would not change the set's eviction order (it is already the
    /// most-recently-touched way, or the policy ignores hits entirely).
    pub fn repeat_hit_is_collapsible(&self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr);
        match self.find(set, line_addr) {
            Some(way) => self.replacement.hit_is_order_neutral(set, way),
            None => false,
        }
    }

    /// Look up a line as a demand access. Returns `true` on hit and updates
    /// the replacement state; on a store hit the line is marked dirty.
    pub fn lookup(&mut self, line_addr: u64, is_write: bool) -> bool {
        let set = self.set_index(line_addr);
        match self.find(set, line_addr) {
            Some(way) => {
                if is_write {
                    self.dirty[set] |= 1 << way;
                }
                self.replacement.on_hit(set, way);
                true
            }
            None => false,
        }
    }

    /// Allocate a line (after a miss or for a prefetch). Returns what was
    /// evicted. The new line is marked dirty if `dirty` is set
    /// (write-allocate stores dirty the line immediately).
    pub fn fill(&mut self, line_addr: u64, dirty: bool) -> Eviction {
        let set = self.set_index(line_addr);
        // If the line is already present (e.g. racing prefetch), just update flags.
        if let Some(way) = self.find(set, line_addr) {
            if dirty {
                self.dirty[set] |= 1 << way;
            }
            self.replacement.on_hit(set, way);
            return Eviction::None;
        }
        self.fill_absent(line_addr, dirty)
    }

    /// [`SetAssocCache::fill`] for callers that already know the line is
    /// absent (a demand fill right after the lookup missed, a prefetch fill
    /// after a `contains` probe): skips the duplicate-line scan.
    pub fn fill_absent(&mut self, line_addr: u64, dirty: bool) -> Eviction {
        debug_assert!(!self.contains(line_addr), "fill_absent of a present line");
        let set = self.set_index(line_addr);
        // Victim selection: the first invalid way if any, else the oldest
        // stamp among the (all-valid) ways.
        let invalid = !self.valid[set] & self.full_mask;
        let (victim_way, eviction) = if invalid != 0 {
            ((invalid.trailing_zeros()) as usize, Eviction::None)
        } else {
            let way = self.replacement.oldest_way(set);
            let tag = self.tags[set * self.ways + way];
            if self.dirty[set] & (1 << way) != 0 {
                (way, Eviction::Dirty(tag))
            } else {
                (way, Eviction::Clean(tag))
            }
        };

        let way_bit = 1u64 << victim_way;
        self.tags[set * self.ways + victim_way] = line_addr;
        self.valid[set] |= way_bit;
        if dirty {
            self.dirty[set] |= way_bit;
        } else {
            self.dirty[set] &= !way_bit;
        }
        self.replacement.on_fill(set, victim_way);

        self.stats.lines_in += 1;
        if !matches!(eviction, Eviction::None) {
            self.stats.lines_out += 1;
            if matches!(eviction, Eviction::Dirty(_)) {
                self.stats.writebacks += 1;
            }
        }
        eviction
    }

    /// Invalidate a line (used for inclusive back-invalidation). Returns
    /// `Some(dirty)` if the line was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        let set = self.set_index(line_addr);
        let way = self.find(set, line_addr)?;
        let way_bit = 1u64 << way;
        let dirty = self.dirty[set] & way_bit != 0;
        self.valid[set] &= !way_bit;
        self.dirty[set] &= !way_bit;
        self.stats.lines_out += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(dirty)
    }

    /// Mark a present line dirty (used when a dirty line is written back from
    /// an inner level).
    pub fn mark_dirty(&mut self, line_addr: u64) -> bool {
        let set = self.set_index(line_addr);
        match self.find(set, line_addr) {
            Some(way) => {
                self.dirty[set] |= 1 << way;
                true
            }
            None => false,
        }
    }

    /// Number of currently valid lines (diagnostic).
    pub fn resident_lines(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Line addresses of all currently valid lines (diagnostic).
    pub fn resident_line_addresses(&self) -> impl Iterator<Item = u64> + '_ {
        self.valid.iter().enumerate().flat_map(move |(set, &valid)| {
            let base = set * self.ways;
            (0..self.ways)
                .filter(move |way| valid & (1 << way) != 0)
                .map(move |way| self.tags[base + way])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes.
        SetAssocCache::new(4, 2, 64, ReplacementPolicy::Lru)
    }

    #[test]
    fn capacity_and_geometry() {
        let c = small_cache();
        assert_eq!(c.capacity_bytes(), 512);
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.line_size(), 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.lookup(10, false));
        assert_eq!(c.fill(10, false), Eviction::None);
        assert!(c.lookup(10, false));
        assert!(c.contains(10));
    }

    #[test]
    fn conflict_eviction_in_one_set() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Two ways -> third fill evicts.
        c.fill(0, false);
        c.fill(4, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Clean(0), "LRU victim is the first line filled");
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(c.contains(8));
        assert_eq!(c.stats.lines_in, 3);
        assert_eq!(c.stats.lines_out, 1);
    }

    #[test]
    fn dirty_eviction_is_reported_for_writeback() {
        let mut c = small_cache();
        c.fill(0, true);
        c.fill(4, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Dirty(0));
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn store_hit_marks_line_dirty() {
        let mut c = small_cache();
        c.fill(0, false);
        assert!(c.lookup(0, true));
        c.fill(4, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Dirty(0));
    }

    #[test]
    fn refill_of_present_line_does_not_evict() {
        let mut c = small_cache();
        c.fill(0, false);
        assert_eq!(c.fill(0, true), Eviction::None);
        assert_eq!(c.stats.lines_in, 1, "second fill of the same line is not a new allocation");
    }

    #[test]
    fn invalidate_removes_the_line() {
        let mut c = small_cache();
        c.fill(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.contains(0));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn mark_dirty_only_applies_to_present_lines() {
        let mut c = small_cache();
        c.fill(0, false);
        assert!(c.mark_dirty(0));
        assert!(!c.mark_dirty(99));
    }

    #[test]
    fn lru_keeps_the_hot_line() {
        let mut c = small_cache();
        c.fill(0, false);
        c.fill(4, false);
        // Touch line 0 so line 4 is the LRU victim.
        c.lookup(0, false);
        let ev = c.fill(8, false);
        assert_eq!(ev, Eviction::Clean(4));
        assert!(c.contains(0));
    }

    #[test]
    fn resident_line_count_tracks_valid_lines() {
        let mut c = small_cache();
        assert_eq!(c.resident_lines(), 0);
        c.fill(0, false);
        c.fill(1, false);
        assert_eq!(c.resident_lines(), 2);
        c.invalidate(0);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn working_set_larger_than_capacity_cycles_lines() {
        let mut c = small_cache();
        // 16 distinct lines through an 8-line cache: every fill after the
        // first 8 evicts something.
        let mut evictions = 0;
        for line in 0..16 {
            if !matches!(c.fill(line, false), Eviction::None) {
                evictions += 1;
            }
        }
        assert_eq!(evictions, 8);
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn non_power_of_two_set_count_uses_the_modulo_path() {
        // 3 sets x 2 ways: lines 0, 3, 6 all map to set 0.
        let mut c = SetAssocCache::new(3, 2, 64, ReplacementPolicy::Lru);
        c.fill(0, false);
        c.fill(3, false);
        assert_eq!(c.fill(6, false), Eviction::Clean(0));
        assert!(c.contains(3));
        assert!(c.contains(6));
        assert!(!c.contains(1), "line 1 lives in set 1");
    }
}

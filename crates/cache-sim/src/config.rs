//! Configuration of the simulated hierarchy.
//!
//! The configuration is normally derived from a machine preset via
//! [`HierarchyConfig::from_machine`], which also consults the machine's
//! `IA32_MISC_ENABLE` register so that prefetchers toggled through
//! `likwid-features` actually change the simulated behaviour.

use likwid_x86_machine::{CacheKind, Prefetcher, SimMachine};

use crate::memory::NumaPolicy;
use crate::replacement::ReplacementPolicy;

/// Write-miss policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-back with write-allocate (the policy of all data cache levels
    /// on the modelled machines).
    WriteBackAllocate,
    /// Write-through without allocation (not used by the presets, available
    /// for experiments).
    WriteThroughNoAllocate,
}

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Cache level (1, 2, 3).
    pub level: u32,
    /// Number of sets.
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: u64,
    /// Whether the level is inclusive of all inner levels (back-invalidation
    /// on eviction).
    pub inclusive: bool,
    /// Number of hardware threads sharing one instance.
    pub shared_by_threads: u32,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

/// Prefetcher enable switches (the simulator side of `likwid-features`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// L2 hardware streamer: on an L2 miss stream, prefetch the next line
    /// into L2.
    pub hardware_enabled: bool,
    /// Adjacent cache line prefetcher: on an L2 fill, also fetch the buddy
    /// line of the 128-byte pair.
    pub adjacent_line_enabled: bool,
    /// DCU streamer: on sequential L1 misses, prefetch the next line into L1.
    pub dcu_enabled: bool,
    /// IP-stride prefetcher: per-thread stride detection in L1.
    pub ip_enabled: bool,
}

impl PrefetchConfig {
    /// All prefetchers on (the machine reset state).
    pub fn all_enabled() -> Self {
        PrefetchConfig {
            hardware_enabled: true,
            adjacent_line_enabled: true,
            dcu_enabled: true,
            ip_enabled: true,
        }
    }

    /// All prefetchers off.
    pub fn all_disabled() -> Self {
        PrefetchConfig {
            hardware_enabled: false,
            adjacent_line_enabled: false,
            dcu_enabled: false,
            ip_enabled: false,
        }
    }

    /// Read the switches from a machine's `IA32_MISC_ENABLE` (core 0).
    pub fn from_machine(machine: &SimMachine) -> Self {
        let enabled = |p: Prefetcher| machine.prefetcher_enabled(0, p).unwrap_or(true);
        PrefetchConfig {
            hardware_enabled: enabled(Prefetcher::Hardware),
            adjacent_line_enabled: enabled(Prefetcher::AdjacentLine),
            dcu_enabled: enabled(Prefetcher::Dcu),
            ip_enabled: enabled(Prefetcher::Ip),
        }
    }
}

/// Full hierarchy configuration for a node.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Cache levels ordered L1 → LLC (data/unified caches only).
    pub levels: Vec<CacheLevelConfig>,
    /// Number of hardware threads in the node.
    pub num_threads: usize,
    /// Socket of each hardware thread (index = OS processor ID).
    pub thread_socket: Vec<u32>,
    /// Dense per-node core index of each hardware thread.
    pub thread_core: Vec<u32>,
    /// Number of sockets.
    pub num_sockets: u32,
    /// Prefetcher switches.
    pub prefetch: PrefetchConfig,
    /// How addresses map to NUMA domains.
    pub numa_policy: NumaPolicy,
    /// Line size used for memory traffic accounting (bytes).
    pub memory_line_size: u64,
}

impl HierarchyConfig {
    /// Build the configuration for a machine preset, reading the prefetcher
    /// switches from the machine's current `IA32_MISC_ENABLE` value.
    pub fn from_machine(machine: &SimMachine, numa_policy: NumaPolicy) -> Self {
        let topo = machine.topology();
        let levels = machine
            .caches()
            .iter()
            .filter(|c| c.kind != CacheKind::Instruction)
            .map(|c| CacheLevelConfig {
                level: c.level,
                sets: c.num_sets() as usize,
                ways: c.associativity as usize,
                line_size: c.line_size as u64,
                inclusive: c.inclusive,
                shared_by_threads: c.shared_by_threads,
                write_policy: WritePolicy::WriteBackAllocate,
                replacement: ReplacementPolicy::Lru,
            })
            .collect::<Vec<_>>();
        let memory_line_size = levels.last().map(|l| l.line_size).unwrap_or(64);
        HierarchyConfig {
            levels,
            num_threads: topo.num_hw_threads(),
            thread_socket: topo.hw_threads.iter().map(|t| t.socket).collect(),
            thread_core: topo
                .hw_threads
                .iter()
                .map(|t| t.socket * topo.cores_per_socket + t.core_index)
                .collect(),
            num_sockets: topo.sockets,
            prefetch: PrefetchConfig::from_machine(machine),
            numa_policy,
            memory_line_size,
        }
    }

    /// Number of instances of a level given its sharing degree: hardware
    /// threads are grouped by (socket, core, SMT) order into consecutive
    /// groups of `shared_by_threads`.
    pub fn instances_of(&self, level: &CacheLevelConfig) -> usize {
        (self.num_threads / level.shared_by_threads as usize).max(1)
    }

    /// Which instance of a level a hardware thread uses.
    ///
    /// Threads are ranked by (socket, core index, SMT) — i.e. SMT siblings
    /// are adjacent — and consecutive groups of `shared_by_threads` map to
    /// one instance. With the preset sharing degrees this yields "one L1/L2
    /// per physical core" and "one L3 per socket" regardless of the OS
    /// enumeration order.
    pub fn instance_for_thread(&self, level: &CacheLevelConfig, thread: usize) -> usize {
        let mut order: Vec<usize> = (0..self.num_threads).collect();
        order.sort_by_key(|&t| (self.thread_socket[t], self.thread_core[t], t));
        let rank = order.iter().position(|&t| t == thread).expect("thread in range");
        rank / level.shared_by_threads as usize
    }

    /// Precomputed back-invalidation targets for inclusive evictions.
    ///
    /// `map[l][inst]` lists the `(inner_level, inner_instance)` pairs that an
    /// eviction from instance `inst` of level `l` must probe: every inner
    /// instance used by at least one hardware thread that maps to `inst`,
    /// deduplicated, in (inner level ascending, first-sharing-thread) order —
    /// the exact order an on-the-fly sharer walk would visit them in. Levels
    /// that are not inclusive (or L1, which has nothing inside it) get empty
    /// lists. Computed once here so the eviction path never allocates.
    pub fn back_invalidation_map(&self) -> Vec<Vec<Vec<(usize, usize)>>> {
        self.levels
            .iter()
            .enumerate()
            .map(|(l, level)| {
                let instances = self.instances_of(level);
                (0..instances)
                    .map(|inst| {
                        let mut targets = Vec::new();
                        if !level.inclusive || l == 0 {
                            return targets;
                        }
                        let sharers: Vec<usize> = (0..self.num_threads)
                            .filter(|&t| self.instance_for_thread(level, t) == inst)
                            .collect();
                        for (inner, inner_level) in self.levels.iter().enumerate().take(l) {
                            for &t in &sharers {
                                let inner_inst = self.instance_for_thread(inner_level, t);
                                if !targets.contains(&(inner, inner_inst)) {
                                    targets.push((inner, inner_inst));
                                }
                            }
                        }
                        targets
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::{MachinePreset, Msr, MsrPermission};

    #[test]
    fn from_machine_picks_up_the_preset_hierarchy() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        assert_eq!(cfg.levels.len(), 3);
        assert_eq!(cfg.levels[0].sets, 64);
        assert_eq!(cfg.levels[2].ways, 16);
        assert!(!cfg.levels[2].inclusive);
        assert_eq!(cfg.num_threads, 24);
        assert_eq!(cfg.num_sockets, 2);
        assert!(cfg.prefetch.adjacent_line_enabled);
    }

    #[test]
    fn prefetch_config_reflects_misc_enable() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let dev = machine.msr(0, MsrPermission::ReadWrite).unwrap();
        dev.update(
            Msr::IA32_MISC_ENABLE,
            likwid_x86_machine::Prefetcher::AdjacentLine.disable_bit(),
            0,
        )
        .unwrap();
        let cfg = PrefetchConfig::from_machine(&machine);
        assert!(!cfg.adjacent_line_enabled);
        assert!(cfg.hardware_enabled);
    }

    #[test]
    fn instance_mapping_groups_smt_siblings_and_sockets() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let cfg = HierarchyConfig::from_machine(&machine, NumaPolicy::interleave(4096));
        let l1 = cfg.levels[0];
        let l3 = cfg.levels[2];
        assert_eq!(cfg.instances_of(&l1), 12);
        assert_eq!(cfg.instances_of(&l3), 2);
        // OS threads 0 and 12 are SMT siblings on the Westmere preset: same L1.
        assert_eq!(cfg.instance_for_thread(&l1, 0), cfg.instance_for_thread(&l1, 12));
        assert_ne!(cfg.instance_for_thread(&l1, 0), cfg.instance_for_thread(&l1, 1));
        // Threads 0 (socket 0) and 6 (socket 1) use different L3 instances.
        assert_ne!(cfg.instance_for_thread(&l3, 0), cfg.instance_for_thread(&l3, 6));
        // All socket-0 threads share one L3 instance.
        let inst0 = cfg.instance_for_thread(&l3, 0);
        for t in [1usize, 2, 3, 4, 5, 12, 13, 17] {
            assert_eq!(cfg.instance_for_thread(&l3, t), inst0);
        }
    }
}

//! The node-level cache system: all cache instances, prefetchers and memory
//! controllers of one machine, driven by per-hardware-thread access streams.
//!
//! Hot-path design (see also the "Simulator performance model" section of
//! the README): the per-access walk is allocation-free. Coherence
//! invalidations are routed through a *presence directory* — a map from
//! line address to a bitmask of the cache instances that may hold the line —
//! so a store probes only actual sharers instead of broadcasting to every
//! instance in the node. Inclusive back-invalidation targets are precomputed
//! per (level, instance) at construction. For dense same-line access
//! sequences, [`NodeCacheSystem::access_run`] collapses the repeats into
//! counter updates without re-walking the hierarchy.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::access::{Access, AccessKind, HitLevel};
use crate::cache::{Eviction, SetAssocCache};
use crate::config::HierarchyConfig;
use crate::memory::MemoryController;
use crate::prefetch::PrefetchEngine;
use crate::stats::{LevelStats, NodeStats};

/// Multiplicative hasher for line addresses: the directory is keyed by line
/// numbers (sequential, low-entropy), for which one odd-constant multiply
/// mixes far faster than the default SipHash.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        // Fibonacci hashing: one multiply, upper bits well mixed.
        self.0 = value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Lines per directory page (64 consecutive lines share one hashed entry).
const DIR_PAGE_LINES: usize = 64;

/// One directory page: presence masks for 64 consecutive lines plus an
/// occupancy count so empty pages can be dropped. Streaming access patterns
/// touch the same handful of pages for 64 lines in a row, so the hot pages
/// stay cache-resident and per-line updates are plain array writes instead
/// of hash-table insert/remove churn.
struct DirPage {
    masks: [u64; DIR_PAGE_LINES],
    occupied: u32,
}

impl DirPage {
    fn empty() -> Box<DirPage> {
        Box::new(DirPage { masks: [0; DIR_PAGE_LINES], occupied: 0 })
    }
}

/// line address (grouped by page) → bitmask of cache instances per line.
type PresenceDirectory = HashMap<u64, Box<DirPage>, BuildHasherDefault<LineHasher>>;

/// The complete simulated memory hierarchy of a node.
///
/// One instance is created per simulated benchmark run. The workload
/// execution engine calls [`NodeCacheSystem::access`] (or the batched
/// [`NodeCacheSystem::access_run`]) for every memory operation of every
/// (simulated) application thread; afterwards the counters are read back —
/// either directly via [`NodeCacheSystem::stats`] or, in the full
/// reproduction pipeline, through the architectural event layer of
/// `likwid-perf-events`.
pub struct NodeCacheSystem {
    config: HierarchyConfig,
    /// `levels[l]` holds all instances of cache level `l` in the node.
    levels: Vec<Vec<SetAssocCache>>,
    /// `thread_instance[l][t]` is the instance of level `l` used by thread `t`.
    thread_instance: Vec<Vec<usize>>,
    /// One memory controller per socket.
    memory: Vec<MemoryController>,
    prefetch: PrefetchEngine,
    thread_loads: Vec<u64>,
    thread_stores: Vec<u64>,
    /// Directory bit offset of each level's first instance.
    instance_base: Vec<u32>,
    /// Directory bit → (level, instance) decode table.
    bit_instance: Vec<(u32, u32)>,
    /// Directory bits of the instances on each thread's own lookup path.
    own_path_mask: Vec<u64>,
    /// Which instances may hold each line. Invariant: the mask is always a
    /// *superset* of the instances actually holding the line (probing a
    /// non-holder is a harmless no-op; missing a holder would lose
    /// invalidations), and with the exact maintenance below it stays equal.
    directory: PresenceDirectory,
    /// False when the node has more than 64 cache instances; coherence then
    /// falls back to the broadcast walk.
    directory_enabled: bool,
    /// One-entry cache in front of the directory hash map: the page of the
    /// most recent fill, held outside the map. Streaming fills hit the same
    /// page 64 lines in a row, so the common directory update is an array
    /// write with one comparison instead of a hash probe. The hot page is
    /// logically part of the directory; every query consults it first.
    hot_page: Option<(u64, Box<DirPage>)>,
    /// `back_inval[l][inst]`: precomputed (inner level, inner instance)
    /// targets of an inclusive eviction, see
    /// [`HierarchyConfig::back_invalidation_map`].
    back_inval: Vec<Vec<Vec<(usize, usize)>>>,
    /// `inner_mask[l][inst]`: the same targets as directory bits, so the
    /// eviction path can intersect them with the victim's presence mask and
    /// probe only instances that actually hold the victim.
    inner_mask: Vec<Vec<u64>>,
    /// log2 of the L1 line size when it is a power of two, so the
    /// per-access line split is a shift instead of two divisions.
    line_shift: Option<u32>,
}

impl NodeCacheSystem {
    /// Build the hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let mut levels = Vec::new();
        let mut thread_instance = Vec::new();
        let mut instance_base = Vec::new();
        let mut bit_instance = Vec::new();
        let mut bits = 0u32;
        for (l, level) in config.levels.iter().enumerate() {
            let n = config.instances_of(level);
            instance_base.push(bits);
            for inst in 0..n {
                bit_instance.push((l as u32, inst as u32));
            }
            bits = bits.saturating_add(n as u32);
            levels.push(
                (0..n)
                    .map(|_| {
                        SetAssocCache::new(
                            level.sets,
                            level.ways,
                            level.line_size,
                            level.replacement,
                        )
                    })
                    .collect::<Vec<_>>(),
            );
            thread_instance.push(
                (0..config.num_threads)
                    .map(|t| config.instance_for_thread(level, t))
                    .collect::<Vec<_>>(),
            );
        }
        let directory_enabled = bits <= u64::BITS;
        let own_path_mask = (0..config.num_threads)
            .map(|t| {
                thread_instance
                    .iter()
                    .enumerate()
                    .map(|(l, per_thread)| {
                        1u64.checked_shl(instance_base[l] + per_thread[t] as u32).unwrap_or(0)
                    })
                    .fold(0, |acc, bit| acc | bit)
            })
            .collect();
        let back_inval = config.back_invalidation_map();
        let inner_mask = back_inval
            .iter()
            .map(|instances| {
                instances
                    .iter()
                    .map(|targets| {
                        targets
                            .iter()
                            .map(|&(l, inst)| {
                                1u64.checked_shl(instance_base[l] + inst as u32).unwrap_or(0)
                            })
                            .fold(0, |acc, bit| acc | bit)
                    })
                    .collect()
            })
            .collect();
        let memory = (0..config.num_sockets).map(|_| MemoryController::default()).collect();
        let prefetch = PrefetchEngine::new(config.prefetch, config.num_threads);
        let thread_loads = vec![0; config.num_threads];
        let thread_stores = vec![0; config.num_threads];
        let l1_line = config.levels.first().map(|l| l.line_size).unwrap_or(64);
        let line_shift = l1_line.is_power_of_two().then(|| l1_line.trailing_zeros());
        NodeCacheSystem {
            config,
            levels,
            thread_instance,
            memory,
            prefetch,
            thread_loads,
            thread_stores,
            instance_base,
            bit_instance,
            own_path_mask,
            directory: PresenceDirectory::default(),
            directory_enabled,
            hot_page: None,
            back_inval,
            inner_mask,
            line_shift,
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Line size of the innermost level, used to split accesses into lines.
    fn l1_line_size(&self) -> u64 {
        self.config.levels.first().map(|l| l.line_size).unwrap_or(64)
    }

    /// First and last line touched by `size` bytes at `address` — one shift
    /// each when the line size is a power of two (every preset).
    #[inline]
    fn split_lines(&self, address: u64, size: u32) -> (u64, u64) {
        let end = address + size.max(1) as u64 - 1;
        match self.line_shift {
            Some(shift) => (address >> shift, end >> shift),
            None => {
                let line_size = self.l1_line_size();
                (address / line_size, end / line_size)
            }
        }
    }

    /// The memory controller index homing `address`. `domain_of` already
    /// returns an in-range domain for every sane policy; the modulo runs
    /// only for configs whose policy names more domains than sockets.
    #[inline]
    fn home_domain(&self, address: u64) -> u32 {
        let domain = self.config.numa_policy.domain_of(address);
        if domain < self.config.num_sockets {
            domain
        } else {
            domain % self.config.num_sockets
        }
    }

    #[inline]
    fn dir_bit(&self, level: usize, inst: usize) -> u64 {
        // checked_shl: callers compute bits even when the directory is
        // disabled because the node has more than 64 instances; the bit is
        // then 0 (and unused) instead of a shift overflow.
        1u64.checked_shl(self.instance_base[level] + inst as u32).unwrap_or(0)
    }

    /// The presence mask of `line` (0 when untracked).
    #[inline]
    fn dir_mask(&self, line: u64) -> u64 {
        let page_key = line / DIR_PAGE_LINES as u64;
        if let Some((hot_key, page)) = &self.hot_page {
            if *hot_key == page_key {
                return page.masks[(line % DIR_PAGE_LINES as u64) as usize];
            }
        }
        self.directory
            .get(&page_key)
            .map(|page| page.masks[(line % DIR_PAGE_LINES as u64) as usize])
            .unwrap_or(0)
    }

    /// Merge `bits` into `line`'s presence mask; returns the merged mask
    /// (so a store right after its write-allocate fill can reuse it instead
    /// of looking the line up again). The line's page becomes the hot page.
    #[inline]
    fn dir_or(&mut self, line: u64, bits: u64) -> u64 {
        if !self.directory_enabled || bits == 0 {
            return 0;
        }
        let page_key = line / DIR_PAGE_LINES as u64;
        if self.hot_page.as_ref().map_or(true, |(hot_key, _)| *hot_key != page_key) {
            let page = self.directory.remove(&page_key).unwrap_or_else(DirPage::empty);
            if let Some((old_key, old_page)) = self.hot_page.replace((page_key, page)) {
                self.directory.insert(old_key, old_page);
            }
        }
        let (_, page) = self.hot_page.as_mut().expect("hot page just installed");
        let mask = &mut page.masks[(line % DIR_PAGE_LINES as u64) as usize];
        if *mask == 0 {
            page.occupied += 1;
        }
        *mask |= bits;
        *mask
    }

    /// Clear `bits` from `line`'s presence mask; returns the remaining mask.
    /// Pages whose last line went away are dropped, so directory memory is
    /// bounded by the resident working set, not by the touched footprint.
    #[inline]
    fn dir_and_not(&mut self, line: u64, bits: u64) -> u64 {
        if !self.directory_enabled {
            return 0;
        }
        let page_key = line / DIR_PAGE_LINES as u64;
        if let Some((hot_key, page)) = &mut self.hot_page {
            if *hot_key == page_key {
                let mask = &mut page.masks[(line % DIR_PAGE_LINES as u64) as usize];
                if *mask == 0 {
                    return 0;
                }
                *mask &= !bits;
                let remaining = *mask;
                if remaining == 0 {
                    page.occupied -= 1;
                    if page.occupied == 0 {
                        self.hot_page = None;
                    }
                }
                return remaining;
            }
        }
        let Some(page) = self.directory.get_mut(&page_key) else {
            return 0;
        };
        let mask = &mut page.masks[(line % DIR_PAGE_LINES as u64) as usize];
        if *mask == 0 {
            return 0;
        }
        *mask &= !bits;
        let remaining = *mask;
        if remaining == 0 {
            page.occupied -= 1;
            if page.occupied == 0 {
                self.directory.remove(&page_key);
            }
        }
        remaining
    }

    /// Issue one memory access on behalf of hardware thread `thread`.
    ///
    /// Returns the slowest level that had to be consulted to satisfy the
    /// access (for multi-line accesses, the worst line).
    pub fn access(&mut self, thread: usize, access: Access) -> HitLevel {
        assert!(thread < self.config.num_threads, "no such hardware thread {thread}");
        let socket = self.config.thread_socket[thread];

        if access.kind == AccessKind::NonTemporalStore {
            self.thread_stores[thread] += 1;
            let domain = self.home_domain(access.address);
            self.memory[domain as usize].write(access.size as u64, socket, domain, true);
            return HitLevel::Streaming;
        }

        let (first, last) = self.split_lines(access.address, access.size);
        let is_write = access.kind.is_write();
        if access.kind.is_demand() {
            if is_write {
                self.thread_stores[thread] += 1;
            } else {
                self.thread_loads[thread] += 1;
            }
        }

        let mut worst = HitLevel::L1;
        for line in first..=last {
            let (level, mask) =
                self.demand_line_access(thread, socket, access.address, line, is_write);
            if is_write {
                // Invalidation-based coherence: a store makes every copy of
                // the line outside the writer's own cache path stale. This
                // is what turns the wavefront plane hand-off into memory
                // traffic when producer and consumer do not share a cache.
                self.invalidate_other_copies(thread, line, mask);
            }
            if level > worst {
                worst = level;
            }
        }
        worst
    }

    /// Issue `count` accesses of `size` bytes each at `base`, `base +
    /// stride`, `base + 2*stride`, … on behalf of `thread` — the batched
    /// equivalent of calling [`NodeCacheSystem::access`] once per element,
    /// with bit-identical statistics.
    ///
    /// Runs whose stride is smaller than the line size revisit each line
    /// several times in a row; the repeats are collapsed into plain counter
    /// updates (the hierarchy walk, replacement update and coherence probe
    /// of a repeat cannot change any state the first access did not already
    /// settle). Returns the worst hit level over the whole run.
    pub fn access_run(
        &mut self,
        thread: usize,
        base: u64,
        stride: i64,
        count: u64,
        size: u32,
        kind: AccessKind,
    ) -> HitLevel {
        assert!(thread < self.config.num_threads, "no such hardware thread {thread}");
        assert!(size > 0, "zero-size access run");
        let socket = self.config.thread_socket[thread];

        if kind == AccessKind::NonTemporalStore {
            if count == 0 {
                return HitLevel::Streaming;
            }
            for i in 0..count {
                let address = base.wrapping_add((i as i64).wrapping_mul(stride) as u64);
                self.thread_stores[thread] += 1;
                let domain = self.home_domain(address);
                self.memory[domain as usize].write(size as u64, socket, domain, true);
            }
            return HitLevel::Streaming;
        }

        let is_write = kind.is_write();
        let is_demand = kind.is_demand();
        let mut worst = HitLevel::L1;
        // The line whose repeats are currently being collapsed, and how many
        // repeats have accumulated.
        let mut pending: Option<(u64, u64)> = None;
        for i in 0..count {
            let address = base.wrapping_add((i as i64).wrapping_mul(stride) as u64);
            let (first, last) = self.split_lines(address, size);
            if first == last {
                if let Some((line, ref mut repeats)) = pending {
                    if line == first {
                        *repeats += 1;
                        continue;
                    }
                }
                self.flush_repeats(thread, pending.take(), is_write, is_demand);
                if is_demand {
                    if is_write {
                        self.thread_stores[thread] += 1;
                    } else {
                        self.thread_loads[thread] += 1;
                    }
                }
                let (level, mask) =
                    self.demand_line_access(thread, socket, address, first, is_write);
                if is_write {
                    self.invalidate_other_copies(thread, first, mask);
                }
                if level > worst {
                    worst = level;
                }
                // Collapse subsequent repeats only while a repeat's L1 hit
                // would change nothing but counters: the line must still be
                // resident AND its replacement touch must be order-neutral
                // (already the MRU way, or a FIFO set). Prefetches this
                // access triggered can violate both in a degenerate L1 by
                // filling the same set; each repeat then takes the full walk.
                let l1_inst = self.thread_instance[0][thread];
                if self.levels[0][l1_inst].repeat_hit_is_collapsible(first) {
                    pending = Some((first, 0));
                }
            } else {
                // Line-straddling element: no collapsing, take the full path.
                self.flush_repeats(thread, pending.take(), is_write, is_demand);
                let level = self.access(thread, Access { address, size, kind });
                if level > worst {
                    worst = level;
                }
            }
        }
        self.flush_repeats(thread, pending, is_write, is_demand);
        worst
    }

    /// Apply the statistics of `repeats` collapsed same-line L1 hits.
    ///
    /// In the unbatched walk each repeat performs: thread counter, L1 demand
    /// counters (access + hit), an MRU touch on an already-MRU way (cannot
    /// change any future victim choice), a zero-stride prefetcher
    /// observation (idempotent), and — for stores — a coherence probe of a
    /// line whose foreign copies the first store already invalidated (a
    /// no-op). Only the counters and the one prefetcher reset survive.
    fn flush_repeats(
        &mut self,
        thread: usize,
        pending: Option<(u64, u64)>,
        is_write: bool,
        is_demand: bool,
    ) {
        let Some((line, repeats)) = pending else { return };
        if repeats == 0 {
            return;
        }
        if is_demand {
            if is_write {
                self.thread_stores[thread] += repeats;
            } else {
                self.thread_loads[thread] += repeats;
            }
        }
        let inst = self.thread_instance[0][thread];
        let stats = &mut self.levels[0][inst].stats;
        stats.accesses += repeats;
        stats.hits += repeats;
        if is_write {
            stats.stores += repeats;
        } else {
            stats.loads += repeats;
        }
        self.prefetch.observe_repeats(thread, line);
    }

    /// Invalidate `line` in every cache instance that is not on `thread`'s
    /// own lookup path (other cores' private caches, other sockets' shared
    /// caches).
    ///
    /// With the presence directory this probes only instances that actually
    /// hold the line — zero work for thread-private data; without it (more
    /// than 64 instances in the node) it broadcasts like real snoop-based
    /// coherence would. `known_mask` passes along a presence mask the caller
    /// already obtained from the line's write-allocate fill (the mask may
    /// over-approximate by the lines the fill's own prefetches evicted,
    /// which only causes no-op probes).
    fn invalidate_other_copies(&mut self, thread: usize, line: u64, known_mask: Option<u64>) {
        if self.directory_enabled {
            let mask = match known_mask {
                Some(mask) => mask,
                None => self.dir_mask(line),
            };
            let others = mask & !self.own_path_mask[thread];
            if others == 0 {
                return;
            }
            let mut pending = others;
            while pending != 0 {
                let bit = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let (l, inst) = self.bit_instance[bit];
                self.levels[l as usize][inst as usize].invalidate(line);
            }
            self.dir_and_not(line, others);
        } else {
            for l in 0..self.levels.len() {
                let own = self.thread_instance[l][thread];
                for inst in 0..self.levels[l].len() {
                    if inst != own {
                        self.levels[l][inst].invalidate(line);
                    }
                }
            }
        }
    }

    /// Demand access to one line: walk the hierarchy, fill on the way back,
    /// then let the prefetchers react.
    fn demand_line_access(
        &mut self,
        thread: usize,
        socket: u32,
        byte_address: u64,
        line: u64,
        is_write: bool,
    ) -> (HitLevel, Option<u64>) {
        let num_levels = self.levels.len();
        let mut hit_level: Option<usize> = None;

        for l in 0..num_levels {
            let inst = self.thread_instance[l][thread];
            let cache = &mut self.levels[l][inst];
            cache.stats.accesses += 1;
            if is_write {
                cache.stats.stores += 1;
            } else {
                cache.stats.loads += 1;
            }
            if cache.lookup(line, is_write && l == 0) {
                cache.stats.hits += 1;
                hit_level = Some(l);
                break;
            } else {
                cache.stats.misses += 1;
            }
        }

        let l1_missed = !matches!(hit_level, Some(0));
        let l2_missed = hit_level.map_or(true, |l| l > 1);

        // Fetch from memory if no level had the line.
        if hit_level.is_none() {
            let domain = self.home_domain(byte_address);
            self.memory[domain as usize].read(self.config.memory_line_size, socket, domain);
        }

        // Fill the line into every level between the hit level (exclusive)
        // and L1, innermost last so the dirty bit lands in L1 for stores.
        // The line's new presence bits are batched into one directory
        // update after the loop (the victims evicted along the way are
        // other lines, handled per eviction).
        let fill_from = hit_level.unwrap_or(num_levels);
        let mut line_mask = None;
        if fill_from > 0 {
            let mut filled_bits = 0u64;
            for l in (0..fill_from).rev() {
                // The line becomes dirty only in L1 (write-back propagates
                // dirtiness outward on eviction). The lookup above just
                // missed these levels, so the duplicate scan is skipped.
                let dirty = is_write && l == 0;
                let inst = self.thread_instance[l][thread];
                let eviction = self.levels[l][inst].fill_absent(line, dirty);
                filled_bits |= self.dir_bit(l, inst);
                self.handle_eviction(thread, socket, l, inst, eviction);
            }
            if self.directory_enabled {
                line_mask = Some(self.dir_or(line, filled_bits));
            }
        }

        // Prefetcher reaction (demand accesses only).
        let decision = self.prefetch.observe(thread, line, l1_missed, l2_missed);
        for &pline in decision.l1_lines() {
            self.prefetch_line(thread, socket, 0, pline);
        }
        for &pline in decision.l2_lines() {
            if num_levels > 1 {
                self.prefetch_line(thread, socket, 1, pline);
            }
        }

        let level = match hit_level {
            Some(0) => HitLevel::L1,
            Some(1) => HitLevel::L2,
            Some(_) => HitLevel::L3,
            None => HitLevel::Memory,
        };
        (level, line_mask)
    }

    /// Process the eviction caused by a fill into instance `inst` of level
    /// `l`: drop the victim's presence bit, write dirty data outward and
    /// back-invalidate inner levels if `l` is inclusive.
    ///
    /// With the directory, the victim's remaining presence mask intersected
    /// with the precomputed inner-instance mask tells exactly which inner
    /// caches still hold the victim — for streaming traffic (the victim left
    /// the small inner levels long before leaving the large outer one) that
    /// intersection is empty and the whole back-invalidation walk vanishes.
    ///
    /// The victim reaches the next level (or memory) at most once: if the
    /// outer copy was dirty it is written back, and a dirty inner copy found
    /// during back-invalidation only triggers the writeback when the outer
    /// copy had not already paid it — one memory write per evicted line.
    fn handle_eviction(
        &mut self,
        thread: usize,
        socket: u32,
        l: usize,
        inst: usize,
        eviction: Eviction,
    ) {
        let (victim, dirty) = match eviction {
            Eviction::None => return,
            Eviction::Clean(v) => (v, false),
            Eviction::Dirty(v) => (v, true),
        };

        let mut written_back = false;
        if dirty {
            self.writeback(thread, socket, l + 1, victim);
            written_back = true;
        }

        if self.directory_enabled {
            // Clear the victim's bit for this instance; what remains tells
            // which (if any) inner instances need back-invalidation.
            let remaining = self.dir_and_not(victim, self.dir_bit(l, inst));
            let holders = remaining & self.inner_mask[l][inst];
            if holders != 0 {
                let mut pending = holders;
                while pending != 0 {
                    let holder_bit = pending.trailing_zeros() as usize;
                    pending &= pending - 1;
                    let (inner_level, inner_inst) = self.bit_instance[holder_bit];
                    if let Some(was_dirty) =
                        self.levels[inner_level as usize][inner_inst as usize].invalidate(victim)
                    {
                        if was_dirty && !written_back {
                            // The inner copy was newer; it must reach memory
                            // (once).
                            self.writeback(thread, socket, l + 1, victim);
                            written_back = true;
                        }
                    }
                }
                self.dir_and_not(victim, holders);
            }
        } else {
            // Broadcast fallback: probe every precomputed inner instance.
            for i in 0..self.back_inval[l][inst].len() {
                let (inner_level, inner_inst) = self.back_inval[l][inst][i];
                if let Some(was_dirty) = self.levels[inner_level][inner_inst].invalidate(victim) {
                    if was_dirty && !written_back {
                        self.writeback(thread, socket, l + 1, victim);
                        written_back = true;
                    }
                }
            }
        }
    }

    /// Write a dirty line back into level `l` (or memory if past the LLC).
    fn writeback(&mut self, thread: usize, socket: u32, l: usize, line: u64) {
        if l >= self.levels.len() {
            let byte_address = line * self.config.memory_line_size;
            let domain = self.home_domain(byte_address);
            self.memory[domain as usize].write(self.config.memory_line_size, socket, domain, false);
            return;
        }
        let inst = self.thread_instance[l][thread];
        if self.levels[l][inst].mark_dirty(line) {
            return;
        }
        // Non-inclusive outer level did not hold the line (the mark_dirty
        // probe said so): allocate it there as dirty (victim-cache style
        // fill).
        let eviction = self.levels[l][inst].fill_absent(line, true);
        self.dir_or(line, self.dir_bit(l, inst));
        self.handle_eviction(thread, socket, l, inst, eviction);
    }

    /// Bring `line` into level `l` as a prefetch (no demand statistics, no
    /// further prefetch recursion). The fill follows the same path as a
    /// demand fill: if the line has to come from memory it is allocated in
    /// every level from the outermost inwards, so prefetched lines are
    /// visible in the shared cache like on the (mostly inclusive) real
    /// hierarchies.
    fn prefetch_line(&mut self, thread: usize, socket: u32, l: usize, line: u64) {
        let inst = self.thread_instance[l][thread];
        self.levels[l][inst].stats.prefetch_requests += 1;
        if self.levels[l][inst].contains(line) {
            return;
        }
        // Find the innermost outer level that already has the line.
        let mut found_at = None;
        for outer in (l + 1)..self.levels.len() {
            let outer_inst = self.thread_instance[outer][thread];
            if self.levels[outer][outer_inst].contains(line) {
                found_at = Some(outer);
                break;
            }
        }
        if found_at.is_none() {
            let byte_address = line * self.config.memory_line_size;
            let domain = self.home_domain(byte_address);
            self.memory[domain as usize].read(self.config.memory_line_size, socket, domain);
        }
        let fill_from = found_at.unwrap_or(self.levels.len());
        if fill_from > l {
            let mut filled_bits = 0u64;
            for level in (l..fill_from).rev() {
                // Every level in l..fill_from was just probed and found
                // empty, so the duplicate scan is skipped.
                let level_inst = self.thread_instance[level][thread];
                let eviction = self.levels[level][level_inst].fill_absent(line, false);
                filled_bits |= self.dir_bit(level, level_inst);
                if level == l {
                    self.levels[level][level_inst].stats.prefetch_fills += 1;
                }
                self.handle_eviction(thread, socket, level, level_inst, eviction);
            }
            self.dir_or(line, filled_bits);
        }
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            levels: self
                .config
                .levels
                .iter()
                .zip(&self.levels)
                .map(|(cfg, instances)| LevelStats {
                    level: cfg.level,
                    instances: instances.iter().map(|c| c.stats).collect(),
                })
                .collect(),
            memory: self.memory.iter().map(|m| m.stats).collect(),
            thread_loads: self.thread_loads.clone(),
            thread_stores: self.thread_stores.clone(),
        }
    }

    /// Reset all counters (cache contents are preserved, mirroring what
    /// starting a new measurement region does on real hardware).
    pub fn reset_stats(&mut self) {
        for level in &mut self.levels {
            for cache in level {
                cache.stats = Default::default();
            }
        }
        for mc in &mut self.memory {
            mc.stats = Default::default();
        }
        self.thread_loads.iter_mut().for_each(|v| *v = 0);
        self.thread_stores.iter_mut().for_each(|v| *v = 0);
    }

    /// The socket-level (last level) cache statistics of one socket.
    ///
    /// Returns zeroed counters when the hierarchy has no cache levels or no
    /// hardware thread lives on `socket` (instead of silently reporting
    /// another socket's LLC instance).
    pub fn llc_stats_of_socket(&self, socket: u32) -> crate::stats::CacheStats {
        let Some(last) = self.levels.last() else {
            return Default::default();
        };
        // Find a thread on that socket and use its LLC instance.
        let Some(thread) = self.config.thread_socket.iter().position(|&s| s == socket) else {
            return Default::default();
        };
        let inst = self.thread_instance[self.levels.len() - 1][thread];
        last[inst].stats
    }

    /// Memory statistics of one socket's controller.
    pub fn memory_stats_of_socket(&self, socket: u32) -> crate::stats::MemoryStats {
        self.memory.get(socket as usize).map(|m| m.stats).unwrap_or_default()
    }

    /// Whether the exact presence directory is active (64 or fewer cache
    /// instances). The sharded engine's residency analysis needs it; without
    /// it every cross-shard store must be treated as a potential conflict.
    pub fn directory_enabled(&self) -> bool {
        self.directory_enabled
    }

    /// Lines per presence-directory page (page key = line / this).
    pub fn dir_page_lines() -> u64 {
        DIR_PAGE_LINES as u64
    }

    /// Whether any line of directory page `page_key` is resident somewhere
    /// in this node. Meaningless when the directory is disabled.
    pub fn dir_page_occupied(&self, page_key: u64) -> bool {
        if let Some((hot_key, _)) = &self.hot_page {
            if *hot_key == page_key {
                return true;
            }
        }
        self.directory.contains_key(&page_key)
    }

    /// Number of occupied directory pages.
    pub fn dir_page_count(&self) -> usize {
        self.directory.len() + usize::from(self.hot_page.is_some())
    }

    /// Keys of all occupied directory pages (unspecified order — callers
    /// must only use this for order-independent membership queries).
    pub fn dir_occupied_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.hot_page.iter().map(|(key, _)| *key).chain(self.directory.keys().copied())
    }

    /// Invalidate `line` in **every** instance of this node on behalf of a
    /// store issued outside it — the cross-shard half of
    /// [`NodeCacheSystem::invalidate_other_copies`], used by the sharded
    /// engine's serial fallback. The storing thread lives in another shard,
    /// so no own-path exclusion applies; invalidated dirty copies are
    /// dropped without a write-back, exactly like the intra-node walk (the
    /// store's write-allocate fill supersedes the data).
    pub fn invalidate_external(&mut self, line: u64) {
        if self.directory_enabled {
            let mask = self.dir_mask(line);
            if mask == 0 {
                return;
            }
            let mut pending = mask;
            while pending != 0 {
                let bit = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let (l, inst) = self.bit_instance[bit];
                self.levels[l as usize][inst as usize].invalidate(line);
            }
            self.dir_and_not(line, mask);
        } else {
            for level in &mut self.levels {
                for cache in level {
                    cache.invalidate(line);
                }
            }
        }
    }

    /// Check the directory invariant: every line resident in some cache
    /// instance has that instance's bit set in its presence mask (the mask
    /// may over-approximate, but must never miss a holder). Test/diagnostic
    /// only — walks every line of every instance.
    #[cfg(any(test, feature = "reference"))]
    pub fn verify_directory_superset(&self) {
        if !self.directory_enabled {
            return;
        }
        for (l, instances) in self.levels.iter().enumerate() {
            for (inst, cache) in instances.iter().enumerate() {
                let bit = self.dir_bit(l, inst);
                for line in cache.resident_line_addresses().collect::<Vec<_>>() {
                    assert!(
                        self.dir_mask(line) & bit != 0,
                        "directory lost level {l} instance {inst} holding line {line:#x}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheLevelConfig, PrefetchConfig, WritePolicy};
    use crate::memory::NumaPolicy;
    use crate::replacement::ReplacementPolicy;
    use crate::Access;

    /// A small synthetic two-thread, two-socket machine: 4-set/2-way L1,
    /// 16-set/4-way L2, 64-set/8-way shared L3 per socket.
    fn tiny_config(prefetch: PrefetchConfig) -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![
                CacheLevelConfig {
                    level: 1,
                    sets: 4,
                    ways: 2,
                    line_size: 64,
                    inclusive: false,
                    shared_by_threads: 1,
                    write_policy: WritePolicy::WriteBackAllocate,
                    replacement: ReplacementPolicy::Lru,
                },
                CacheLevelConfig {
                    level: 2,
                    sets: 16,
                    ways: 4,
                    line_size: 64,
                    inclusive: false,
                    shared_by_threads: 1,
                    write_policy: WritePolicy::WriteBackAllocate,
                    replacement: ReplacementPolicy::Lru,
                },
                CacheLevelConfig {
                    level: 3,
                    sets: 64,
                    ways: 8,
                    line_size: 64,
                    inclusive: true,
                    shared_by_threads: 2,
                    write_policy: WritePolicy::WriteBackAllocate,
                    replacement: ReplacementPolicy::Lru,
                },
            ],
            num_threads: 4,
            thread_socket: vec![0, 0, 1, 1],
            thread_core: vec![0, 1, 2, 3],
            num_sockets: 2,
            prefetch,
            numa_policy: NumaPolicy::interleave(4096),
            memory_line_size: 64,
        }
    }

    fn system(prefetch: PrefetchConfig) -> NodeCacheSystem {
        NodeCacheSystem::new(tiny_config(prefetch))
    }

    #[test]
    fn first_access_misses_everywhere_then_hits_in_l1() {
        let mut sys = system(PrefetchConfig::all_disabled());
        assert_eq!(sys.access(0, Access::load(0)), HitLevel::Memory);
        assert_eq!(sys.access(0, Access::load(8)), HitLevel::L1, "same line");
        let stats = sys.stats();
        assert_eq!(stats.level_total(1).misses, 1);
        assert_eq!(stats.level_total(1).hits, 1);
        assert_eq!(stats.memory[0].bytes_read + stats.memory[1].bytes_read, 64);
    }

    #[test]
    fn store_miss_causes_write_allocate_read() {
        let mut sys = system(PrefetchConfig::all_disabled());
        assert_eq!(sys.access(0, Access::store(0)), HitLevel::Memory);
        let stats = sys.stats();
        assert_eq!(stats.total_memory_bytes(), 64, "the line is read before being written");
        assert_eq!(stats.memory.iter().map(|m| m.bytes_written).sum::<u64>(), 0);
    }

    #[test]
    fn nt_store_streams_to_memory_without_reading() {
        let mut sys = system(PrefetchConfig::all_disabled());
        assert_eq!(
            sys.access(0, Access { address: 0, size: 64, kind: AccessKind::NonTemporalStore }),
            HitLevel::Streaming
        );
        let stats = sys.stats();
        assert_eq!(stats.memory.iter().map(|m| m.bytes_read).sum::<u64>(), 0);
        assert_eq!(stats.memory.iter().map(|m| m.bytes_written).sum::<u64>(), 64);
        assert_eq!(stats.level_total(1).accesses, 0, "NT stores bypass the caches");
    }

    #[test]
    fn dirty_lines_are_written_back_when_evicted_through_the_hierarchy() {
        let mut sys = system(PrefetchConfig::all_disabled());
        // Write a line, then stream enough distinct lines through the caches
        // to force it all the way out of the (inclusive) L3.
        sys.access(0, Access::store(0));
        // L3: 64 sets x 8 ways = 512 lines. Stream 2048 distinct lines.
        for i in 1..2048u64 {
            sys.access(0, Access::load(i * 64));
        }
        let stats = sys.stats();
        let written: u64 = stats.memory.iter().map(|m| m.bytes_written).sum();
        assert!(written >= 64, "the dirty line must eventually be written back, got {written}");
    }

    #[test]
    fn smt_siblings_share_nothing_but_socket_peers_share_l3() {
        let mut sys = system(PrefetchConfig::all_disabled());
        sys.access(0, Access::load(0));
        // Thread 1 is on the same socket: its first access to the same line
        // should hit in the shared L3 (not memory).
        assert_eq!(sys.access(1, Access::load(0)), HitLevel::L3);
        // Thread 2 is on the other socket: full miss.
        assert_eq!(sys.access(2, Access::load(0)), HitLevel::Memory);
    }

    #[test]
    fn streaming_traffic_matches_the_working_set_size() {
        let mut sys = system(PrefetchConfig::all_disabled());
        let lines = 4096u64;
        for i in 0..lines {
            sys.access(0, Access::load(i * 64));
        }
        let stats = sys.stats();
        assert_eq!(
            stats.memory.iter().map(|m| m.bytes_read).sum::<u64>(),
            lines * 64,
            "each distinct line is fetched exactly once"
        );
    }

    #[test]
    fn repeated_small_working_set_stays_in_cache() {
        let mut sys = system(PrefetchConfig::all_disabled());
        // 4 lines fit easily in the 8-line L1.
        for _rep in 0..100 {
            for i in 0..4u64 {
                sys.access(0, Access::load(i * 64));
            }
        }
        let stats = sys.stats();
        assert_eq!(stats.memory.iter().map(|m| m.bytes_read).sum::<u64>(), 4 * 64);
        assert_eq!(stats.level_total(1).misses, 4);
        assert_eq!(stats.level_total(1).hits, 396);
    }

    #[test]
    fn prefetchers_reduce_demand_misses_on_streaming_patterns() {
        let lines = 2048u64;
        let mut without = system(PrefetchConfig::all_disabled());
        for i in 0..lines {
            without.access(0, Access::load(i * 64));
        }
        let mut with = system(PrefetchConfig::all_enabled());
        for i in 0..lines {
            with.access(0, Access::load(i * 64));
        }
        let miss_without = without.stats().level_total(2).misses;
        let miss_with = with.stats().level_total(2).misses;
        assert!(
            miss_with < miss_without,
            "prefetching should reduce L2 demand misses ({miss_with} !< {miss_without})"
        );
        assert!(with.stats().level_total(2).prefetch_fills > 0);
    }

    #[test]
    fn stats_reset_clears_counters_but_keeps_contents() {
        let mut sys = system(PrefetchConfig::all_disabled());
        sys.access(0, Access::load(0));
        sys.reset_stats();
        assert_eq!(sys.stats().level_total(1).accesses, 0);
        // The line is still resident: the next access is an L1 hit.
        assert_eq!(sys.access(0, Access::load(0)), HitLevel::L1);
    }

    #[test]
    fn numa_partitioning_routes_traffic_to_the_right_controller() {
        let mut cfg = tiny_config(PrefetchConfig::all_disabled());
        cfg.numa_policy = NumaPolicy::Partitioned { boundaries: vec![1 << 20, u64::MAX] };
        let mut sys = NodeCacheSystem::new(cfg);
        // Thread 0 (socket 0) reads an address homed on socket 1.
        sys.access(0, Access::load(2 << 20));
        let s0 = sys.memory_stats_of_socket(0);
        let s1 = sys.memory_stats_of_socket(1);
        assert_eq!(s0.bytes_read, 0);
        assert_eq!(s1.bytes_read, 64);
        assert_eq!(s1.remote_reads, 1);
        assert_eq!(s1.local_reads, 0);
    }

    #[test]
    fn hits_plus_misses_equals_accesses_at_every_level() {
        let mut sys = system(PrefetchConfig::all_enabled());
        for i in 0..512u64 {
            let addr = (i * 7919) % (1 << 16); // pseudo-random pattern
            if i % 3 == 0 {
                sys.access((i % 4) as usize, Access::store(addr));
            } else {
                sys.access((i % 4) as usize, Access::load(addr));
            }
        }
        let stats = sys.stats();
        for level in &stats.levels {
            for inst in &level.instances {
                assert!(inst.is_consistent(), "level {} stats inconsistent: {inst:?}", level.level);
            }
        }
    }

    #[test]
    fn llc_stats_of_socket_reports_the_right_instance() {
        let mut sys = system(PrefetchConfig::all_disabled());
        sys.access(0, Access::load(0));
        sys.access(2, Access::load(1 << 20));
        assert_eq!(sys.llc_stats_of_socket(0).lines_in, 1);
        assert_eq!(sys.llc_stats_of_socket(1).lines_in, 1);
    }

    #[test]
    fn llc_stats_of_a_threadless_socket_are_zero_not_socket_zero() {
        let mut sys = system(PrefetchConfig::all_disabled());
        sys.access(0, Access::load(0));
        // Socket 7 has no hardware threads: the query must not fall back to
        // thread 0 (and thus socket 0's LLC instance).
        assert_eq!(sys.llc_stats_of_socket(7), Default::default());
        assert_eq!(sys.llc_stats_of_socket(0).lines_in, 1, "socket 0 still reports its own LLC");
    }

    #[test]
    fn directory_never_loses_a_holder() {
        let mut sys = system(PrefetchConfig::all_enabled());
        for i in 0..2048u64 {
            let addr = (i * 7919) % (1 << 14);
            if i % 3 == 0 {
                sys.access((i % 4) as usize, Access::store(addr));
            } else {
                sys.access((i % 4) as usize, Access::load(addr));
            }
            if i % 512 == 0 {
                sys.verify_directory_superset();
            }
        }
        sys.verify_directory_superset();
    }

    #[test]
    fn stores_invalidate_only_foreign_copies() {
        let mut sys = system(PrefetchConfig::all_disabled());
        // Threads 0 and 1 (same socket) and thread 2 (other socket) all load
        // line 0, so four private caches plus both L3s hold it.
        sys.access(0, Access::load(0));
        sys.access(1, Access::load(0));
        sys.access(2, Access::load(0));
        // Thread 0 stores: every copy off thread 0's path must go.
        sys.access(0, Access::store(0));
        assert_eq!(sys.access(1, Access::load(0)), HitLevel::L3, "socket 0 L3 refills thread 1");
        let mut fresh = system(PrefetchConfig::all_disabled());
        fresh.access(0, Access::load(0));
        fresh.access(1, Access::load(0));
        fresh.access(2, Access::load(0));
        fresh.access(0, Access::store(0));
        assert_eq!(fresh.access(2, Access::load(0)), HitLevel::Memory, "socket 1 lost its copy");
    }

    /// Regression test for the double-writeback bug: when an inclusive
    /// eviction writes back a dirty victim and the back-invalidation then
    /// finds a dirty inner copy, the line must reach memory once, not twice.
    #[test]
    fn inclusive_eviction_writes_each_line_back_once() {
        let level = |level, sets, ways, inclusive| CacheLevelConfig {
            level,
            sets,
            ways,
            line_size: 64,
            inclusive,
            shared_by_threads: 1,
            write_policy: WritePolicy::WriteBackAllocate,
            replacement: ReplacementPolicy::Lru,
        };
        let cfg = HierarchyConfig {
            levels: vec![level(1, 4, 2, false), level(2, 16, 4, true)],
            num_threads: 1,
            thread_socket: vec![0],
            thread_core: vec![0],
            num_sockets: 1,
            prefetch: PrefetchConfig::all_disabled(),
            numa_policy: NumaPolicy::SingleNode { socket: 0 },
            memory_line_size: 64,
        };
        let mut sys = NodeCacheSystem::new(cfg);
        let line = |l: u64| l * 64;
        // Dirty line 0 in L1, then push it out of L1 so the LLC copy turns
        // dirty too (L1 sets = 4: lines 4 and 8 conflict with line 0 there,
        // but live in different LLC sets).
        sys.access(0, Access::store(line(0)));
        sys.access(0, Access::load(line(4)));
        sys.access(0, Access::load(line(8)));
        // Re-store: line 0 returns to L1 dirty; both L1 and LLC copies dirty.
        sys.access(0, Access::store(line(0)));
        // Evict line 0 from the inclusive LLC (LLC sets = 16, ways = 4:
        // lines 16..=64 in steps of 16 share LLC set 0), keeping line 0
        // resident in L1 by touching it between the conflicting loads.
        for evictor in [16u64, 32, 48] {
            sys.access(0, Access::load(line(evictor)));
            sys.access(0, Access::store(line(0)));
        }
        sys.access(0, Access::load(line(64)));
        let written: u64 = sys.stats().memory.iter().map(|m| m.bytes_written).sum();
        assert_eq!(written, 64, "the dirty victim must be written back exactly once");
    }

    #[test]
    fn access_run_matches_per_access_walk_on_a_strided_stream() {
        for (stride, size, kind) in [
            (8i64, 8u32, AccessKind::Load),
            (8, 8, AccessKind::Store),
            (64, 8, AccessKind::Load),
            (64, 64, AccessKind::Store),
            (-64, 8, AccessKind::Load),
            (0, 8, AccessKind::Store),
            (24, 16, AccessKind::Load), // straddles line boundaries
        ] {
            let mut per_access = system(PrefetchConfig::all_enabled());
            let mut batched = system(PrefetchConfig::all_enabled());
            let base = 1 << 20;
            let count = 500u64;
            let mut worst_ref = HitLevel::L1;
            for i in 0..count {
                let address = (base as i64 + i as i64 * stride) as u64;
                let level = per_access.access(0, Access { address, size, kind });
                if level > worst_ref {
                    worst_ref = level;
                }
            }
            let worst = batched.access_run(0, base, stride, count, size, kind);
            assert_eq!(per_access.stats(), batched.stats(), "stride {stride} size {size} {kind:?}");
            assert_eq!(worst, worst_ref, "stride {stride} size {size} {kind:?}");
        }
    }

    #[test]
    fn access_run_streams_nt_stores_like_the_per_access_path() {
        let mut per_access = system(PrefetchConfig::all_disabled());
        let mut batched = system(PrefetchConfig::all_disabled());
        for i in 0..300u64 {
            per_access
                .access(0, Access { address: i * 8, size: 8, kind: AccessKind::NonTemporalStore });
        }
        let level = batched.access_run(0, 0, 8, 300, 8, AccessKind::NonTemporalStore);
        assert_eq!(level, HitLevel::Streaming);
        assert_eq!(per_access.stats(), batched.stats());
    }

    /// Regression test: more than 64 cache instances disables the directory
    /// (broadcast fallback) without shift overflows on the bit helpers.
    #[test]
    fn more_than_64_instances_falls_back_to_broadcast() {
        let threads = 40usize;
        let level = |level, sets, ways, shared, inclusive| CacheLevelConfig {
            level,
            sets,
            ways,
            line_size: 64,
            inclusive,
            shared_by_threads: shared,
            write_policy: WritePolicy::WriteBackAllocate,
            replacement: ReplacementPolicy::Lru,
        };
        let cfg = HierarchyConfig {
            // 40 + 40 + 2 = 82 instances: past the 64-bit mask budget.
            levels: vec![
                level(1, 4, 2, 1, false),
                level(2, 16, 4, 1, false),
                level(3, 64, 8, 20, true),
            ],
            num_threads: threads,
            thread_socket: (0..threads).map(|t| (t / 20) as u32).collect(),
            thread_core: (0..threads).map(|t| t as u32).collect(),
            num_sockets: 2,
            prefetch: PrefetchConfig::all_enabled(),
            numa_policy: NumaPolicy::interleave(4096),
            memory_line_size: 64,
        };
        let mut sys = NodeCacheSystem::new(cfg);
        // Coherence still works through the broadcast walk: thread 1's copy
        // dies when thread 0 stores.
        sys.access(1, Access::load(0));
        sys.access(0, Access::store(0));
        assert_eq!(sys.access(1, Access::load(0)), HitLevel::L3, "L1/L2 copies invalidated");
        for i in 0..512u64 {
            sys.access((i % 40) as usize, Access::store(i * 64));
        }
        let stats = sys.stats();
        for level in &stats.levels {
            for inst in &level.instances {
                assert!(inst.is_consistent());
            }
        }
    }

    /// Regression test: with a single-set L1, the prefetch triggered by an
    /// access can displace the demand line's MRU position, so collapsed
    /// repeats must fall back to the full walk to stay bit-identical.
    #[test]
    fn access_run_repeats_match_on_a_degenerate_single_set_l1() {
        let level = |level, sets, ways, inclusive| CacheLevelConfig {
            level,
            sets,
            ways,
            line_size: 64,
            inclusive,
            shared_by_threads: 1,
            write_policy: WritePolicy::WriteBackAllocate,
            replacement: ReplacementPolicy::Lru,
        };
        let cfg = || HierarchyConfig {
            levels: vec![level(1, 1, 2, false), level(2, 16, 4, true)],
            num_threads: 1,
            thread_socket: vec![0],
            thread_core: vec![0],
            num_sockets: 1,
            prefetch: PrefetchConfig::all_enabled(),
            numa_policy: NumaPolicy::SingleNode { socket: 0 },
            memory_line_size: 64,
        };
        let mut per_access = NodeCacheSystem::new(cfg());
        let mut batched = NodeCacheSystem::new(cfg());
        for i in 0..400u64 {
            per_access.access(0, Access { address: i * 8, size: 8, kind: AccessKind::Load });
        }
        batched.access_run(0, 0, 8, 400, 8, AccessKind::Load);
        assert_eq!(per_access.stats(), batched.stats());
    }

    #[test]
    fn access_run_of_zero_count_is_a_no_op() {
        let mut sys = system(PrefetchConfig::all_disabled());
        let before = sys.stats();
        assert_eq!(sys.access_run(0, 0, 64, 0, 8, AccessKind::Load), HitLevel::L1);
        assert_eq!(sys.stats(), before);
    }
}

//! The node-level cache system: all cache instances, prefetchers and memory
//! controllers of one machine, driven by per-hardware-thread access streams.

use crate::access::{Access, AccessKind, HitLevel};
use crate::cache::{Eviction, SetAssocCache};
use crate::config::HierarchyConfig;
use crate::memory::MemoryController;
use crate::prefetch::PrefetchEngine;
use crate::stats::{LevelStats, NodeStats};

/// The complete simulated memory hierarchy of a node.
///
/// One instance is created per simulated benchmark run. The workload
/// execution engine calls [`NodeCacheSystem::access`] for every memory
/// operation of every (simulated) application thread; afterwards the
/// counters are read back — either directly via [`NodeCacheSystem::stats`]
/// or, in the full reproduction pipeline, through the architectural event
/// layer of `likwid-perf-events`.
pub struct NodeCacheSystem {
    config: HierarchyConfig,
    /// `levels[l]` holds all instances of cache level `l` in the node.
    levels: Vec<Vec<SetAssocCache>>,
    /// `thread_instance[l][t]` is the instance of level `l` used by thread `t`.
    thread_instance: Vec<Vec<usize>>,
    /// One memory controller per socket.
    memory: Vec<MemoryController>,
    prefetch: PrefetchEngine,
    thread_loads: Vec<u64>,
    thread_stores: Vec<u64>,
}

impl NodeCacheSystem {
    /// Build the hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let mut levels = Vec::new();
        let mut thread_instance = Vec::new();
        for level in &config.levels {
            let n = config.instances_of(level);
            levels.push(
                (0..n)
                    .map(|_| {
                        SetAssocCache::new(
                            level.sets,
                            level.ways,
                            level.line_size,
                            level.replacement,
                        )
                    })
                    .collect::<Vec<_>>(),
            );
            thread_instance.push(
                (0..config.num_threads)
                    .map(|t| config.instance_for_thread(level, t))
                    .collect::<Vec<_>>(),
            );
        }
        let memory = (0..config.num_sockets).map(|_| MemoryController::default()).collect();
        let prefetch = PrefetchEngine::new(config.prefetch, config.num_threads);
        let thread_loads = vec![0; config.num_threads];
        let thread_stores = vec![0; config.num_threads];
        NodeCacheSystem {
            config,
            levels,
            thread_instance,
            memory,
            prefetch,
            thread_loads,
            thread_stores,
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Line size of the innermost level, used to split accesses into lines.
    fn l1_line_size(&self) -> u64 {
        self.config.levels.first().map(|l| l.line_size).unwrap_or(64)
    }

    /// Issue one memory access on behalf of hardware thread `thread`.
    ///
    /// Returns the slowest level that had to be consulted to satisfy the
    /// access (for multi-line accesses, the worst line).
    pub fn access(&mut self, thread: usize, access: Access) -> HitLevel {
        assert!(thread < self.config.num_threads, "no such hardware thread {thread}");
        let socket = self.config.thread_socket[thread];

        if access.kind == AccessKind::NonTemporalStore {
            self.thread_stores[thread] += 1;
            let domain =
                self.config.numa_policy.domain_of(access.address) % self.config.num_sockets;
            self.memory[domain as usize].write(access.size as u64, socket, domain, true);
            return HitLevel::Streaming;
        }

        let (first, last) = access.line_range(self.l1_line_size());
        let is_write = access.kind.is_write();
        if access.kind.is_demand() {
            if is_write {
                self.thread_stores[thread] += 1;
            } else {
                self.thread_loads[thread] += 1;
            }
        }

        let mut worst = HitLevel::L1;
        for line in first..=last {
            let level = self.demand_line_access(thread, socket, access.address, line, is_write);
            if is_write {
                // Invalidation-based coherence: a store makes every copy of
                // the line outside the writer's own cache path stale. This
                // is what turns the wavefront plane hand-off into memory
                // traffic when producer and consumer do not share a cache.
                self.invalidate_other_copies(thread, line);
            }
            if level > worst {
                worst = level;
            }
        }
        worst
    }

    /// Invalidate `line` in every cache instance that is not on `thread`'s
    /// own lookup path (other cores' private caches, other sockets' shared
    /// caches).
    fn invalidate_other_copies(&mut self, thread: usize, line: u64) {
        for l in 0..self.levels.len() {
            let own = self.thread_instance[l][thread];
            for inst in 0..self.levels[l].len() {
                if inst != own {
                    self.levels[l][inst].invalidate(line);
                }
            }
        }
    }

    /// Demand access to one line: walk the hierarchy, fill on the way back,
    /// then let the prefetchers react.
    fn demand_line_access(
        &mut self,
        thread: usize,
        socket: u32,
        byte_address: u64,
        line: u64,
        is_write: bool,
    ) -> HitLevel {
        let num_levels = self.levels.len();
        let mut hit_level: Option<usize> = None;

        for l in 0..num_levels {
            let inst = self.thread_instance[l][thread];
            let cache = &mut self.levels[l][inst];
            cache.stats.accesses += 1;
            if is_write {
                cache.stats.stores += 1;
            } else {
                cache.stats.loads += 1;
            }
            if cache.lookup(line, is_write && l == 0) {
                cache.stats.hits += 1;
                hit_level = Some(l);
                break;
            } else {
                cache.stats.misses += 1;
            }
        }

        let l1_missed = !matches!(hit_level, Some(0));
        let l2_missed = hit_level.map_or(true, |l| l > 1);

        // Fetch from memory if no level had the line.
        if hit_level.is_none() {
            let domain = self.config.numa_policy.domain_of(byte_address) % self.config.num_sockets;
            self.memory[domain as usize].read(self.config.memory_line_size, socket, domain);
        }

        // Fill the line into every level between the hit level (exclusive)
        // and L1, innermost last so the dirty bit lands in L1 for stores.
        let fill_from = hit_level.unwrap_or(num_levels);
        for l in (0..fill_from).rev() {
            // The line becomes dirty only in L1 (write-back propagates
            // dirtiness outward on eviction).
            let dirty = is_write && l == 0;
            self.fill_line(thread, socket, l, line, dirty);
        }

        // Prefetcher reaction (demand accesses only).
        let decision = self.prefetch.observe(thread, line, l1_missed, l2_missed);
        for &pline in &decision.l1_lines {
            self.prefetch_line(thread, socket, 0, pline);
        }
        for &pline in &decision.l2_lines {
            if num_levels > 1 {
                self.prefetch_line(thread, socket, 1, pline);
            }
        }

        match hit_level {
            Some(0) => HitLevel::L1,
            Some(1) => HitLevel::L2,
            Some(_) => HitLevel::L3,
            None => HitLevel::Memory,
        }
    }

    /// Fill `line` into level `l`, handling the resulting eviction.
    fn fill_line(&mut self, thread: usize, socket: u32, l: usize, line: u64, dirty: bool) {
        let inst = self.thread_instance[l][thread];
        let eviction = self.levels[l][inst].fill(line, dirty);
        self.handle_eviction(thread, socket, l, eviction);
    }

    /// Process an eviction from level `l`: write dirty data outward and
    /// back-invalidate inner levels if `l` is inclusive.
    fn handle_eviction(&mut self, thread: usize, socket: u32, l: usize, eviction: Eviction) {
        let (victim, dirty) = match eviction {
            Eviction::None => return,
            Eviction::Clean(v) => (v, false),
            Eviction::Dirty(v) => (v, true),
        };

        if dirty {
            self.writeback(thread, socket, l + 1, victim);
        }

        // Inclusive caches force the victim out of all inner levels.
        if self.config.levels[l].inclusive && l > 0 {
            // Only inner instances reachable from this instance (same sharing
            // domain) can hold the line; iterate over the threads mapping to
            // this instance and invalidate their inner caches.
            let this_inst = self.thread_instance[l][thread];
            let sharers: Vec<usize> = (0..self.config.num_threads)
                .filter(|&t| self.thread_instance[l][t] == this_inst)
                .collect();
            for inner in 0..l {
                let mut seen = Vec::new();
                for &t in &sharers {
                    let inner_inst = self.thread_instance[inner][t];
                    if seen.contains(&inner_inst) {
                        continue;
                    }
                    seen.push(inner_inst);
                    if let Some(was_dirty) = self.levels[inner][inner_inst].invalidate(victim) {
                        if was_dirty {
                            // The inner copy was newer; it must reach memory.
                            self.writeback(thread, socket, l + 1, victim);
                        }
                    }
                }
            }
        }
    }

    /// Write a dirty line back into level `l` (or memory if past the LLC).
    fn writeback(&mut self, thread: usize, socket: u32, l: usize, line: u64) {
        if l >= self.levels.len() {
            let byte_address = line * self.config.memory_line_size;
            let domain = self.config.numa_policy.domain_of(byte_address) % self.config.num_sockets;
            self.memory[domain as usize].write(self.config.memory_line_size, socket, domain, false);
            return;
        }
        let inst = self.thread_instance[l][thread];
        if self.levels[l][inst].mark_dirty(line) {
            return;
        }
        // Non-inclusive outer level did not hold the line: allocate it there
        // as dirty (victim-cache style fill).
        let eviction = self.levels[l][inst].fill(line, true);
        self.handle_eviction(thread, socket, l, eviction);
    }

    /// Bring `line` into level `l` as a prefetch (no demand statistics, no
    /// further prefetch recursion). The fill follows the same path as a
    /// demand fill: if the line has to come from memory it is allocated in
    /// every level from the outermost inwards, so prefetched lines are
    /// visible in the shared cache like on the (mostly inclusive) real
    /// hierarchies.
    fn prefetch_line(&mut self, thread: usize, socket: u32, l: usize, line: u64) {
        let inst = self.thread_instance[l][thread];
        self.levels[l][inst].stats.prefetch_requests += 1;
        if self.levels[l][inst].contains(line) {
            return;
        }
        // Find the innermost outer level that already has the line.
        let mut found_at = None;
        for outer in (l + 1)..self.levels.len() {
            let outer_inst = self.thread_instance[outer][thread];
            if self.levels[outer][outer_inst].contains(line) {
                found_at = Some(outer);
                break;
            }
        }
        if found_at.is_none() {
            let byte_address = line * self.config.memory_line_size;
            let domain = self.config.numa_policy.domain_of(byte_address) % self.config.num_sockets;
            self.memory[domain as usize].read(self.config.memory_line_size, socket, domain);
        }
        let fill_from = found_at.unwrap_or(self.levels.len());
        for level in (l..fill_from).rev() {
            let level_inst = self.thread_instance[level][thread];
            let eviction = {
                let cache = &mut self.levels[level][level_inst];
                let ev = cache.fill(line, false);
                if level == l {
                    cache.stats.prefetch_fills += 1;
                }
                ev
            };
            self.handle_eviction(thread, socket, level, eviction);
        }
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            levels: self
                .config
                .levels
                .iter()
                .zip(&self.levels)
                .map(|(cfg, instances)| LevelStats {
                    level: cfg.level,
                    instances: instances.iter().map(|c| c.stats).collect(),
                })
                .collect(),
            memory: self.memory.iter().map(|m| m.stats).collect(),
            thread_loads: self.thread_loads.clone(),
            thread_stores: self.thread_stores.clone(),
        }
    }

    /// Reset all counters (cache contents are preserved, mirroring what
    /// starting a new measurement region does on real hardware).
    pub fn reset_stats(&mut self) {
        for level in &mut self.levels {
            for cache in level {
                cache.stats = Default::default();
            }
        }
        for mc in &mut self.memory {
            mc.stats = Default::default();
        }
        self.thread_loads.iter_mut().for_each(|v| *v = 0);
        self.thread_stores.iter_mut().for_each(|v| *v = 0);
    }

    /// The socket-level (last level) cache statistics of one socket.
    pub fn llc_stats_of_socket(&self, socket: u32) -> crate::stats::CacheStats {
        let Some(last) = self.levels.last() else {
            return Default::default();
        };
        // Find a thread on that socket and use its LLC instance.
        let thread = self.config.thread_socket.iter().position(|&s| s == socket).unwrap_or(0);
        let inst = self.thread_instance[self.levels.len() - 1][thread];
        last[inst].stats
    }

    /// Memory statistics of one socket's controller.
    pub fn memory_stats_of_socket(&self, socket: u32) -> crate::stats::MemoryStats {
        self.memory.get(socket as usize).map(|m| m.stats).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheLevelConfig, PrefetchConfig, WritePolicy};
    use crate::memory::NumaPolicy;
    use crate::replacement::ReplacementPolicy;
    use crate::Access;

    /// A small synthetic two-thread, two-socket machine: 4-set/2-way L1,
    /// 16-set/4-way L2, 64-set/8-way shared L3 per socket.
    fn tiny_config(prefetch: PrefetchConfig) -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![
                CacheLevelConfig {
                    level: 1,
                    sets: 4,
                    ways: 2,
                    line_size: 64,
                    inclusive: false,
                    shared_by_threads: 1,
                    write_policy: WritePolicy::WriteBackAllocate,
                    replacement: ReplacementPolicy::Lru,
                },
                CacheLevelConfig {
                    level: 2,
                    sets: 16,
                    ways: 4,
                    line_size: 64,
                    inclusive: false,
                    shared_by_threads: 1,
                    write_policy: WritePolicy::WriteBackAllocate,
                    replacement: ReplacementPolicy::Lru,
                },
                CacheLevelConfig {
                    level: 3,
                    sets: 64,
                    ways: 8,
                    line_size: 64,
                    inclusive: true,
                    shared_by_threads: 2,
                    write_policy: WritePolicy::WriteBackAllocate,
                    replacement: ReplacementPolicy::Lru,
                },
            ],
            num_threads: 4,
            thread_socket: vec![0, 0, 1, 1],
            thread_core: vec![0, 1, 2, 3],
            num_sockets: 2,
            prefetch,
            numa_policy: NumaPolicy::interleave(4096),
            memory_line_size: 64,
        }
    }

    fn system(prefetch: PrefetchConfig) -> NodeCacheSystem {
        NodeCacheSystem::new(tiny_config(prefetch))
    }

    #[test]
    fn first_access_misses_everywhere_then_hits_in_l1() {
        let mut sys = system(PrefetchConfig::all_disabled());
        assert_eq!(sys.access(0, Access::load(0)), HitLevel::Memory);
        assert_eq!(sys.access(0, Access::load(8)), HitLevel::L1, "same line");
        let stats = sys.stats();
        assert_eq!(stats.level_total(1).misses, 1);
        assert_eq!(stats.level_total(1).hits, 1);
        assert_eq!(stats.memory[0].bytes_read + stats.memory[1].bytes_read, 64);
    }

    #[test]
    fn store_miss_causes_write_allocate_read() {
        let mut sys = system(PrefetchConfig::all_disabled());
        assert_eq!(sys.access(0, Access::store(0)), HitLevel::Memory);
        let stats = sys.stats();
        assert_eq!(stats.total_memory_bytes(), 64, "the line is read before being written");
        assert_eq!(stats.memory.iter().map(|m| m.bytes_written).sum::<u64>(), 0);
    }

    #[test]
    fn nt_store_streams_to_memory_without_reading() {
        let mut sys = system(PrefetchConfig::all_disabled());
        assert_eq!(
            sys.access(0, Access { address: 0, size: 64, kind: AccessKind::NonTemporalStore }),
            HitLevel::Streaming
        );
        let stats = sys.stats();
        assert_eq!(stats.memory.iter().map(|m| m.bytes_read).sum::<u64>(), 0);
        assert_eq!(stats.memory.iter().map(|m| m.bytes_written).sum::<u64>(), 64);
        assert_eq!(stats.level_total(1).accesses, 0, "NT stores bypass the caches");
    }

    #[test]
    fn dirty_lines_are_written_back_when_evicted_through_the_hierarchy() {
        let mut sys = system(PrefetchConfig::all_disabled());
        // Write a line, then stream enough distinct lines through the caches
        // to force it all the way out of the (inclusive) L3.
        sys.access(0, Access::store(0));
        // L3: 64 sets x 8 ways = 512 lines. Stream 2048 distinct lines.
        for i in 1..2048u64 {
            sys.access(0, Access::load(i * 64));
        }
        let stats = sys.stats();
        let written: u64 = stats.memory.iter().map(|m| m.bytes_written).sum();
        assert!(written >= 64, "the dirty line must eventually be written back, got {written}");
    }

    #[test]
    fn smt_siblings_share_nothing_but_socket_peers_share_l3() {
        let mut sys = system(PrefetchConfig::all_disabled());
        sys.access(0, Access::load(0));
        // Thread 1 is on the same socket: its first access to the same line
        // should hit in the shared L3 (not memory).
        assert_eq!(sys.access(1, Access::load(0)), HitLevel::L3);
        // Thread 2 is on the other socket: full miss.
        assert_eq!(sys.access(2, Access::load(0)), HitLevel::Memory);
    }

    #[test]
    fn streaming_traffic_matches_the_working_set_size() {
        let mut sys = system(PrefetchConfig::all_disabled());
        let lines = 4096u64;
        for i in 0..lines {
            sys.access(0, Access::load(i * 64));
        }
        let stats = sys.stats();
        assert_eq!(
            stats.memory.iter().map(|m| m.bytes_read).sum::<u64>(),
            lines * 64,
            "each distinct line is fetched exactly once"
        );
    }

    #[test]
    fn repeated_small_working_set_stays_in_cache() {
        let mut sys = system(PrefetchConfig::all_disabled());
        // 4 lines fit easily in the 8-line L1.
        for _rep in 0..100 {
            for i in 0..4u64 {
                sys.access(0, Access::load(i * 64));
            }
        }
        let stats = sys.stats();
        assert_eq!(stats.memory.iter().map(|m| m.bytes_read).sum::<u64>(), 4 * 64);
        assert_eq!(stats.level_total(1).misses, 4);
        assert_eq!(stats.level_total(1).hits, 396);
    }

    #[test]
    fn prefetchers_reduce_demand_misses_on_streaming_patterns() {
        let lines = 2048u64;
        let mut without = system(PrefetchConfig::all_disabled());
        for i in 0..lines {
            without.access(0, Access::load(i * 64));
        }
        let mut with = system(PrefetchConfig::all_enabled());
        for i in 0..lines {
            with.access(0, Access::load(i * 64));
        }
        let miss_without = without.stats().level_total(2).misses;
        let miss_with = with.stats().level_total(2).misses;
        assert!(
            miss_with < miss_without,
            "prefetching should reduce L2 demand misses ({miss_with} !< {miss_without})"
        );
        assert!(with.stats().level_total(2).prefetch_fills > 0);
    }

    #[test]
    fn stats_reset_clears_counters_but_keeps_contents() {
        let mut sys = system(PrefetchConfig::all_disabled());
        sys.access(0, Access::load(0));
        sys.reset_stats();
        assert_eq!(sys.stats().level_total(1).accesses, 0);
        // The line is still resident: the next access is an L1 hit.
        assert_eq!(sys.access(0, Access::load(0)), HitLevel::L1);
    }

    #[test]
    fn numa_partitioning_routes_traffic_to_the_right_controller() {
        let mut cfg = tiny_config(PrefetchConfig::all_disabled());
        cfg.numa_policy = NumaPolicy::Partitioned { boundaries: vec![1 << 20, u64::MAX] };
        let mut sys = NodeCacheSystem::new(cfg);
        // Thread 0 (socket 0) reads an address homed on socket 1.
        sys.access(0, Access::load(2 << 20));
        let s0 = sys.memory_stats_of_socket(0);
        let s1 = sys.memory_stats_of_socket(1);
        assert_eq!(s0.bytes_read, 0);
        assert_eq!(s1.bytes_read, 64);
        assert_eq!(s1.remote_reads, 1);
        assert_eq!(s1.local_reads, 0);
    }

    #[test]
    fn hits_plus_misses_equals_accesses_at_every_level() {
        let mut sys = system(PrefetchConfig::all_enabled());
        for i in 0..512u64 {
            let addr = (i * 7919) % (1 << 16); // pseudo-random pattern
            if i % 3 == 0 {
                sys.access((i % 4) as usize, Access::store(addr));
            } else {
                sys.access((i % 4) as usize, Access::load(addr));
            }
        }
        let stats = sys.stats();
        for level in &stats.levels {
            for inst in &level.instances {
                assert!(inst.is_consistent(), "level {} stats inconsistent: {inst:?}", level.level);
            }
        }
    }

    #[test]
    fn llc_stats_of_socket_reports_the_right_instance() {
        let mut sys = system(PrefetchConfig::all_disabled());
        sys.access(0, Access::load(0));
        sys.access(2, Access::load(1 << 20));
        assert_eq!(sys.llc_stats_of_socket(0).lines_in, 1);
        assert_eq!(sys.llc_stats_of_socket(1).lines_in, 1);
    }
}

//! Cache hierarchy and memory-system simulator.
//!
//! The LIKWID paper's counter measurements (Table II and the event groups
//! L2/L3/MEM/CACHE) report what the machine's cache hierarchy actually did
//! while a workload ran: lines allocated into and victimized from the shared
//! L3, cache line traffic per level, bytes moved to and from main memory.
//! Since no real hardware is available here, this crate provides the
//! mechanism that generates those numbers: a node-level, set-associative,
//! multi-level cache simulator with hardware prefetchers, write-allocate and
//! non-temporal store semantics, and per-socket memory controllers with
//! ccNUMA accounting.
//!
//! The simulator is driven with per-hardware-thread [`Access`] streams by the
//! `likwid-workloads` execution engine, and its statistics are translated
//! into architectural event counts by the `likwid-perf-events` crate.
//!
//! Design notes
//! ------------
//! * Simulation granularity is a cache line: workloads issue loads/stores
//!   with byte sizes, the simulator resolves them to line-aligned accesses.
//! * Private levels (L1, L2) are instantiated per physical core and shared
//!   by its SMT threads, the last level is instantiated per socket, exactly
//!   as described by the machine preset's `shared_by_threads` fields.
//! * Coherence between private caches is not modelled; the workloads of the
//!   paper partition their working sets per thread, so cross-core sharing
//!   is not on the critical path of any reproduced number.

pub mod access;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod memory;
pub mod prefetch;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
pub mod replacement;
pub mod replay;
pub mod shard;
pub mod stats;

pub use access::{Access, AccessKind, HitLevel};
pub use cache::SetAssocCache;
pub use config::{CacheLevelConfig, HierarchyConfig, PrefetchConfig, WritePolicy};
pub use hierarchy::NodeCacheSystem;
pub use memory::{MemoryController, NumaPolicy};
pub use prefetch::PrefetchEngine;
pub use replacement::{FlatReplacement, ReplacementPolicy};
pub use replay::{ReplayQueue, RunOp};
pub use shard::{ShardReplayError, ShardedCacheSystem};
pub use stats::{CacheStats, LevelStats, MemoryStats, NodeStats};

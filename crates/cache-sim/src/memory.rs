//! Main-memory controllers and ccNUMA address mapping.

use crate::stats::MemoryStats;

/// How byte addresses map to NUMA domains (sockets).
#[derive(Debug, Clone, PartialEq)]
pub enum NumaPolicy {
    /// Round-robin interleaving of fixed-size chunks across all sockets
    /// (the effect of `numactl --interleave` or of not caring).
    Interleave {
        /// Chunk granularity in bytes (page size, typically 4096).
        granularity: u64,
        /// Number of sockets to interleave over.
        sockets: u32,
    },
    /// Explicit partitioning: `boundaries[i]` is the first address that no
    /// longer belongs to socket *i*; addresses beyond the last boundary
    /// belong to the last socket. This models first-touch placement by
    /// pinned threads, where each thread's partition is initialized (and
    /// therefore placed) locally.
    Partitioned {
        /// Upper (exclusive) address bound per socket, ascending.
        boundaries: Vec<u64>,
    },
    /// Everything on one socket (models first-touch by a serial, unpinned
    /// initialization loop — the classic ccNUMA mistake).
    SingleNode {
        /// The socket owning all memory.
        socket: u32,
    },
}

impl NumaPolicy {
    /// Interleave over `sockets` sockets with 4 KiB pages.
    pub fn interleave(granularity: u64) -> Self {
        NumaPolicy::Interleave { granularity, sockets: 2 }
    }

    /// Interleave over a given number of sockets.
    pub fn interleave_over(granularity: u64, sockets: u32) -> Self {
        NumaPolicy::Interleave { granularity, sockets }
    }

    /// The NUMA domain of an address.
    pub fn domain_of(&self, address: u64) -> u32 {
        match self {
            NumaPolicy::Interleave { granularity, sockets } => {
                // Page size and socket count are powers of two on every
                // preset; the simulator hot path calls this per memory
                // transaction, so prefer shifts over two 64-bit divisions.
                if granularity.is_power_of_two() && sockets.is_power_of_two() {
                    ((address >> granularity.trailing_zeros()) & (*sockets as u64 - 1)) as u32
                } else {
                    ((address / granularity) % (*sockets as u64)) as u32
                }
            }
            NumaPolicy::Partitioned { boundaries } => {
                for (i, &b) in boundaries.iter().enumerate() {
                    if address < b {
                        return i as u32;
                    }
                }
                (boundaries.len().saturating_sub(1)) as u32
            }
            NumaPolicy::SingleNode { socket } => *socket,
        }
    }
}

/// One socket's integrated memory controller.
#[derive(Debug, Clone, Default)]
pub struct MemoryController {
    /// Traffic counters.
    pub stats: MemoryStats,
}

impl MemoryController {
    /// Record a line fill (read) of `bytes` requested by a core on
    /// `requesting_socket`, where this controller lives on `home_socket`.
    pub fn read(&mut self, bytes: u64, requesting_socket: u32, home_socket: u32) {
        self.stats.bytes_read += bytes;
        if requesting_socket == home_socket {
            self.stats.local_reads += 1;
        } else {
            self.stats.remote_reads += 1;
        }
    }

    /// Record a writeback or streaming store of `bytes`.
    pub fn write(
        &mut self,
        bytes: u64,
        requesting_socket: u32,
        home_socket: u32,
        non_temporal: bool,
    ) {
        self.stats.bytes_written += bytes;
        if non_temporal {
            self.stats.nt_stores += 1;
        }
        if requesting_socket == home_socket {
            self.stats.local_writes += 1;
        } else {
            self.stats.remote_writes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_alternates_domains_per_page() {
        let p = NumaPolicy::interleave(4096);
        assert_eq!(p.domain_of(0), 0);
        assert_eq!(p.domain_of(4095), 0);
        assert_eq!(p.domain_of(4096), 1);
        assert_eq!(p.domain_of(8192), 0);
    }

    #[test]
    fn partitioned_maps_ranges_to_sockets() {
        let p = NumaPolicy::Partitioned { boundaries: vec![1000, 2000] };
        assert_eq!(p.domain_of(0), 0);
        assert_eq!(p.domain_of(999), 0);
        assert_eq!(p.domain_of(1000), 1);
        assert_eq!(
            p.domain_of(5000),
            1,
            "addresses past the last boundary stay on the last socket"
        );
    }

    #[test]
    fn single_node_places_everything_on_one_socket() {
        let p = NumaPolicy::SingleNode { socket: 1 };
        assert_eq!(p.domain_of(0), 1);
        assert_eq!(p.domain_of(1 << 40), 1);
    }

    #[test]
    fn controller_distinguishes_local_and_remote_traffic() {
        let mut mc = MemoryController::default();
        mc.read(64, 0, 0);
        mc.read(64, 1, 0);
        mc.write(64, 0, 0, false);
        mc.write(64, 1, 0, true);
        assert_eq!(mc.stats.bytes_read, 128);
        assert_eq!(mc.stats.bytes_written, 128);
        assert_eq!(mc.stats.local_reads, 1);
        assert_eq!(mc.stats.remote_reads, 1);
        assert_eq!(mc.stats.local_writes, 1);
        assert_eq!(mc.stats.remote_writes, 1);
        assert_eq!(mc.stats.nt_stores, 1);
    }

    #[test]
    fn interleave_over_more_sockets() {
        let p = NumaPolicy::interleave_over(4096, 4);
        let domains: Vec<u32> = (0..4).map(|i| p.domain_of(i * 4096)).collect();
        assert_eq!(domains, vec![0, 1, 2, 3]);
    }
}

//! Hardware prefetcher models.
//!
//! Intel Core 2 class processors have four prefetchers that `likwid-features`
//! can toggle (Section II-D of the paper): the L2 hardware streamer, the
//! adjacent cache line prefetcher, the L1 DCU streamer and the L1 IP-stride
//! prefetcher. The models here are deliberately simple — they capture the
//! *qualitative* behaviour (extra lines pulled into the cache on streaming
//! access patterns, roughly doubling the fetch width when the adjacent-line
//! unit is on) so that toggling them through the tool has a visible,
//! testable effect on the simulated event counts.

use crate::config::PrefetchConfig;

/// Prefetch requests generated in response to one demand access.
///
/// At most two L1 targets (IP stride + DCU streamer) and three L2 targets
/// (hardware streamer ×2 + adjacent line) can fire per access, so the
/// targets live in fixed inline arrays — the decision is built on the
/// simulator's per-access hot path and must not touch the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchDecision {
    l1: [u64; 2],
    l1_len: u8,
    l2: [u64; 3],
    l2_len: u8,
}

impl PrefetchDecision {
    /// Line addresses to bring into L1, ascending and deduplicated.
    pub fn l1_lines(&self) -> &[u64] {
        &self.l1[..self.l1_len as usize]
    }

    /// Line addresses to bring into L2, ascending and deduplicated.
    pub fn l2_lines(&self) -> &[u64] {
        &self.l2[..self.l2_len as usize]
    }

    /// Whether no prefetch was issued.
    pub fn is_empty(&self) -> bool {
        self.l1_len == 0 && self.l2_len == 0
    }

    fn push_l1(&mut self, line: u64) {
        self.l1[self.l1_len as usize] = line;
        self.l1_len += 1;
    }

    fn push_l2(&mut self, line: u64) {
        self.l2[self.l2_len as usize] = line;
        self.l2_len += 1;
    }

    /// Sort ascending, drop duplicates and the demand line itself —
    /// in-place equivalent of the old sort/dedup/retain on `Vec`s.
    fn normalize(&mut self, demand_line: u64) {
        Self::normalize_slot(&mut self.l1, &mut self.l1_len, demand_line);
        Self::normalize_slot(&mut self.l2, &mut self.l2_len, demand_line);
    }

    fn normalize_slot<const N: usize>(lines: &mut [u64; N], len: &mut u8, demand_line: u64) {
        let slice = &mut lines[..*len as usize];
        slice.sort_unstable();
        let mut kept = 0usize;
        for i in 0..slice.len() {
            let line = slice[i];
            if line == demand_line || (kept > 0 && slice[kept - 1] == line) {
                continue;
            }
            slice[kept] = line;
            kept += 1;
        }
        *len = kept as u8;
    }
}

/// Per-hardware-thread prefetcher state.
#[derive(Debug, Clone, Default)]
struct ThreadState {
    /// Last line address that missed in L1 (DCU streamer detection).
    last_l1_miss_line: Option<u64>,
    /// Last demand line address (IP/stride detection).
    last_line: Option<u64>,
    /// Detected stride in lines (IP prefetcher).
    stride: i64,
    /// How many times the current stride repeated.
    stride_confidence: u32,
    /// Last line address that missed in L2 (hardware streamer detection).
    last_l2_miss_line: Option<u64>,
}

/// The prefetch engine of the node: per-thread detection state plus the
/// global enable switches.
#[derive(Debug, Clone)]
pub struct PrefetchEngine {
    config: PrefetchConfig,
    threads: Vec<ThreadState>,
}

impl PrefetchEngine {
    /// Engine for `num_threads` hardware threads.
    pub fn new(config: PrefetchConfig, num_threads: usize) -> Self {
        PrefetchEngine { config, threads: vec![ThreadState::default(); num_threads] }
    }

    /// The active configuration.
    pub fn config(&self) -> PrefetchConfig {
        self.config
    }

    /// Observe a demand access and decide which lines to prefetch.
    ///
    /// * `line` — the demand line address.
    /// * `l1_miss` / `l2_miss` — whether the demand access missed those levels.
    pub fn observe(
        &mut self,
        thread: usize,
        line: u64,
        l1_miss: bool,
        l2_miss: bool,
    ) -> PrefetchDecision {
        let mut decision = PrefetchDecision::default();
        let st = &mut self.threads[thread];

        // IP / stride prefetcher: detect a constant stride in the demand
        // stream and prefetch one stride ahead into L1.
        if self.config.ip_enabled {
            if let Some(last) = st.last_line {
                let stride = line as i64 - last as i64;
                if stride != 0 && stride == st.stride {
                    st.stride_confidence = st.stride_confidence.saturating_add(1);
                } else {
                    st.stride = stride;
                    st.stride_confidence = 0;
                }
                if st.stride_confidence >= 2 {
                    let next = line as i64 + st.stride;
                    if next >= 0 {
                        decision.push_l1(next as u64);
                    }
                }
            }
        }
        st.last_line = Some(line);

        // DCU streamer: two successive ascending L1 misses trigger a
        // next-line prefetch into L1.
        if self.config.dcu_enabled && l1_miss {
            if st.last_l1_miss_line == Some(line.wrapping_sub(1)) {
                decision.push_l1(line + 1);
            }
            st.last_l1_miss_line = Some(line);
        }

        // L2 hardware streamer: successive ascending L2 misses trigger a
        // next-line prefetch into L2 (streaming ahead of the demand stream).
        if self.config.hardware_enabled && l2_miss {
            if st.last_l2_miss_line == Some(line.wrapping_sub(1)) {
                decision.push_l2(line + 1);
                decision.push_l2(line + 2);
            }
            st.last_l2_miss_line = Some(line);
        }

        // Adjacent cache line prefetcher: every L2 fill also fetches the
        // buddy line completing the naturally aligned 128-byte pair.
        if self.config.adjacent_line_enabled && l2_miss {
            decision.push_l2(line ^ 1);
        }

        // Deduplicate, sort, and drop the demand line itself (it is never a
        // prefetch target).
        decision.normalize(line);
        decision
    }

    /// Fold any number (≥ 1) of repeated demand accesses to `line` — each an
    /// L1 hit immediately following an access to the same line — into one
    /// state update.
    ///
    /// This is the batched-path equivalent of calling
    /// `observe(thread, line, false, false)` repeatedly: the zero stride
    /// resets the IP detector (once is the fixed point), the hit-path
    /// detectors (DCU, hardware streamer, adjacent line) see no miss and
    /// stay untouched, and no prefetch is ever issued for the line itself.
    pub fn observe_repeats(&mut self, thread: usize, line: u64) {
        let st = &mut self.threads[thread];
        if self.config.ip_enabled {
            st.stride = 0;
            st.stride_confidence = 0;
        }
        st.last_line = Some(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_engine_never_prefetches() {
        let mut e = PrefetchEngine::new(PrefetchConfig::all_disabled(), 1);
        for line in 0..64 {
            assert!(e.observe(0, line, true, true).is_empty());
        }
    }

    #[test]
    fn adjacent_line_prefetches_the_buddy() {
        let cfg = PrefetchConfig { adjacent_line_enabled: true, ..PrefetchConfig::all_disabled() };
        let mut e = PrefetchEngine::new(cfg, 1);
        let d = e.observe(0, 10, true, true);
        assert_eq!(d.l2_lines(), &[11], "line 10's buddy in the 128-byte pair is line 11");
        let d = e.observe(0, 11, true, true);
        assert_eq!(d.l2_lines(), &[10], "line 11's buddy is line 10");
    }

    #[test]
    fn adjacent_line_buddy_of_odd_line_is_the_even_one() {
        let cfg = PrefetchConfig { adjacent_line_enabled: true, ..PrefetchConfig::all_disabled() };
        let mut e = PrefetchEngine::new(cfg, 1);
        let d = e.observe(0, 7, false, true);
        assert_eq!(d.l2_lines(), &[6]);
    }

    #[test]
    fn dcu_streamer_needs_two_sequential_misses() {
        let cfg = PrefetchConfig { dcu_enabled: true, ..PrefetchConfig::all_disabled() };
        let mut e = PrefetchEngine::new(cfg, 1);
        assert!(e.observe(0, 100, true, false).is_empty());
        let d = e.observe(0, 101, true, false);
        assert_eq!(d.l1_lines(), &[102]);
    }

    #[test]
    fn hardware_streamer_runs_ahead_in_l2() {
        let cfg = PrefetchConfig { hardware_enabled: true, ..PrefetchConfig::all_disabled() };
        let mut e = PrefetchEngine::new(cfg, 1);
        e.observe(0, 200, true, true);
        let d = e.observe(0, 201, true, true);
        assert_eq!(d.l2_lines(), &[202, 203]);
    }

    #[test]
    fn ip_prefetcher_detects_constant_strides() {
        let cfg = PrefetchConfig { ip_enabled: true, ..PrefetchConfig::all_disabled() };
        let mut e = PrefetchEngine::new(cfg, 1);
        // Stride of 3 lines: 0, 3, 6, 9 -> after confidence builds, prefetch 12.
        assert!(e.observe(0, 0, false, false).is_empty());
        assert!(e.observe(0, 3, false, false).is_empty());
        assert!(e.observe(0, 6, false, false).is_empty());
        let d = e.observe(0, 9, false, false);
        assert_eq!(d.l1_lines(), &[12]);
    }

    #[test]
    fn per_thread_state_is_independent() {
        let cfg = PrefetchConfig { dcu_enabled: true, ..PrefetchConfig::all_disabled() };
        let mut e = PrefetchEngine::new(cfg, 2);
        e.observe(0, 100, true, false);
        // Thread 1's first miss at 101 must not look sequential with thread 0's 100.
        assert!(e.observe(1, 101, true, false).is_empty());
    }

    /// Single-thread 3-level LRU hierarchy with only the adjacent-line
    /// prefetcher toggleable, shared by the hierarchy-level prefetch tests.
    fn adjacent_line_hierarchy(adjacent: bool) -> crate::config::HierarchyConfig {
        use crate::config::{CacheLevelConfig, HierarchyConfig, WritePolicy};
        use crate::memory::NumaPolicy;
        use crate::replacement::ReplacementPolicy;

        let level = |level, sets, ways| CacheLevelConfig {
            level,
            sets,
            ways,
            line_size: 64,
            inclusive: level == 3,
            shared_by_threads: 1,
            write_policy: WritePolicy::WriteBackAllocate,
            replacement: ReplacementPolicy::Lru,
        };
        HierarchyConfig {
            levels: vec![level(1, 16, 2), level(2, 64, 4), level(3, 256, 8)],
            num_threads: 1,
            thread_socket: vec![0],
            thread_core: vec![0],
            num_sockets: 1,
            prefetch: PrefetchConfig {
                adjacent_line_enabled: adjacent,
                ..PrefetchConfig::all_disabled()
            },
            numa_policy: NumaPolicy::interleave(4096),
            memory_line_size: 64,
        }
    }

    #[test]
    fn adjacent_line_never_decreases_demand_hits_on_a_sequential_stream() {
        use crate::hierarchy::NodeCacheSystem;
        use crate::Access;

        let demand_hits = |adjacent: bool| {
            let mut sys = NodeCacheSystem::new(adjacent_line_hierarchy(adjacent));
            // Two passes over a sequential stream that exceeds L1 but fits
            // lower levels; pass two harvests whatever the buddy fetches of
            // pass one left in the caches.
            for _pass in 0..2 {
                for line in 0..512u64 {
                    sys.access(0, Access::load(line * 64));
                }
            }
            let stats = sys.stats();
            stats.levels.iter().map(|level| level.total().hits).sum::<u64>()
        };

        let without = demand_hits(false);
        let with = demand_hits(true);
        assert!(with >= without, "adjacent-line prefetch lowered demand hits: {with} < {without}");
    }

    #[test]
    fn adjacent_line_issues_buddy_fills_on_l2_misses() {
        use crate::hierarchy::NodeCacheSystem;
        use crate::Access;

        let mut sys = NodeCacheSystem::new(adjacent_line_hierarchy(true));
        for line in 0..64u64 {
            sys.access(0, Access::load(line * 64));
        }
        let total: u64 = sys.stats().levels.iter().map(|l| l.total().prefetch_fills).sum();
        assert!(total > 0, "a sequential L2 miss stream must trigger buddy fills");
    }

    #[test]
    fn random_pattern_triggers_no_stream_prefetches() {
        let mut e = PrefetchEngine::new(PrefetchConfig::all_enabled(), 1);
        // Widely scattered lines: only the adjacent-line unit may fire (on L2
        // misses), never the streamers.
        let lines = [5u64, 900, 77, 12345, 3, 40000];
        for &l in &lines {
            let d = e.observe(0, l, true, true);
            assert!(d.l1_lines().is_empty());
            assert!(d.l2_lines().iter().all(|&pl| pl == l ^ 1));
        }
    }
}

//! Slow reference implementation of the hierarchy walk, kept for
//! equivalence testing of the optimized hot path.
//!
//! [`ReferenceCacheSystem`] reproduces the pre-directory simulator: every
//! store broadcasts its invalidation to all O(levels × instances) cache
//! instances, inclusive evictions rebuild their sharer lists on the fly, and
//! there is no batched entry point — exactly the work the presence
//! directory, the precomputed back-invalidation maps and
//! [`crate::NodeCacheSystem::access_run`] optimize away. Its counters are
//! the ground truth: the equivalence property test replays randomized
//! multi-thread access streams through both implementations and requires
//! bit-identical [`NodeStats`].
//!
//! The one intentional semantic change of the optimized path is shared: a
//! victim of an inclusive eviction reaches memory at most once even when
//! both the outer copy and an inner copy are dirty.
//!
//! Only compiled for tests (or under the `reference` cargo feature, which
//! the workspace root enables for its integration test suite).

use crate::access::{Access, AccessKind, HitLevel};
use crate::cache::{Eviction, SetAssocCache};
use crate::config::HierarchyConfig;
use crate::memory::MemoryController;
use crate::prefetch::PrefetchEngine;
use crate::stats::{LevelStats, NodeStats};

/// The unoptimized node-level cache system (see module docs).
pub struct ReferenceCacheSystem {
    config: HierarchyConfig,
    levels: Vec<Vec<SetAssocCache>>,
    thread_instance: Vec<Vec<usize>>,
    memory: Vec<MemoryController>,
    prefetch: PrefetchEngine,
    thread_loads: Vec<u64>,
    thread_stores: Vec<u64>,
}

impl ReferenceCacheSystem {
    /// Build the hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let mut levels = Vec::new();
        let mut thread_instance = Vec::new();
        for level in &config.levels {
            let n = config.instances_of(level);
            levels.push(
                (0..n)
                    .map(|_| {
                        SetAssocCache::new(
                            level.sets,
                            level.ways,
                            level.line_size,
                            level.replacement,
                        )
                    })
                    .collect::<Vec<_>>(),
            );
            thread_instance.push(
                (0..config.num_threads)
                    .map(|t| config.instance_for_thread(level, t))
                    .collect::<Vec<_>>(),
            );
        }
        let memory = (0..config.num_sockets).map(|_| MemoryController::default()).collect();
        let prefetch = PrefetchEngine::new(config.prefetch, config.num_threads);
        let thread_loads = vec![0; config.num_threads];
        let thread_stores = vec![0; config.num_threads];
        ReferenceCacheSystem {
            config,
            levels,
            thread_instance,
            memory,
            prefetch,
            thread_loads,
            thread_stores,
        }
    }

    fn l1_line_size(&self) -> u64 {
        self.config.levels.first().map(|l| l.line_size).unwrap_or(64)
    }

    /// Issue one memory access on behalf of hardware thread `thread`.
    pub fn access(&mut self, thread: usize, access: Access) -> HitLevel {
        assert!(thread < self.config.num_threads, "no such hardware thread {thread}");
        let socket = self.config.thread_socket[thread];

        if access.kind == AccessKind::NonTemporalStore {
            self.thread_stores[thread] += 1;
            let domain =
                self.config.numa_policy.domain_of(access.address) % self.config.num_sockets;
            self.memory[domain as usize].write(access.size as u64, socket, domain, true);
            return HitLevel::Streaming;
        }

        let (first, last) = access.line_range(self.l1_line_size());
        let is_write = access.kind.is_write();
        if access.kind.is_demand() {
            if is_write {
                self.thread_stores[thread] += 1;
            } else {
                self.thread_loads[thread] += 1;
            }
        }

        let mut worst = HitLevel::L1;
        for line in first..=last {
            let level = self.demand_line_access(thread, socket, access.address, line, is_write);
            if is_write {
                self.invalidate_other_copies(thread, line);
            }
            if level > worst {
                worst = level;
            }
        }
        worst
    }

    /// The broadcast coherence walk: probe every instance off the thread's
    /// own path, whether or not it holds the line.
    fn invalidate_other_copies(&mut self, thread: usize, line: u64) {
        for l in 0..self.levels.len() {
            let own = self.thread_instance[l][thread];
            for inst in 0..self.levels[l].len() {
                if inst != own {
                    self.levels[l][inst].invalidate(line);
                }
            }
        }
    }

    fn demand_line_access(
        &mut self,
        thread: usize,
        socket: u32,
        byte_address: u64,
        line: u64,
        is_write: bool,
    ) -> HitLevel {
        let num_levels = self.levels.len();
        let mut hit_level: Option<usize> = None;

        for l in 0..num_levels {
            let inst = self.thread_instance[l][thread];
            let cache = &mut self.levels[l][inst];
            cache.stats.accesses += 1;
            if is_write {
                cache.stats.stores += 1;
            } else {
                cache.stats.loads += 1;
            }
            if cache.lookup(line, is_write && l == 0) {
                cache.stats.hits += 1;
                hit_level = Some(l);
                break;
            } else {
                cache.stats.misses += 1;
            }
        }

        let l1_missed = !matches!(hit_level, Some(0));
        let l2_missed = hit_level.map_or(true, |l| l > 1);

        if hit_level.is_none() {
            let domain = self.config.numa_policy.domain_of(byte_address) % self.config.num_sockets;
            self.memory[domain as usize].read(self.config.memory_line_size, socket, domain);
        }

        let fill_from = hit_level.unwrap_or(num_levels);
        for l in (0..fill_from).rev() {
            let dirty = is_write && l == 0;
            self.fill_line(thread, socket, l, line, dirty);
        }

        let decision = self.prefetch.observe(thread, line, l1_missed, l2_missed);
        for &pline in decision.l1_lines() {
            self.prefetch_line(thread, socket, 0, pline);
        }
        for &pline in decision.l2_lines() {
            if num_levels > 1 {
                self.prefetch_line(thread, socket, 1, pline);
            }
        }

        match hit_level {
            Some(0) => HitLevel::L1,
            Some(1) => HitLevel::L2,
            Some(_) => HitLevel::L3,
            None => HitLevel::Memory,
        }
    }

    fn fill_line(&mut self, thread: usize, socket: u32, l: usize, line: u64, dirty: bool) {
        let inst = self.thread_instance[l][thread];
        let eviction = self.levels[l][inst].fill(line, dirty);
        self.handle_eviction(thread, socket, l, eviction);
    }

    /// Eviction handling with the per-eviction sharer-list rebuild the
    /// optimized path precomputes away (two `Vec` allocations per inclusive
    /// eviction).
    fn handle_eviction(&mut self, thread: usize, socket: u32, l: usize, eviction: Eviction) {
        let (victim, dirty) = match eviction {
            Eviction::None => return,
            Eviction::Clean(v) => (v, false),
            Eviction::Dirty(v) => (v, true),
        };

        let mut written_back = false;
        if dirty {
            self.writeback(thread, socket, l + 1, victim);
            written_back = true;
        }

        if self.config.levels[l].inclusive && l > 0 {
            let this_inst = self.thread_instance[l][thread];
            let sharers: Vec<usize> = (0..self.config.num_threads)
                .filter(|&t| self.thread_instance[l][t] == this_inst)
                .collect();
            for inner in 0..l {
                let mut seen = Vec::new();
                for &t in &sharers {
                    let inner_inst = self.thread_instance[inner][t];
                    if seen.contains(&inner_inst) {
                        continue;
                    }
                    seen.push(inner_inst);
                    if let Some(was_dirty) = self.levels[inner][inner_inst].invalidate(victim) {
                        if was_dirty && !written_back {
                            self.writeback(thread, socket, l + 1, victim);
                            written_back = true;
                        }
                    }
                }
            }
        }
    }

    fn writeback(&mut self, thread: usize, socket: u32, l: usize, line: u64) {
        if l >= self.levels.len() {
            let byte_address = line * self.config.memory_line_size;
            let domain = self.config.numa_policy.domain_of(byte_address) % self.config.num_sockets;
            self.memory[domain as usize].write(self.config.memory_line_size, socket, domain, false);
            return;
        }
        let inst = self.thread_instance[l][thread];
        if self.levels[l][inst].mark_dirty(line) {
            return;
        }
        let eviction = self.levels[l][inst].fill(line, true);
        self.handle_eviction(thread, socket, l, eviction);
    }

    fn prefetch_line(&mut self, thread: usize, socket: u32, l: usize, line: u64) {
        let inst = self.thread_instance[l][thread];
        self.levels[l][inst].stats.prefetch_requests += 1;
        if self.levels[l][inst].contains(line) {
            return;
        }
        let mut found_at = None;
        for outer in (l + 1)..self.levels.len() {
            let outer_inst = self.thread_instance[outer][thread];
            if self.levels[outer][outer_inst].contains(line) {
                found_at = Some(outer);
                break;
            }
        }
        if found_at.is_none() {
            let byte_address = line * self.config.memory_line_size;
            let domain = self.config.numa_policy.domain_of(byte_address) % self.config.num_sockets;
            self.memory[domain as usize].read(self.config.memory_line_size, socket, domain);
        }
        let fill_from = found_at.unwrap_or(self.levels.len());
        for level in (l..fill_from).rev() {
            let level_inst = self.thread_instance[level][thread];
            let eviction = {
                let cache = &mut self.levels[level][level_inst];
                let ev = cache.fill(line, false);
                if level == l {
                    cache.stats.prefetch_fills += 1;
                }
                ev
            };
            self.handle_eviction(thread, socket, level, eviction);
        }
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            levels: self
                .config
                .levels
                .iter()
                .zip(&self.levels)
                .map(|(cfg, instances)| LevelStats {
                    level: cfg.level,
                    instances: instances.iter().map(|c| c.stats).collect(),
                })
                .collect(),
            memory: self.memory.iter().map(|m| m.stats).collect(),
            thread_loads: self.thread_loads.clone(),
            thread_stores: self.thread_stores.clone(),
        }
    }
}

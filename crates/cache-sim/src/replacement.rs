//! Replacement policies for the set-associative cache model.
//!
//! Real Intel/AMD caches use true LRU for small associativities and
//! pseudo-LRU (tree or NRU approximations) for larger ones. For the traffic
//! numbers this suite reproduces, the exact policy only matters at the
//! margin; both true LRU and a round-robin/FIFO policy are provided, and
//! tests pin down the eviction order they produce.

/// Replacement policy selection for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    Lru,
    /// First-in first-out (round-robin victim selection).
    Fifo,
}

/// Per-set replacement state.
///
/// Stores an age value per way; the semantics of the value depend on the
/// policy (LRU: last-touch stamp, FIFO: fill stamp).
#[derive(Debug, Clone)]
pub struct ReplacementState {
    policy: ReplacementPolicy,
    stamps: Vec<u64>,
    tick: u64,
}

impl ReplacementState {
    /// State for one set with `ways` ways.
    pub fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        ReplacementState { policy, stamps: vec![0; ways], tick: 0 }
    }

    /// Record a fill into `way`.
    pub fn on_fill(&mut self, way: usize) {
        self.tick += 1;
        self.stamps[way] = self.tick;
    }

    /// Record a hit on `way`.
    pub fn on_hit(&mut self, way: usize) {
        if self.policy == ReplacementPolicy::Lru {
            self.tick += 1;
            self.stamps[way] = self.tick;
        }
        // FIFO ignores hits: age is fill order only.
    }

    /// Choose a victim among the ways for which `valid` returns true being
    /// preferred *not* to be chosen, i.e. invalid ways are used first.
    pub fn choose_victim(&self, valid: impl Fn(usize) -> bool) -> usize {
        // Prefer an invalid way.
        for way in 0..self.stamps.len() {
            if !valid(way) {
                return way;
            }
        }
        // Otherwise evict the oldest stamp.
        self.stamps
            .iter()
            .enumerate()
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(way, _)| way)
            .expect("cache sets have at least one way")
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_ways_are_used_before_eviction() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4);
        st.on_fill(0);
        st.on_fill(1);
        // Ways 2 and 3 still invalid.
        let victim = st.choose_victim(|w| w < 2);
        assert!(victim == 2 || victim == 3);
    }

    #[test]
    fn lru_evicts_the_least_recently_touched_way() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4);
        for w in 0..4 {
            st.on_fill(w);
        }
        // Touch 0 again; way 1 becomes the LRU victim.
        st.on_hit(0);
        assert_eq!(st.choose_victim(|_| true), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 4);
        for w in 0..4 {
            st.on_fill(w);
        }
        st.on_hit(0);
        st.on_hit(0);
        assert_eq!(st.choose_victim(|_| true), 0, "FIFO still evicts the oldest fill");
    }

    #[test]
    fn lru_eviction_order_is_exact_on_a_tiny_set() {
        // 3-way set, fills into ways 0, 1, 2, then a precise touch sequence;
        // the victim must always be the unique least-recently-touched way.
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 3);
        st.on_fill(0);
        st.on_fill(1);
        st.on_fill(2);
        assert_eq!(st.choose_victim(|_| true), 0, "oldest fill is the first victim");
        st.on_hit(0); // order now: 1, 2, 0
        assert_eq!(st.choose_victim(|_| true), 1);
        st.on_hit(1); // order now: 2, 0, 1
        assert_eq!(st.choose_victim(|_| true), 2);
        st.on_fill(2); // replacing way 2 refreshes it: order 0, 1, 2
        assert_eq!(st.choose_victim(|_| true), 0);
        // A full round of hits in reverse order inverts the ranking.
        st.on_hit(2);
        st.on_hit(1);
        st.on_hit(0); // order now: 2, 1, 0
        assert_eq!(st.choose_victim(|_| true), 2);
    }

    #[test]
    fn lru_and_fifo_diverge_after_a_hit() {
        // Identical fill sequences; only LRU lets the hit rescue way 0.
        let mut lru = ReplacementState::new(ReplacementPolicy::Lru, 2);
        let mut fifo = ReplacementState::new(ReplacementPolicy::Fifo, 2);
        for st in [&mut lru, &mut fifo] {
            st.on_fill(0);
            st.on_fill(1);
            st.on_hit(0);
        }
        assert_eq!(lru.choose_victim(|_| true), 1);
        assert_eq!(fifo.choose_victim(|_| true), 0);
    }

    #[test]
    fn repeated_fills_cycle_through_ways_under_fifo() {
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 2);
        st.on_fill(0);
        st.on_fill(1);
        assert_eq!(st.choose_victim(|_| true), 0);
        st.on_fill(0);
        assert_eq!(st.choose_victim(|_| true), 1);
    }
}

//! Replacement policies for the set-associative cache model.
//!
//! Real Intel/AMD caches use true LRU for small associativities and
//! pseudo-LRU (tree or NRU approximations) for larger ones. For the traffic
//! numbers this suite reproduces, the exact policy only matters at the
//! margin; both true LRU and a round-robin/FIFO policy are provided, and
//! tests pin down the eviction order they produce.

/// Replacement policy selection for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    Lru,
    /// First-in first-out (round-robin victim selection).
    Fifo,
}

/// Replacement state for *all* sets of one cache, stored contiguously.
///
/// Stores an age value per way (`stamps[set * ways + way]`); the semantics
/// of the value depend on the policy (LRU: last-touch stamp, FIFO: fill
/// stamp). Each set advances its own tick counter, so the behaviour per set
/// is identical to an independent per-set state — but the storage is two
/// flat arrays instead of one heap allocation per set, which keeps the
/// simulator's per-lookup work inside a single cache-friendly slab.
#[derive(Debug, Clone)]
pub struct FlatReplacement {
    policy: ReplacementPolicy,
    ways: usize,
    /// `stamps[set * ways + way]` — age stamp of one way.
    stamps: Vec<u64>,
    /// `ticks[set]` — per-set monotone clock.
    ticks: Vec<u64>,
}

impl FlatReplacement {
    /// State for `sets` sets of `ways` ways each.
    pub fn new(policy: ReplacementPolicy, sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "replacement state needs at least one set and way");
        FlatReplacement { policy, ways, stamps: vec![0; sets * ways], ticks: vec![0; sets] }
    }

    /// Record a fill into `way` of `set`.
    pub fn on_fill(&mut self, set: usize, way: usize) {
        self.ticks[set] += 1;
        self.stamps[set * self.ways + way] = self.ticks[set];
    }

    /// Record a hit on `way` of `set`.
    pub fn on_hit(&mut self, set: usize, way: usize) {
        if self.policy == ReplacementPolicy::Lru {
            self.ticks[set] += 1;
            self.stamps[set * self.ways + way] = self.ticks[set];
        }
        // FIFO ignores hits: age is fill order only.
    }

    /// Choose a victim among the ways of `set`; ways for which `valid`
    /// returns false (invalid ways) are used first.
    pub fn choose_victim(&self, set: usize, valid: impl Fn(usize) -> bool) -> usize {
        // Prefer an invalid way.
        for way in 0..self.ways {
            if !valid(way) {
                return way;
            }
        }
        self.oldest_way(set)
    }

    /// The way of `set` with the oldest stamp (ties broken toward way 0),
    /// for callers that already know every way is valid.
    pub fn oldest_way(&self, set: usize) -> usize {
        let base = set * self.ways;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            let stamp = self.stamps[base + way];
            if stamp < oldest {
                oldest = stamp;
                victim = way;
            }
        }
        victim
    }

    /// Whether a hit on `way` of `set` would leave the eviction order
    /// unchanged: FIFO ignores hits, and under LRU a touch of the way that
    /// already carries the set's newest stamp only inflates the tick.
    pub fn hit_is_order_neutral(&self, set: usize, way: usize) -> bool {
        self.policy == ReplacementPolicy::Fifo
            || self.stamps[set * self.ways + way] == self.ticks[set]
    }

    /// Number of ways tracked per set.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-set state mirroring the old per-set API, for eviction-order
    /// tests.
    fn one_set(policy: ReplacementPolicy, ways: usize) -> FlatReplacement {
        FlatReplacement::new(policy, 1, ways)
    }

    #[test]
    fn invalid_ways_are_used_before_eviction() {
        let mut st = one_set(ReplacementPolicy::Lru, 4);
        st.on_fill(0, 0);
        st.on_fill(0, 1);
        // Ways 2 and 3 still invalid.
        let victim = st.choose_victim(0, |w| w < 2);
        assert!(victim == 2 || victim == 3);
    }

    #[test]
    fn lru_evicts_the_least_recently_touched_way() {
        let mut st = one_set(ReplacementPolicy::Lru, 4);
        for w in 0..4 {
            st.on_fill(0, w);
        }
        // Touch 0 again; way 1 becomes the LRU victim.
        st.on_hit(0, 0);
        assert_eq!(st.choose_victim(0, |_| true), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut st = one_set(ReplacementPolicy::Fifo, 4);
        for w in 0..4 {
            st.on_fill(0, w);
        }
        st.on_hit(0, 0);
        st.on_hit(0, 0);
        assert_eq!(st.choose_victim(0, |_| true), 0, "FIFO still evicts the oldest fill");
    }

    #[test]
    fn lru_eviction_order_is_exact_on_a_tiny_set() {
        // 3-way set, fills into ways 0, 1, 2, then a precise touch sequence;
        // the victim must always be the unique least-recently-touched way.
        let mut st = one_set(ReplacementPolicy::Lru, 3);
        st.on_fill(0, 0);
        st.on_fill(0, 1);
        st.on_fill(0, 2);
        assert_eq!(st.choose_victim(0, |_| true), 0, "oldest fill is the first victim");
        st.on_hit(0, 0); // order now: 1, 2, 0
        assert_eq!(st.choose_victim(0, |_| true), 1);
        st.on_hit(0, 1); // order now: 2, 0, 1
        assert_eq!(st.choose_victim(0, |_| true), 2);
        st.on_fill(0, 2); // replacing way 2 refreshes it: order 0, 1, 2
        assert_eq!(st.choose_victim(0, |_| true), 0);
        // A full round of hits in reverse order inverts the ranking.
        st.on_hit(0, 2);
        st.on_hit(0, 1);
        st.on_hit(0, 0); // order now: 2, 1, 0
        assert_eq!(st.choose_victim(0, |_| true), 2);
    }

    #[test]
    fn lru_and_fifo_diverge_after_a_hit() {
        // Identical fill sequences; only LRU lets the hit rescue way 0.
        let mut lru = one_set(ReplacementPolicy::Lru, 2);
        let mut fifo = one_set(ReplacementPolicy::Fifo, 2);
        for st in [&mut lru, &mut fifo] {
            st.on_fill(0, 0);
            st.on_fill(0, 1);
            st.on_hit(0, 0);
        }
        assert_eq!(lru.choose_victim(0, |_| true), 1);
        assert_eq!(fifo.choose_victim(0, |_| true), 0);
    }

    #[test]
    fn repeated_fills_cycle_through_ways_under_fifo() {
        let mut st = one_set(ReplacementPolicy::Fifo, 2);
        st.on_fill(0, 0);
        st.on_fill(0, 1);
        assert_eq!(st.choose_victim(0, |_| true), 0);
        st.on_fill(0, 0);
        assert_eq!(st.choose_victim(0, |_| true), 1);
    }

    #[test]
    fn sets_age_independently_in_the_flat_layout() {
        // Heavy traffic in set 0 must not perturb set 1's eviction order.
        let mut st = FlatReplacement::new(ReplacementPolicy::Lru, 2, 2);
        st.on_fill(1, 0);
        st.on_fill(1, 1);
        for _ in 0..100 {
            st.on_fill(0, 0);
            st.on_hit(0, 1);
        }
        assert_eq!(st.choose_victim(1, |_| true), 0, "set 1 order is untouched");
        st.on_hit(1, 0);
        assert_eq!(st.choose_victim(1, |_| true), 1);
    }
}

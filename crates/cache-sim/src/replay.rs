//! Epoch-batched replay queues: the access-stream format of the parallel
//! sharded simulator.
//!
//! A [`ReplayQueue`] is a sequence of *epochs*; each epoch is an ordered
//! list of `(thread, RunOp)` batched access runs. The semantics of a queue
//! are defined by the sequential drain [`NodeCacheSystem::replay`]: within
//! an epoch the ops execute **in push order**, and epochs execute one after
//! another. The sharded engine ([`crate::shard::ShardedCacheSystem`]) is
//! required to produce bit-identical statistics to that sequential drain
//! for every queue — epochs whose shards provably do not interact run in
//! parallel, everything else falls back to the sequential order.
//!
//! Workload drivers emit one epoch per natural synchronisation point
//! (a Jacobi time step, a pass over a working set, a producer/consumer
//! round): an epoch boundary is a point where reordering *between threads
//! of different sockets* is semantically acceptable, because the driver
//! placed no intra-epoch cross-socket data dependence.

use crate::access::{AccessKind, HitLevel};
use crate::hierarchy::NodeCacheSystem;

/// One batched access run: `count` accesses of `size` bytes each at
/// `base`, `base + stride`, `base + 2*stride`, … issued with `kind` —
/// exactly the argument tuple of [`NodeCacheSystem::access_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOp {
    /// Byte address of the first element.
    pub base: u64,
    /// Byte stride between elements (may be negative, zero or sub-line).
    pub stride: i64,
    /// Number of elements.
    pub count: u64,
    /// Bytes per element.
    pub size: u32,
    /// Access kind of every element.
    pub kind: AccessKind,
}

impl RunOp {
    /// A whole-line load run (the most common op of the stencil drivers).
    pub fn load_lines(base: u64, lines: u64) -> Self {
        RunOp { base, stride: 64, count: lines, size: 64, kind: AccessKind::Load }
    }

    /// A whole-line store run.
    pub fn store_lines(base: u64, lines: u64) -> Self {
        RunOp { base, stride: 64, count: lines, size: 64, kind: AccessKind::Store }
    }

    /// The inclusive byte interval `[lo, hi]` touched by the run, or `None`
    /// when the run is empty or its affine address sequence leaves
    /// `[0, 2^64)` (the engine then wraps element addresses; such ops are
    /// treated as unanalyzable by the conflict analysis). Element addresses
    /// are affine in the element index, so the extremes sit at the first
    /// and last element.
    pub fn byte_extent(&self) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let size = self.size.max(1) as i128;
        let first = self.base as i128;
        let last = first + (self.count as i128 - 1) * self.stride as i128;
        let (lo, hi) = if first <= last { (first, last) } else { (last, first) };
        let hi = hi + size - 1;
        if lo < 0 || hi > u64::MAX as i128 {
            return None;
        }
        Some((lo as u64, hi as u64))
    }

    /// The inclusive cache-line interval of the run (line size a power of
    /// two, given as its log2).
    pub fn line_hull(&self, line_shift: u32) -> Option<(u64, u64)> {
        self.byte_extent().map(|(lo, hi)| (lo >> line_shift, hi >> line_shift))
    }

    /// Line of the first element (only meaningful when `count > 0`).
    pub fn first_line(&self, line_shift: u32) -> u64 {
        self.base >> line_shift
    }

    /// The last cache line the engine *observes* while replaying the run:
    /// the last line of the last element (element order, not address
    /// order). Feeds the cross-op IP-prefetcher carry analysis.
    pub fn last_observed_line(&self, line_shift: u32) -> Option<u64> {
        let (_, hi_byte) = self.byte_extent()?;
        let last_elem = self.base as i128 + (self.count as i128 - 1) * self.stride as i128;
        let end = (last_elem + self.size.max(1) as i128 - 1).min(hi_byte as i128);
        Some((end as u64) >> line_shift)
    }

    /// Sound bound (in lines) on how far the hardware prefetchers can reach
    /// past the run's line hull while it replays: the streamer/DCU/adjacent
    /// prefetchers reach at most 2 lines, the IP-stride prefetcher at most
    /// one intra-run stride (`|stride|` in lines, plus one for straddling
    /// elements). The cross-run IP carry target is handled separately as a
    /// singleton by the conflict analysis.
    pub fn prefetch_pad_lines(&self, line_shift: u32) -> u64 {
        (self.stride.unsigned_abs() >> line_shift) + 2
    }

    /// Append every cache line touched by the run (in element order, with
    /// the engine's wrapping address arithmetic) to `out`, skipping
    /// immediately repeated lines. Used by the serial fallback to apply
    /// cross-shard store invalidations at exact line granularity.
    pub fn collect_lines(&self, line_size: u64, out: &mut Vec<u64>) {
        let mut prev = None;
        for i in 0..self.count {
            let address = self.base.wrapping_add((i as i64).wrapping_mul(self.stride) as u64);
            let first = address / line_size;
            let last = (address + self.size.max(1) as u64 - 1) / line_size;
            for line in first..=last {
                if prev != Some(line) {
                    out.push(line);
                    prev = Some(line);
                }
            }
        }
    }
}

/// An epoch-batched, per-thread run queue (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ReplayQueue {
    num_threads: usize,
    epochs: Vec<Vec<(usize, RunOp)>>,
}

impl ReplayQueue {
    /// An empty queue for a node with `num_threads` hardware threads.
    pub fn new(num_threads: usize) -> Self {
        ReplayQueue { num_threads, epochs: Vec::new() }
    }

    /// Number of hardware threads the queue addresses.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Start a new epoch. A no-op when the current epoch is still empty, so
    /// drivers can call it unconditionally at every synchronisation point.
    pub fn begin_epoch(&mut self) {
        if self.epochs.last().map_or(true, |e| !e.is_empty()) {
            self.epochs.push(Vec::new());
        }
    }

    /// Append one run to the current epoch (opening the first epoch if none
    /// exists yet).
    pub fn push(&mut self, thread: usize, op: RunOp) {
        assert!(thread < self.num_threads, "no such hardware thread {thread}");
        if self.epochs.is_empty() {
            self.epochs.push(Vec::new());
        }
        self.epochs.last_mut().expect("epoch present").push((thread, op));
    }

    /// The epochs, each an ordered `(thread, op)` list.
    pub fn epochs(&self) -> &[Vec<(usize, RunOp)>] {
        &self.epochs
    }

    /// Number of (possibly empty) epochs.
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Total element accesses across all epochs.
    pub fn total_accesses(&self) -> u64 {
        self.epochs.iter().flatten().map(|(_, op)| op.count).sum()
    }
}

impl NodeCacheSystem {
    /// Sequentially drain a replay queue: epochs in order, ops of each epoch
    /// in push order — the ground-truth semantics the sharded engine must
    /// reproduce bit-identically. Returns the worst hit level of the run.
    pub fn replay(&mut self, queue: &ReplayQueue) -> HitLevel {
        assert_eq!(
            queue.num_threads(),
            self.config().num_threads,
            "queue thread count must match the hierarchy"
        );
        let mut worst = HitLevel::L1;
        for epoch in queue.epochs() {
            for &(thread, op) in epoch {
                let level = self.access_run(thread, op.base, op.stride, op.count, op.size, op.kind);
                if level > worst {
                    worst = level;
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_extent_covers_both_stride_directions() {
        let fwd = RunOp { base: 1000, stride: 64, count: 4, size: 8, kind: AccessKind::Load };
        assert_eq!(fwd.byte_extent(), Some((1000, 1000 + 3 * 64 + 7)));
        let back = RunOp { base: 1000, stride: -64, count: 4, size: 8, kind: AccessKind::Load };
        assert_eq!(back.byte_extent(), Some((1000 - 3 * 64, 1007)));
        let empty = RunOp { base: 0, stride: 64, count: 0, size: 8, kind: AccessKind::Load };
        assert_eq!(empty.byte_extent(), None);
    }

    #[test]
    fn wrapping_runs_are_flagged_unanalyzable() {
        let op = RunOp { base: 64, stride: -4096, count: 10, size: 8, kind: AccessKind::Load };
        assert_eq!(op.byte_extent(), None, "the run leaves [0, 2^64)");
        let op =
            RunOp { base: u64::MAX - 64, stride: 64, count: 4, size: 8, kind: AccessKind::Load };
        assert_eq!(op.byte_extent(), None);
    }

    #[test]
    fn last_observed_line_follows_element_order() {
        let back = RunOp { base: 10 * 64, stride: -64, count: 4, size: 8, kind: AccessKind::Load };
        assert_eq!(back.last_observed_line(6), Some(7), "last element is the lowest address");
        let fwd = RunOp { base: 0, stride: 64, count: 4, size: 8, kind: AccessKind::Load };
        assert_eq!(fwd.last_observed_line(6), Some(3));
    }

    #[test]
    fn collect_lines_skips_immediate_repeats_and_expands_straddles() {
        let op = RunOp { base: 0, stride: 8, count: 16, size: 8, kind: AccessKind::Store };
        let mut lines = Vec::new();
        op.collect_lines(64, &mut lines);
        assert_eq!(lines, vec![0, 1], "sub-line stride repeats collapse");
        let op = RunOp { base: 32, stride: 64, count: 2, size: 64, kind: AccessKind::Store };
        let mut lines = Vec::new();
        op.collect_lines(64, &mut lines);
        assert_eq!(lines, vec![0, 1, 2], "straddling elements cover both lines");
    }

    #[test]
    fn begin_epoch_is_idempotent_on_an_empty_epoch() {
        let mut q = ReplayQueue::new(2);
        q.begin_epoch();
        q.begin_epoch();
        q.push(0, RunOp::load_lines(0, 4));
        q.begin_epoch();
        q.push(1, RunOp::store_lines(4096, 4));
        assert_eq!(q.num_epochs(), 2);
        assert_eq!(q.total_accesses(), 8);
    }
}

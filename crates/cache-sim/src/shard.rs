//! The parallel sharded cache simulator.
//!
//! [`ShardedCacheSystem`] splits a node by LLC/socket domain: each shard is
//! a full [`NodeCacheSystem`] restricted to one socket's threads and cache
//! instances (plus the node's complete set of memory controllers, whose
//! counters are pure commutative sums). Replay input is an epoch-batched
//! [`ReplayQueue`]; the contract is **bit identity** with the sequential
//! drain [`NodeCacheSystem::replay`] for every queue and every worker
//! count.
//!
//! # Why sharding is sound
//!
//! In this model a demand access walks only the issuing thread's own lookup
//! path and its socket-local memory controller classification — state of
//! other sockets never influences hit levels, fills, evictions or
//! prefetches. The only cross-socket effects are
//!
//! 1. a `Store` invalidating copies held by other sockets' instances, and
//! 2. memory-controller counters, which are per-domain `u64` additions and
//!    therefore order-free under merge.
//!
//! So an epoch whose stores provably touch no line that another shard
//! holds, touches, or may prefetch, can replay its shards concurrently with
//! a result identical to any serial order. Before each epoch an exact
//! pre-execution analysis checks this:
//!
//! * **store footprints**: the line hulls of every `Store` run per shard
//!   (non-temporal stores bypass the caches entirely and never invalidate);
//! * **touch footprints**: the line hulls of every cache-visible run,
//!   widened by a sound per-run prefetcher-reach pad plus the cross-run
//!   IP-stride carry target (tracked per thread across epochs and calls);
//! * **residency**: whether a store footprint overlaps any occupied
//!   presence-directory page of another shard.
//!
//! Epochs that pass run in parallel on a persistent worker pool (results
//! are collected by shard index, so scheduling cannot influence the merged
//! stats). Epochs that fail fall back to the exact sequential push order,
//! applying each store's cross-shard invalidations through
//! [`NodeCacheSystem::invalidate_external`] — still bit-identical, just
//! serial.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use likwid::trace;

use crate::access::{AccessKind, HitLevel};
use crate::config::HierarchyConfig;
use crate::hierarchy::NodeCacheSystem;
use crate::replay::{ReplayQueue, RunOp};
use crate::stats::{CacheStats, LevelStats, MemoryStats, NodeStats};

/// How a node's threads and cache instances map onto socket shards.
///
/// Shardability requires every cache instance's sharing group to live on
/// one socket, which the socket-major instance ranking of
/// [`HierarchyConfig::instance_for_thread`] reduces to one check: each
/// shard's thread count must be divisible by every level's
/// `shared_by_threads`. Then each shard's instances occupy a contiguous
/// range of global instance indices per level, and the merge is a scatter.
/// Configurations that fail the check (or have a single socket) run as one
/// shard — always correct, never parallel.
struct ShardPlan {
    /// Shard index → socket id (ascending).
    sockets: Vec<u32>,
    shard_of_thread: Vec<usize>,
    local_thread: Vec<usize>,
    /// Shard → local thread index → global thread id (in global rank order).
    global_threads: Vec<Vec<usize>>,
    /// Level → shard → first global instance index of that shard's range.
    instance_base: Vec<Vec<usize>>,
    /// The restricted per-shard hierarchy configurations.
    configs: Vec<HierarchyConfig>,
    /// log2 of the L1 line size; `None` disables the conflict analysis
    /// (single-shard plans only).
    line_shift: Option<u32>,
    line_size: u64,
}

impl ShardPlan {
    fn single(config: &HierarchyConfig) -> ShardPlan {
        let n = config.num_threads;
        let line_size = config.levels.first().map(|l| l.line_size).unwrap_or(64);
        ShardPlan {
            sockets: vec![config.thread_socket.first().copied().unwrap_or(0)],
            shard_of_thread: vec![0; n],
            local_thread: (0..n).collect(),
            global_threads: vec![(0..n).collect()],
            instance_base: config.levels.iter().map(|_| vec![0]).collect(),
            configs: vec![config.clone()],
            line_shift: line_size.is_power_of_two().then(|| line_size.trailing_zeros()),
            line_size,
        }
    }

    fn build(config: &HierarchyConfig) -> ShardPlan {
        let n = config.num_threads;
        if n == 0 || config.thread_socket.len() != n || config.thread_core.len() != n {
            return Self::single(config);
        }
        let line_size = config.levels.first().map(|l| l.line_size).unwrap_or(64);
        if !line_size.is_power_of_two() {
            return Self::single(config);
        }
        let mut sockets = config.thread_socket.clone();
        sockets.sort_unstable();
        sockets.dedup();
        if sockets.len() < 2 {
            return Self::single(config);
        }
        // Socket-major global thread order — the instance ranking order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&t| (config.thread_socket[t], config.thread_core[t], t));
        let mut global_threads: Vec<Vec<usize>> = sockets.iter().map(|_| Vec::new()).collect();
        for &t in &order {
            let shard = sockets.binary_search(&config.thread_socket[t]).expect("socket is listed");
            global_threads[shard].push(t);
        }
        for level in &config.levels {
            let shared = (level.shared_by_threads as usize).max(1);
            if global_threads.iter().any(|threads| threads.len() % shared != 0) {
                // A sharing group straddles sockets (e.g. an LLC shared by
                // the whole node): not shardable.
                return Self::single(config);
            }
        }
        let instance_base = config
            .levels
            .iter()
            .map(|level| {
                let shared = (level.shared_by_threads as usize).max(1);
                let mut base = 0;
                global_threads
                    .iter()
                    .map(|threads| {
                        let this = base;
                        base += threads.len() / shared;
                        this
                    })
                    .collect()
            })
            .collect();
        let mut shard_of_thread = vec![0; n];
        let mut local_thread = vec![0; n];
        for (shard, threads) in global_threads.iter().enumerate() {
            for (local, &t) in threads.iter().enumerate() {
                shard_of_thread[t] = shard;
                local_thread[t] = local;
            }
        }
        // Each shard keeps the *real* socket ids and the node's full socket
        // count, so local/remote memory classification and NUMA homing stay
        // exactly as in the unsharded node.
        let configs = global_threads
            .iter()
            .map(|threads| HierarchyConfig {
                levels: config.levels.clone(),
                num_threads: threads.len(),
                thread_socket: threads.iter().map(|&t| config.thread_socket[t]).collect(),
                thread_core: threads.iter().map(|&t| config.thread_core[t]).collect(),
                num_sockets: config.num_sockets,
                prefetch: config.prefetch,
                numa_policy: config.numa_policy.clone(),
                memory_line_size: config.memory_line_size,
            })
            .collect();
        ShardPlan {
            sockets,
            shard_of_thread,
            local_thread,
            global_threads,
            instance_base,
            configs,
            line_shift: Some(line_size.trailing_zeros()),
            line_size,
        }
    }

    fn num_shards(&self) -> usize {
        self.configs.len()
    }
}

/// A replay operation panicked inside a shard's simulation engine.
///
/// The worker catches the panic, so the pool is not wedged and the shard's
/// engine is returned instead of being lost with the worker thread. The
/// failing epoch is completed through the exact sequential path (minus the
/// one poisoned operation), so the simulator stays usable; only the
/// poisoned operation's effect is missing, which this error reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReplayError {
    /// The shard whose engine panicked.
    pub shard: usize,
    /// The panic message of the failing `access_run` call.
    pub message: String,
}

impl std::fmt::Display for ShardReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay op panicked on shard {}: {}", self.shard, self.message)
    }
}

impl std::error::Error for ShardReplayError {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// One parallel work item: a shard's engine (moved by value) plus its ops.
struct Job {
    shard: usize,
    sys: Box<NodeCacheSystem>,
    ops: Vec<(usize, RunOp)>,
}

/// A worker's answer: the worst hit level, or — when an op panicked — the
/// number of ops that completed before the panic plus the panic message.
type JobOutcome = Result<HitLevel, (usize, String)>;

/// Persistent worker threads with static shard→worker assignment. Results
/// carry the shard index, so the collection order cannot influence where
/// anything lands — determinism is independent of scheduling. A panicking
/// op is caught inside the worker: the shard's engine travels back to the
/// pool owner either way, so a poisoned queue cannot wedge the channel or
/// lose a shard.
struct WorkerPool {
    senders: Vec<Sender<Job>>,
    results: Receiver<(usize, Box<NodeCacheSystem>, JobOutcome)>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let (result_tx, results) = channel();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let result_tx = result_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(Job { shard, mut sys, ops }) = rx.recv() {
                    let mut worst = HitLevel::L1;
                    let mut done = 0usize;
                    let started = trace::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        for &(thread, op) in &ops {
                            let level = sys
                                .access_run(thread, op.base, op.stride, op.count, op.size, op.kind);
                            if level > worst {
                                worst = level;
                            }
                            done += 1;
                        }
                    }));
                    trace::complete_since(
                        trace::cat::CACHESIM,
                        started,
                        || "shard.replay".to_string(),
                        || vec![("shard", shard.to_string()), ("ops", ops.len().to_string())],
                    );
                    // Pool threads outlive the recording: hand the span to
                    // the sink now instead of at thread exit.
                    if trace::enabled() {
                        trace::flush_thread();
                    }
                    let outcome = match outcome {
                        Ok(()) => Ok(worst),
                        Err(payload) => Err((done, panic_message(payload))),
                    };
                    if result_tx.send((shard, sys, outcome)).is_err() {
                        break;
                    }
                }
            }));
            senders.push(tx);
        }
        WorkerPool { senders, results, handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Coalesce an interval list in place (sorted, overlapping/adjacent merged).
fn coalesce(intervals: &mut Vec<(u64, u64)>) {
    if intervals.len() < 2 {
        return;
    }
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for &(lo, hi) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    *intervals = merged;
}

/// Whether two coalesced, sorted interval lists intersect (merge walk).
fn overlaps(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].1 < b[j].0 {
            i += 1;
        } else if b[j].1 < a[i].0 {
            j += 1;
        } else {
            return true;
        }
    }
    false
}

/// Whether any line of `stores` (coalesced line intervals) might be
/// resident in `sys`, at directory-page granularity. Iterates whichever
/// side is smaller; without a presence directory every store is a
/// potential conflict.
fn resident_conflict(stores: &[(u64, u64)], sys: &NodeCacheSystem) -> bool {
    if stores.is_empty() {
        return false;
    }
    if !sys.directory_enabled() {
        return true;
    }
    let page_lines = NodeCacheSystem::dir_page_lines();
    let pages: Vec<(u64, u64)> =
        stores.iter().map(|&(lo, hi)| (lo / page_lines, hi / page_lines)).collect();
    let total: u64 = pages.iter().map(|&(lo, hi)| hi - lo + 1).sum();
    if total as usize <= sys.dir_page_count() {
        pages.iter().any(|&(lo, hi)| (lo..=hi).any(|page| sys.dir_page_occupied(page)))
    } else {
        sys.dir_occupied_pages().any(|page| pages.iter().any(|&(lo, hi)| page >= lo && page <= hi))
    }
}

/// Run one op on a shard engine, converting an engine panic into a typed
/// error. Engine panics fire on argument validation, before any state
/// mutation, so the remaining ops of the epoch still replay exactly.
fn run_op(
    sys: &mut NodeCacheSystem,
    shard: usize,
    local: usize,
    op: RunOp,
) -> Result<HitLevel, ShardReplayError> {
    catch_unwind(AssertUnwindSafe(|| {
        sys.access_run(local, op.base, op.stride, op.count, op.size, op.kind)
    }))
    .map_err(|payload| ShardReplayError { shard, message: panic_message(payload) })
}

/// The parallel sharded simulator (see the module docs).
pub struct ShardedCacheSystem {
    config: HierarchyConfig,
    plan: ShardPlan,
    /// `None` only transiently while a shard is out on a worker.
    shards: Vec<Option<Box<NodeCacheSystem>>>,
    workers: usize,
    pool: Option<WorkerPool>,
    /// Per global thread: the last line its prefetchers observed (input to
    /// the cross-run IP carry bound). Persists across epochs and calls,
    /// exactly like the engine's prefetcher state.
    last_line: Vec<Option<u64>>,
    /// Per global thread: the previous run wrapped the address space, so
    /// the next run's carry target cannot be bounded.
    carry_unknown: Vec<bool>,
    epochs_parallel: u64,
    epochs_serial: u64,
    scratch_lines: Vec<u64>,
}

impl ShardedCacheSystem {
    /// Build a sharded simulator with one worker (no threads spawned; the
    /// analysis and merge paths are still exercised).
    pub fn new(config: HierarchyConfig) -> Self {
        Self::with_workers(config, 1)
    }

    /// Build a sharded simulator replaying independent epochs on up to
    /// `workers` worker threads (capped by the shard count; a node has one
    /// shard per socket with threads).
    pub fn with_workers(config: HierarchyConfig, workers: usize) -> Self {
        let plan = ShardPlan::build(&config);
        let shards =
            plan.configs.iter().map(|c| Some(Box::new(NodeCacheSystem::new(c.clone())))).collect();
        ShardedCacheSystem {
            last_line: vec![None; config.num_threads],
            carry_unknown: vec![false; config.num_threads],
            config,
            plan,
            shards,
            workers: workers.max(1),
            pool: None,
            epochs_parallel: 0,
            epochs_serial: 0,
            scratch_lines: Vec::new(),
        }
    }

    /// The configuration of the whole (unsharded) node.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of shards (one per socket with threads; 1 when the topology
    /// is not shardable).
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Change the worker count (tears down the pool; it is rebuilt lazily).
    /// Never changes any simulation result — only wall-clock time.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers != self.workers {
            self.workers = workers;
            self.pool = None;
        }
    }

    /// Epochs that were proven independent and replayed shard-parallel.
    pub fn epochs_parallel(&self) -> u64 {
        self.epochs_parallel
    }

    /// Epochs replayed in the serial fallback order.
    pub fn epochs_serial(&self) -> u64 {
        self.epochs_serial
    }

    /// Replay a queue. Bit-identical to [`NodeCacheSystem::replay`] on the
    /// same configuration and queue, for every worker count. Panics when a
    /// replay op panics inside the engine; use
    /// [`ShardedCacheSystem::try_replay`] for the typed-error variant.
    pub fn replay(&mut self, queue: &ReplayQueue) -> HitLevel {
        self.try_replay(queue).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Replay a queue, surfacing engine panics as a typed error instead of
    /// wedging the worker pool: the panic is caught on the worker, every
    /// shard engine travels back, the failing epoch is completed through
    /// the exact sequential order minus the poisoned op, and the remaining
    /// epochs replay normally. The first failure is reported; the simulator
    /// stays fully usable afterwards.
    pub fn try_replay(&mut self, queue: &ReplayQueue) -> Result<HitLevel, ShardReplayError> {
        assert_eq!(
            queue.num_threads(),
            self.config.num_threads,
            "queue thread count must match the hierarchy"
        );
        let mut worst = HitLevel::L1;
        let mut failed = None;
        for epoch in queue.epochs() {
            let level = self.replay_epoch(epoch, &mut failed);
            if level > worst {
                worst = level;
            }
        }
        match failed {
            None => Ok(worst),
            Some(e) => Err(e),
        }
    }

    fn replay_epoch(
        &mut self,
        epoch: &[(usize, RunOp)],
        failed: &mut Option<ShardReplayError>,
    ) -> HitLevel {
        let mut worst = HitLevel::L1;
        if epoch.is_empty() {
            return worst;
        }
        let num_shards = self.plan.num_shards();
        let mut per_shard: Vec<Vec<(usize, RunOp)>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut stores: Vec<Vec<(u64, u64)>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut touch: Vec<Vec<(u64, u64)>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut analyzable = self.plan.line_shift.is_some();
        let shift = self.plan.line_shift.unwrap_or(6);
        for &(thread, op) in epoch {
            let shard = self.plan.shard_of_thread[thread];
            per_shard[shard].push((self.plan.local_thread[thread], op));
            if op.count == 0 || op.kind == AccessKind::NonTemporalStore {
                // NT stores bypass the caches entirely: no fills, no
                // invalidations, no prefetcher observations — only local
                // memory-controller counters.
                continue;
            }
            if self.carry_unknown[thread] {
                analyzable = false;
            }
            match op.line_hull(shift) {
                None => {
                    analyzable = false;
                    self.carry_unknown[thread] = true;
                    self.last_line[thread] = None;
                }
                Some((lo, hi)) => {
                    let pad = op.prefetch_pad_lines(shift);
                    touch[shard].push((lo.saturating_sub(pad), hi.saturating_add(pad)));
                    if let Some(prev) = self.last_line[thread] {
                        // The IP prefetcher may fire on the run's first
                        // access with the carried-in stride, reaching
                        // first + (first - prev) — a single line anywhere.
                        let first = op.first_line(shift);
                        let target = 2 * first as i128 - prev as i128;
                        if (0..=u64::MAX as i128).contains(&target) {
                            touch[shard].push((target as u64, target as u64));
                        }
                    }
                    if op.kind == AccessKind::Store {
                        stores[shard].push((lo, hi));
                    }
                    self.last_line[thread] = op.last_observed_line(shift);
                    self.carry_unknown[thread] = false;
                }
            }
        }

        let active: Vec<usize> = (0..num_shards).filter(|&s| !per_shard[s].is_empty()).collect();
        let multi = active.len() > 1;
        let mut conflict = num_shards > 1 && !analyzable;
        if !conflict && num_shards > 1 {
            for &s in &active {
                coalesce(&mut stores[s]);
                coalesce(&mut touch[s]);
            }
            // A store is a cross-shard effect against *every* other shard —
            // active ones (whose accesses this epoch must be ordered against)
            // via the touch footprints, and idle ones via their resident
            // lines, which a sequential store would invalidate (a stat-visible
            // event) even though the idle shard issues nothing this epoch.
            'pairs: for &a in &active {
                if stores[a].is_empty() {
                    continue;
                }
                for b in 0..num_shards {
                    if b == a {
                        continue;
                    }
                    if overlaps(&stores[a], &touch[b])
                        || resident_conflict(&stores[a], self.shards[b].as_ref().expect("shard"))
                    {
                        conflict = true;
                        break 'pairs;
                    }
                }
            }
        }

        let epoch_started = trace::now();
        if !conflict {
            if multi {
                self.epochs_parallel += 1;
                trace::count(trace::cat::CACHESIM, "epochs_parallel", 1);
            }
            if multi && self.workers > 1 {
                let worker_count = self.workers.min(num_shards);
                let pool = self.pool.get_or_insert_with(|| WorkerPool::new(worker_count));
                let mut dispatched = 0;
                for &s in &active {
                    let sys = self.shards[s].take().expect("shard present");
                    // The ops stay in per_shard too: should the job panic,
                    // the unfinished tail is completed sequentially below.
                    let ops = per_shard[s].clone();
                    let worker = s % pool.senders.len();
                    pool.senders[worker].send(Job { shard: s, sys, ops }).expect("worker alive");
                    dispatched += 1;
                }
                for _ in 0..dispatched {
                    let (s, sys, outcome) =
                        pool.results.recv().expect("worker returns its shard even on a panic");
                    self.shards[s] = Some(sys);
                    match outcome {
                        Ok(level) => {
                            if level > worst {
                                worst = level;
                            }
                        }
                        Err((done, message)) => {
                            if failed.is_none() {
                                *failed = Some(ShardReplayError { shard: s, message });
                            }
                            // Exact sequential completion of everything
                            // after the poisoned op, on the engine the
                            // worker handed back. The epoch was proven
                            // conflict-free, so no cross-shard effects are
                            // missed.
                            let sys = self.shards[s].as_mut().expect("shard present");
                            for &(local, op) in per_shard[s].iter().skip(done + 1) {
                                match run_op(sys, s, local, op) {
                                    Ok(level) => {
                                        if level > worst {
                                            worst = level;
                                        }
                                    }
                                    Err(e) => {
                                        if failed.is_none() {
                                            *failed = Some(e);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            } else {
                for &s in &active {
                    let sys = self.shards[s].as_mut().expect("shard present");
                    for &(local, op) in &per_shard[s] {
                        match run_op(sys, s, local, op) {
                            Ok(level) => {
                                if level > worst {
                                    worst = level;
                                }
                            }
                            Err(e) => {
                                if failed.is_none() {
                                    *failed = Some(e);
                                }
                            }
                        }
                    }
                }
            }
        } else {
            self.epochs_serial += 1;
            trace::count(trace::cat::CACHESIM, "epochs_serial", 1);
            let mut lines = std::mem::take(&mut self.scratch_lines);
            for &(thread, op) in epoch {
                let shard = self.plan.shard_of_thread[thread];
                let local = self.plan.local_thread[thread];
                let sys = self.shards[shard].as_mut().expect("shard present");
                let level = match run_op(sys, shard, local, op) {
                    Ok(level) => level,
                    Err(e) => {
                        // The op had no effect (engine panics fire on
                        // argument validation); its invalidations must not
                        // happen either.
                        if failed.is_none() {
                            *failed = Some(e);
                        }
                        continue;
                    }
                };
                if level > worst {
                    worst = level;
                }
                if op.kind == AccessKind::Store && op.count > 0 {
                    lines.clear();
                    op.collect_lines(self.plan.line_size, &mut lines);
                    for other in 0..num_shards {
                        if other == shard {
                            continue;
                        }
                        let sys = self.shards[other].as_mut().expect("shard present");
                        for &line in &lines {
                            sys.invalidate_external(line);
                        }
                    }
                    trace::count(
                        trace::cat::CACHESIM,
                        "cross_shard_invalidations",
                        (lines.len() * (num_shards - 1)) as i64,
                    );
                }
            }
            self.scratch_lines = lines;
        }
        // The classification span covers dispatch, replay and merge of the
        // whole epoch; single-shard epochs are not classified at all.
        if multi || conflict {
            trace::complete_since(
                trace::cat::CACHESIM,
                epoch_started,
                || if conflict { "epoch.serial" } else { "epoch.parallel" }.to_string(),
                || vec![("shards", active.len().to_string()), ("ops", epoch.len().to_string())],
            );
        }
        worst
    }

    /// Per-shard statistics snapshots (local instance/thread indexing).
    pub fn shard_stats(&self) -> Vec<NodeStats> {
        self.shards.iter().map(|s| s.as_ref().expect("shard present").stats()).collect()
    }

    /// The merged node-level statistics: per-level instance counters are
    /// scattered into their global slots (each shard owns a contiguous,
    /// disjoint range, so nothing can be double counted), memory-controller
    /// counters are summed per domain, per-thread counters scattered by
    /// global thread id.
    pub fn stats(&self) -> NodeStats {
        let shard_stats = self.shard_stats();
        let levels = self
            .config
            .levels
            .iter()
            .enumerate()
            .map(|(l, level_cfg)| {
                let mut instances =
                    vec![CacheStats::default(); self.config.instances_of(level_cfg)];
                for (s, stats) in shard_stats.iter().enumerate() {
                    let base = self.plan.instance_base[l][s];
                    for (i, inst) in stats.levels[l].instances.iter().enumerate() {
                        instances[base + i] = *inst;
                    }
                }
                LevelStats { level: level_cfg.level, instances }
            })
            .collect();
        let mut memory = vec![MemoryStats::default(); self.config.num_sockets as usize];
        for stats in &shard_stats {
            for (domain, m) in stats.memory.iter().enumerate() {
                memory[domain].merge(m);
            }
        }
        let mut thread_loads = vec![0; self.config.num_threads];
        let mut thread_stores = vec![0; self.config.num_threads];
        for (s, stats) in shard_stats.iter().enumerate() {
            for (local, &t) in self.plan.global_threads[s].iter().enumerate() {
                thread_loads[t] = stats.thread_loads[local];
                thread_stores[t] = stats.thread_stores[local];
            }
        }
        NodeStats { levels, memory, thread_loads, thread_stores }
    }

    /// Reset all counters on every shard (cache contents, directory and
    /// prefetcher state are preserved, like [`NodeCacheSystem::reset_stats`]).
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.as_mut().expect("shard present").reset_stats();
        }
    }

    /// LLC statistics of one socket — answered by the shard that owns the
    /// socket, so per-socket accounting is exact without a full merge.
    pub fn llc_stats_of_socket(&self, socket: u32) -> CacheStats {
        match self.plan.sockets.iter().position(|&s| s == socket) {
            Some(shard) => {
                self.shards[shard].as_ref().expect("shard present").llc_stats_of_socket(socket)
            }
            None => Default::default(),
        }
    }

    /// Memory statistics of one socket's controller, summed over all shards
    /// (every shard classifies its own traffic onto the node's domains).
    pub fn memory_stats_of_socket(&self, socket: u32) -> MemoryStats {
        let mut total = MemoryStats::default();
        for shard in &self.shards {
            total.merge(&shard.as_ref().expect("shard present").memory_stats_of_socket(socket));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheLevelConfig, PrefetchConfig, WritePolicy};
    use crate::memory::NumaPolicy;
    use crate::replacement::ReplacementPolicy;

    /// Four threads on two sockets, private L1/L2, one shared inclusive L3
    /// per socket — the smallest topology with two shards.
    fn two_socket_config() -> HierarchyConfig {
        let level = |level, sets, ways, shared, inclusive| CacheLevelConfig {
            level,
            sets,
            ways,
            line_size: 64,
            inclusive,
            shared_by_threads: shared,
            write_policy: WritePolicy::WriteBackAllocate,
            replacement: ReplacementPolicy::Lru,
        };
        HierarchyConfig {
            levels: vec![
                level(1, 8, 2, 1, false),
                level(2, 32, 4, 1, false),
                level(3, 128, 8, 2, true),
            ],
            num_threads: 4,
            thread_socket: vec![0, 0, 1, 1],
            thread_core: vec![0, 1, 2, 3],
            num_sockets: 2,
            prefetch: PrefetchConfig::all_enabled(),
            numa_policy: NumaPolicy::interleave(4096),
            memory_line_size: 64,
        }
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// Socket-partitioned traffic: each thread works a private region with
    /// multi-megabyte gaps, so every epoch is provably independent.
    fn partitioned_queue(epochs: usize) -> ReplayQueue {
        let mut queue = ReplayQueue::new(4);
        let mut state = 0x2545_F491_4F6C_DD1D;
        for _ in 0..epochs {
            queue.begin_epoch();
            for thread in 0..4 {
                let region = (thread as u64 + 1) << 26;
                for _ in 0..3 {
                    let offset = lcg(&mut state) % (1 << 12);
                    let kind =
                        if lcg(&mut state) % 2 == 0 { AccessKind::Store } else { AccessKind::Load };
                    queue.push(
                        thread,
                        RunOp { base: region + offset * 64, stride: 64, count: 16, size: 8, kind },
                    );
                }
            }
        }
        queue
    }

    /// All four threads hammer the same sliding window of lines, with the
    /// socket-0 threads storing and the socket-1 threads loading: every
    /// epoch's store footprint overlaps the other shard's touch footprint.
    fn conflicting_queue(epochs: usize) -> ReplayQueue {
        let mut queue = ReplayQueue::new(4);
        for epoch in 0..epochs as u64 {
            queue.begin_epoch();
            for thread in 0..4 {
                let kind = if thread < 2 { AccessKind::Store } else { AccessKind::Load };
                let base = (epoch * 3 % 8) * 64;
                queue.push(thread, RunOp { base, stride: 64, count: 8, size: 8, kind });
            }
        }
        queue
    }

    #[test]
    fn sharded_replay_is_bit_identical_and_worker_invariant() {
        let queue = partitioned_queue(6);
        let mut sequential = NodeCacheSystem::new(two_socket_config());
        let want_level = sequential.replay(&queue);
        let want = sequential.stats();
        for workers in [1, 2, 5] {
            let mut sharded = ShardedCacheSystem::with_workers(two_socket_config(), workers);
            assert_eq!(sharded.num_shards(), 2);
            let level = sharded.replay(&queue);
            assert_eq!(level, want_level, "worst hit level with {workers} workers");
            assert_eq!(sharded.stats(), want, "stats with {workers} workers");
            assert_eq!(sharded.epochs_parallel(), 6, "all epochs are independent");
            assert_eq!(sharded.epochs_serial(), 0);
        }
    }

    #[test]
    fn conflicting_epochs_fall_back_to_the_exact_serial_order() {
        let queue = conflicting_queue(5);
        let mut sequential = NodeCacheSystem::new(two_socket_config());
        let want_level = sequential.replay(&queue);
        let want = sequential.stats();
        for workers in [1, 3] {
            let mut sharded = ShardedCacheSystem::with_workers(two_socket_config(), workers);
            let level = sharded.replay(&queue);
            assert_eq!(level, want_level);
            assert_eq!(sharded.stats(), want, "serial fallback with {workers} workers");
            assert_eq!(sharded.epochs_serial(), 5, "shared lines force the serial order");
            assert_eq!(sharded.epochs_parallel(), 0);
        }
    }

    #[test]
    fn per_shard_stats_sum_exactly_to_the_merged_totals() {
        let mut sharded = ShardedCacheSystem::with_workers(two_socket_config(), 2);
        sharded.replay(&partitioned_queue(4));
        sharded.replay(&conflicting_queue(3));
        let merged = sharded.stats();
        let parts = sharded.shard_stats();

        for (l, level) in merged.levels.iter().enumerate() {
            let mut sum = CacheStats::default();
            for part in &parts {
                sum.merge(&part.levels[l].total());
            }
            assert_eq!(sum, level.total(), "level {l} per-shard sums match the merge");
        }
        let memory_sum: u64 = parts.iter().map(|p| p.total_memory_bytes()).sum();
        assert_eq!(memory_sum, merged.total_memory_bytes(), "no double-counted write-backs");
        assert_eq!(
            parts.iter().map(|p| p.thread_loads.iter().sum::<u64>()).sum::<u64>(),
            merged.thread_loads.iter().sum::<u64>(),
        );
    }

    #[test]
    fn per_socket_accessors_match_the_sequential_engine() {
        let queue = partitioned_queue(5);
        let mut sequential = NodeCacheSystem::new(two_socket_config());
        sequential.replay(&queue);
        let mut sharded = ShardedCacheSystem::with_workers(two_socket_config(), 2);
        sharded.replay(&queue);
        for socket in 0..2 {
            assert_eq!(
                sharded.llc_stats_of_socket(socket),
                sequential.llc_stats_of_socket(socket),
                "LLC accounting of socket {socket}"
            );
            assert_eq!(
                sharded.memory_stats_of_socket(socket),
                sequential.memory_stats_of_socket(socket),
                "memory accounting of socket {socket}"
            );
        }
        assert_eq!(sharded.llc_stats_of_socket(7), Default::default(), "threadless socket");
    }

    #[test]
    fn single_socket_topologies_run_as_one_shard() {
        let mut config = two_socket_config();
        config.thread_socket = vec![0, 0, 0, 0];
        config.num_sockets = 1;
        config.levels[2].shared_by_threads = 4;
        let queue = conflicting_queue(4);
        let mut sequential = NodeCacheSystem::new(config.clone());
        sequential.replay(&queue);
        let mut sharded = ShardedCacheSystem::with_workers(config, 8);
        assert_eq!(sharded.num_shards(), 1);
        sharded.replay(&queue);
        assert_eq!(sharded.stats(), sequential.stats());
        assert_eq!(sharded.epochs_parallel(), 0, "one shard never counts as parallel");
    }

    #[test]
    fn worker_count_changes_mid_run_do_not_change_results() {
        let mut sequential = NodeCacheSystem::new(two_socket_config());
        sequential.replay(&partitioned_queue(6));
        let mut sharded = ShardedCacheSystem::with_workers(two_socket_config(), 2);
        sharded.replay(&partitioned_queue(2));
        sharded.set_workers(1);
        sharded.replay(&partitioned_queue_tail(2, 2));
        sharded.set_workers(4);
        sharded.replay(&partitioned_queue_tail(4, 2));
        assert_eq!(sharded.stats(), sequential.stats());
    }

    #[test]
    fn a_panicking_replay_op_yields_a_typed_error_not_a_wedged_pool() {
        // A zero-size access run trips the engine's argument validation —
        // the deliberately poisoned op. Silence the default panic hook's
        // backtrace spam for the duration (the panics are expected).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        // Poisoned op inside a provably parallel epoch: thread 2 (shard 1)
        // gets size = 0.
        let mut queue = ReplayQueue::new(4);
        queue.begin_epoch();
        for thread in 0..4 {
            let region = (thread as u64 + 1) << 26;
            let size = if thread == 2 { 0 } else { 8 };
            queue.push(
                thread,
                RunOp { base: region, stride: 64, count: 8, size, kind: AccessKind::Load },
            );
        }

        let mut sharded = ShardedCacheSystem::with_workers(two_socket_config(), 2);
        let err = sharded.try_replay(&queue).expect_err("poisoned op must surface");
        assert_eq!(err.shard, 1, "thread 2 lives on the socket-1 shard");
        assert!(err.message.contains("zero-size"), "got: {}", err.message);

        // The pool is not wedged and no shard was lost: a healthy queue
        // still replays (in parallel) and matches the sequential engine
        // that saw the same surviving ops.
        let good = partitioned_queue(3);
        assert!(sharded.try_replay(&good).is_ok());
        let mut sequential = NodeCacheSystem::new(two_socket_config());
        for epoch in queue.epochs() {
            for &(thread, op) in epoch {
                if op.size > 0 {
                    sequential.access_run(thread, op.base, op.stride, op.count, op.size, op.kind);
                }
            }
        }
        sequential.replay(&good);
        assert_eq!(sharded.stats(), sequential.stats(), "poisoned op dropped, rest exact");

        // The serial-fallback path reports the same typed error.
        let mut conflict_poisoned = ReplayQueue::new(4);
        conflict_poisoned.begin_epoch();
        for thread in 0..4 {
            let kind = if thread < 2 { AccessKind::Store } else { AccessKind::Load };
            let size = if thread == 0 { 0 } else { 8 };
            conflict_poisoned.push(thread, RunOp { base: 0, stride: 64, count: 8, size, kind });
        }
        let mut serial = ShardedCacheSystem::with_workers(two_socket_config(), 2);
        let err = serial.try_replay(&conflict_poisoned).expect_err("serial path surfaces too");
        assert_eq!(err.shard, 0);

        std::panic::set_hook(hook);
    }

    /// Epochs `skip..skip + len` of the deterministic partitioned stream —
    /// the LCG is advanced past the skipped epochs so the tail matches.
    fn partitioned_queue_tail(skip: usize, len: usize) -> ReplayQueue {
        let full = partitioned_queue(skip + len);
        let mut queue = ReplayQueue::new(4);
        for epoch in &full.epochs()[skip..] {
            queue.begin_epoch();
            for &(thread, op) in epoch {
                queue.push(thread, op);
            }
        }
        queue
    }
}

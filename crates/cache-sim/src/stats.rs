//! Event statistics collected by the simulator.
//!
//! These counters are the raw material for the architectural events exposed
//! by `likwid-perf-events`: e.g. the Nehalem uncore events
//! `UNC_L3_LINES_IN_ANY` / `UNC_L3_LINES_OUT_ANY` of Table II map to the
//! [`CacheStats::lines_in`] / [`CacheStats::lines_out`] counters of the
//! socket's L3 instance, and the `MEM` event group's bandwidth metric maps to
//! the memory-controller byte counters.

/// Counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that reached this level (loads + stores).
    pub accesses: u64,
    /// Demand loads that reached this level.
    pub loads: u64,
    /// Demand stores that reached this level.
    pub stores: u64,
    /// Demand accesses satisfied at this level.
    pub hits: u64,
    /// Demand accesses that missed and had to go further out.
    pub misses: u64,
    /// Lines allocated into this level (demand fills + prefetch fills +
    /// write-allocate fills).
    pub lines_in: u64,
    /// Lines removed from this level (evictions of any kind).
    pub lines_out: u64,
    /// Dirty lines written back to the next level / memory.
    pub writebacks: u64,
    /// Lines brought in by a hardware prefetcher.
    pub prefetch_fills: u64,
    /// Prefetch requests issued by the prefetchers attached to this level.
    pub prefetch_requests: u64,
}

impl CacheStats {
    /// Miss rate = misses / accesses (0 if no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Merge another instance's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.loads += other.loads;
        self.stores += other.stores;
        self.hits += other.hits;
        self.misses += other.misses;
        self.lines_in += other.lines_in;
        self.lines_out += other.lines_out;
        self.writebacks += other.writebacks;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_requests += other.prefetch_requests;
    }

    /// Internal consistency: hits + misses == demand accesses.
    pub fn is_consistent(&self) -> bool {
        self.hits + self.misses == self.accesses && self.loads + self.stores == self.accesses
    }
}

/// Counters of one memory controller (one socket / NUMA domain).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes read from DRAM (line fills + write-allocate reads).
    pub bytes_read: u64,
    /// Bytes written to DRAM (writebacks + non-temporal stores).
    pub bytes_written: u64,
    /// Read transactions that originated on this socket.
    pub local_reads: u64,
    /// Read transactions that came from a remote socket over the
    /// interconnect.
    pub remote_reads: u64,
    /// Write transactions from this socket.
    pub local_writes: u64,
    /// Write transactions from a remote socket.
    pub remote_writes: u64,
    /// Non-temporal store transactions (streamed, no write-allocate).
    pub nt_stores: u64,
}

impl MemoryStats {
    /// Total data volume in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Merge another controller's counters into this one.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.local_reads += other.local_reads;
        self.remote_reads += other.remote_reads;
        self.local_writes += other.local_writes;
        self.remote_writes += other.remote_writes;
        self.nt_stores += other.nt_stores;
    }
}

/// Per-level aggregate over all instances of that level in the node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Cache level (1, 2, 3).
    pub level: u32,
    /// Counters per instance (index = instance number).
    pub instances: Vec<CacheStats>,
}

impl LevelStats {
    /// Sum over all instances.
    pub fn total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for inst in &self.instances {
            total.merge(inst);
        }
        total
    }
}

/// Snapshot of all counters in the node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// One entry per cache level, ordered L1, L2, L3.
    pub levels: Vec<LevelStats>,
    /// One entry per socket's memory controller.
    pub memory: Vec<MemoryStats>,
    /// Per-hardware-thread demand access counts (loads, stores).
    pub thread_loads: Vec<u64>,
    /// Per-hardware-thread store counts.
    pub thread_stores: Vec<u64>,
}

impl NodeStats {
    /// Total bytes moved to/from DRAM across all sockets.
    pub fn total_memory_bytes(&self) -> u64 {
        self.memory.iter().map(|m| m.total_bytes()).sum()
    }

    /// Aggregate stats of one level over the whole node.
    pub fn level_total(&self, level: u32) -> CacheStats {
        self.levels.iter().find(|l| l.level == level).map(|l| l.total()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero_accesses() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = CacheStats {
            accesses: 10,
            loads: 6,
            stores: 4,
            hits: 7,
            misses: 3,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 5,
            loads: 5,
            stores: 0,
            hits: 5,
            misses: 0,
            lines_in: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.hits, 12);
        assert_eq!(a.lines_in, 2);
        assert!(a.is_consistent());
    }

    #[test]
    fn memory_total_bytes() {
        let m = MemoryStats { bytes_read: 100, bytes_written: 50, ..Default::default() };
        assert_eq!(m.total_bytes(), 150);
    }

    #[test]
    fn node_stats_level_lookup() {
        let node = NodeStats {
            levels: vec![
                LevelStats {
                    level: 1,
                    instances: vec![CacheStats {
                        accesses: 5,
                        loads: 5,
                        hits: 5,
                        ..Default::default()
                    }],
                },
                LevelStats {
                    level: 3,
                    instances: vec![
                        CacheStats { lines_in: 7, ..Default::default() },
                        CacheStats { lines_in: 3, ..Default::default() },
                    ],
                },
            ],
            ..Default::default()
        };
        assert_eq!(node.level_total(3).lines_in, 10);
        assert_eq!(node.level_total(2).accesses, 0);
    }
}

//! Declarative command-line parsing shared by every binary of the suite.
//!
//! Each tool and figure binary describes its switches once as an
//! [`ArgSpec`]; parsing, `--help` generation and the common output switches
//! (`-O <ascii|csv|json>`, `-o <file>`) fall out of the spec instead of
//! being re-implemented per tool. The parser fixes two long-standing holes
//! of the ad-hoc flag scanning it replaces:
//!
//! * a flag that expects a value no longer consumes a following flag as
//!   that value (`likwid-perfctr -c -g MEM` is now a usage error instead of
//!   the cpus expression `"-g"`), and
//! * occurrences are kept in command-line order, so order-sensitive
//!   switches (`likwid-features -e X -u X`) apply as written.

use crate::error::{LikwidError, Result};
use crate::report::OutputFormat;

/// One switch of a tool.
#[derive(Debug, Clone, Copy)]
pub struct FlagDef {
    /// Primary (short) name, e.g. `-c`.
    pub short: &'static str,
    /// Optional long alias, e.g. `--machine`.
    pub long: Option<&'static str>,
    /// Placeholder name of the value (`None` for boolean flags).
    pub value: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// Trailing positional arguments of a binary (the figure binaries take
/// sample counts / problem sizes positionally).
#[derive(Debug, Clone, Copy)]
pub struct PositionalDef {
    /// Placeholder name shown in the usage line.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
    /// Whether more than one value may be given.
    pub many: bool,
}

/// The declarative argument specification of one binary.
#[derive(Debug, Clone)]
pub struct ArgSpec {
    tool: &'static str,
    about: &'static str,
    flags: Vec<FlagDef>,
    positional: Option<PositionalDef>,
    notes: Vec<String>,
}

/// The output switches every binary of the suite carries.
const OUTPUT_FLAGS: [FlagDef; 2] = [
    FlagDef {
        short: "-O",
        long: None,
        value: Some("ascii|csv|json"),
        help: "output format (default: ascii, or inferred from the -o extension)",
    },
    FlagDef {
        short: "-o",
        long: None,
        value: Some("file"),
        help: "write the output to a file instead of stdout",
    },
];

impl ArgSpec {
    /// A new spec; `-h`/`--help` and the output switches `-O`/`-o` are
    /// implicit on every binary.
    pub fn new(tool: &'static str, about: &'static str) -> Self {
        ArgSpec { tool, about, flags: OUTPUT_FLAGS.to_vec(), positional: None, notes: Vec::new() }
    }

    /// The tool name.
    pub fn tool(&self) -> &'static str {
        self.tool
    }

    /// Add a switch.
    pub fn flag(
        mut self,
        short: &'static str,
        long: Option<&'static str>,
        value: Option<&'static str>,
        help: &'static str,
    ) -> Self {
        self.flags.push(FlagDef { short, long, value, help });
        self
    }

    /// Add the `--machine <preset>` switch shared by the four tools.
    pub fn machine_flag(self) -> Self {
        self.flag("-M", Some("--machine"), Some("preset"), "simulated machine preset")
    }

    /// Declare trailing positional arguments.
    pub fn positional(mut self, name: &'static str, help: &'static str, many: bool) -> Self {
        self.positional = Some(PositionalDef { name, help, many });
        self
    }

    /// Append a free-form paragraph to the generated `--help` text (flag
    /// semantics the one-line help cannot carry, e.g. which `-g` spellings
    /// multiplex).
    pub fn note(mut self, text: impl Into<String>) -> Self {
        self.notes.push(text.into());
        self
    }

    fn find(&self, token: &str) -> Option<usize> {
        self.flags.iter().position(|f| f.short == token || f.long == Some(token))
    }

    /// Parse a command line against the spec.
    pub fn parse(&self, args: &[String]) -> Result<ParsedArgs> {
        let mut parsed =
            ParsedArgs { occurrences: Vec::new(), positionals: Vec::new(), help: false };
        let mut iter = args.iter();
        while let Some(token) = iter.next() {
            if token == "-h" || token == "--help" {
                parsed.help = true;
                continue;
            }
            if let Some(index) = self.find(token) {
                let def = &self.flags[index];
                let value = if def.value.is_some() {
                    let value = iter.next().ok_or_else(|| {
                        LikwidError::Usage(format!("option '{token}' requires a value"))
                    })?;
                    if value.starts_with('-') {
                        return Err(LikwidError::Usage(format!(
                            "option '{token}' requires a value, but got flag '{value}'"
                        )));
                    }
                    Some(value.clone())
                } else {
                    None
                };
                parsed.occurrences.push((def.short, value));
            } else if token.starts_with('-') && token.len() > 1 {
                return Err(LikwidError::Usage(format!("unknown option '{token}' (try --help)")));
            } else {
                match self.positional {
                    Some(def) => {
                        if !def.many && !parsed.positionals.is_empty() {
                            return Err(LikwidError::Usage(format!(
                                "unexpected extra argument '{token}'"
                            )));
                        }
                        parsed.positionals.push(token.clone());
                    }
                    None => {
                        return Err(LikwidError::Usage(format!("unexpected argument '{token}'")))
                    }
                }
            }
        }
        Ok(parsed)
    }

    /// The auto-generated `--help` text.
    pub fn help_text(&self) -> String {
        let mut usage = format!("{}", self.tool);
        for f in &self.flags {
            match f.value {
                Some(v) => usage.push_str(&format!(" [{} <{v}>]", f.short)),
                None => usage.push_str(&format!(" [{}]", f.short)),
            }
        }
        if let Some(p) = self.positional {
            if p.many {
                usage.push_str(&format!(" [{}...]", p.name));
            } else {
                usage.push_str(&format!(" [{}]", p.name));
            }
        }
        let mut out = format!("{usage}\n{}\n\nOptions:\n", self.about);
        let name_of = |f: &FlagDef| {
            let mut name = f.short.to_string();
            if let Some(long) = f.long {
                name.push_str(&format!(", {long}"));
            }
            if let Some(v) = f.value {
                name.push_str(&format!(" <{v}>"));
            }
            name
        };
        let width = self
            .flags
            .iter()
            .map(|f| name_of(f).len())
            .chain(std::iter::once("-h, --help".len()))
            .max()
            .unwrap_or(0);
        for f in &self.flags {
            out.push_str(&format!("  {:width$}  {}\n", name_of(f), f.help, width = width));
        }
        out.push_str(&format!("  {:width$}  print this help\n", "-h, --help", width = width));
        if let Some(p) = self.positional {
            out.push_str(&format!("\nArguments:\n  {}  {}\n", p.name, p.help));
        }
        for note in &self.notes {
            out.push_str(&format!("\n{note}\n"));
        }
        out
    }
}

/// The parsed command line of one invocation.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// `(flag short name, value)` in command-line order.
    occurrences: Vec<(&'static str, Option<String>)>,
    positionals: Vec<String>,
    help: bool,
}

impl ParsedArgs {
    /// Whether `-h`/`--help` was given.
    pub fn help_requested(&self) -> bool {
        self.help
    }

    /// Whether a flag occurred at least once (by its short name).
    pub fn has(&self, flag: &str) -> bool {
        self.occurrences.iter().any(|(f, _)| *f == flag)
    }

    /// The value of the last occurrence of a flag.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.occurrences.iter().rev().find(|(f, _)| *f == flag).and_then(|(_, v)| v.as_deref())
    }

    /// All occurrences of the given flags, in command-line order (for
    /// order-sensitive switches like `-e`/`-u`).
    pub fn occurrences_of(&self, flags: &[&str]) -> Vec<(&'static str, Option<&str>)> {
        self.occurrences
            .iter()
            .filter(|(f, _)| flags.contains(f))
            .map(|(f, v)| (*f, v.as_deref()))
            .collect()
    }

    /// The trailing positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Parse the single positional argument as a number, defaulting when
    /// absent (the figure binaries' sample count / problem size).
    pub fn positional_number(&self, default: usize) -> Result<usize> {
        match self.positionals.first() {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| LikwidError::Usage(format!("bad number '{raw}'"))),
        }
    }

    /// Parse an interval/duration-valued flag (`likwid-perfctr -t`/`-S`,
    /// `likwid-bench -T`): `Ok(None)` when the flag is absent, the value in
    /// seconds when it parses, and a [`LikwidError::Usage`] error naming
    /// the flag for zero, negative or unparsable values. The single
    /// validation authority is [`crate::perfctr::parse_interval`], which
    /// the `likwid-perfctrd` protocol routes its `interval`/`duration`
    /// fields through as well.
    pub fn interval(&self, flag: &str) -> Result<Option<f64>> {
        match self.value(flag) {
            None => Ok(None),
            Some(raw) => match crate::perfctr::parse_interval(raw) {
                Ok(value) => Ok(Some(value)),
                Err(LikwidError::Usage(msg)) => Err(LikwidError::Usage(format!("{flag}: {msg}"))),
                Err(e) => Err(e),
            },
        }
    }

    /// The effective output target: format from `-O`, falling back to the
    /// `-o` file extension, falling back to ASCII.
    pub fn output(&self) -> Result<OutputTarget> {
        let path = self.value("-o").map(str::to_string);
        let format = match self.value("-O") {
            Some(name) => OutputFormat::parse(name).ok_or_else(|| {
                LikwidError::Usage(format!(
                    "unknown output format '{name}' (expected ascii, csv or json)"
                ))
            })?,
            None => path
                .as_deref()
                .and_then(OutputFormat::from_extension)
                .unwrap_or(OutputFormat::Ascii),
        };
        Ok(OutputTarget { format, path })
    }
}

/// Where and how a binary's report goes out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputTarget {
    /// The rendering format.
    pub format: OutputFormat,
    /// Output file (`None` = stdout).
    pub path: Option<String>,
}

impl OutputTarget {
    /// Write rendered text to the target; returns whether stdout was used.
    pub fn write(&self, text: &str) -> std::io::Result<bool> {
        match &self.path {
            Some(path) => {
                std::fs::write(path, text)?;
                Ok(false)
            }
            None => {
                print!("{text}");
                Ok(true)
            }
        }
    }

    /// Write to the `-o` file when one was given; a no-op for stdout
    /// targets (used by string-level front ends that return the text to the
    /// caller instead of printing it).
    pub fn write_file_if_requested(&self, text: &str) -> Result<()> {
        if let Some(path) = &self.path {
            std::fs::write(path, text)
                .map_err(|e| LikwidError::Output(format!("cannot write '{path}': {e}")))?;
        }
        Ok(())
    }
}

/// The outcome of driving one binary invocation through its spec.
pub enum Invocation {
    /// `-h`/`--help` was given; carries the generated help text.
    Help(String),
    /// The report was built and rendered in the selected format.
    Rendered {
        /// The rendered document.
        text: String,
        /// Where the text should go.
        target: OutputTarget,
    },
}

/// Drive one invocation: parse the command line against the spec, resolve
/// the output target, build the report and render it. Shared by all 17
/// binaries and the string-level tool front ends.
pub fn drive(
    spec: &ArgSpec,
    args: &[String],
    build: impl FnOnce(&ParsedArgs) -> Result<crate::report::Report>,
) -> Result<Invocation> {
    let parsed = spec.parse(args)?;
    if parsed.help_requested() {
        return Ok(Invocation::Help(spec.help_text()));
    }
    let target = parsed.output()?;
    // Tools whose spec carries `--trace` (see `trace::trace_flag`) record
    // the build; the trace file and stderr rollup never touch the report.
    let trace_sink = crate::trace::begin_cli(&parsed)?;
    let report = match build(&parsed) {
        Ok(report) => report,
        Err(e) => {
            if trace_sink.is_some() {
                let _ = crate::trace::stop();
            }
            return Err(e);
        }
    };
    if let Some(sink) = trace_sink {
        sink.finish()?;
    }
    Ok(Invocation::Rendered { text: target.format.render(&report), target })
}

/// The binary entry point shared by every tool and figure binary: drive the
/// invocation, write the result to stdout or the `-o` file, report errors
/// as `tool-name: message` on stderr. Returns the process exit code.
pub fn bin_main(
    spec: &ArgSpec,
    args: &[String],
    build: impl FnOnce(&ParsedArgs) -> Result<crate::report::Report>,
) -> i32 {
    match drive(spec, args, build) {
        Ok(Invocation::Help(help)) => {
            print!("{help}");
            0
        }
        Ok(Invocation::Rendered { text, target }) => match target.write(&text) {
            Ok(_) => 0,
            Err(e) => {
                eprintln!("{}: cannot write output: {e}", spec.tool());
                1
            }
        },
        Err(e) => {
            eprintln!("{}: {e}", spec.tool());
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArgSpec {
        ArgSpec::new("likwid-test", "a test tool")
            .machine_flag()
            .flag("-c", None, Some("list"), "cpu list")
            .flag("-g", None, Some("group"), "event group")
            .flag("-a", None, None, "list groups")
            .flag("-e", None, Some("name"), "enable")
            .flag("-u", None, Some("name"), "disable")
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_by_short_and_long_name() {
        let parsed = spec().parse(&args(&["--machine", "core2-quad", "-c", "0-3", "-a"])).unwrap();
        assert_eq!(parsed.value("-M"), Some("core2-quad"));
        assert_eq!(parsed.value("-c"), Some("0-3"));
        assert!(parsed.has("-a"));
        assert!(!parsed.has("-g"));
        assert!(!parsed.help_requested());
    }

    #[test]
    fn flag_shaped_values_are_rejected() {
        // The old scanner happily took "-g" as the cpus expression.
        let err = spec().parse(&args(&["-c", "-g", "MEM"])).unwrap_err();
        assert!(matches!(err, LikwidError::Usage(_)));
        assert!(err.to_string().contains("'-c'"));
        assert!(err.to_string().contains("'-g'"));
    }

    #[test]
    fn missing_values_and_unknown_flags_error() {
        assert!(matches!(spec().parse(&args(&["--machine"])).unwrap_err(), LikwidError::Usage(_)));
        let err = spec().parse(&args(&["-z"])).unwrap_err();
        assert!(err.to_string().contains("unknown option"));
        assert!(matches!(spec().parse(&args(&["stray"])).unwrap_err(), LikwidError::Usage(_)));
    }

    #[test]
    fn occurrences_preserve_command_line_order() {
        let parsed = spec()
            .parse(&args(&["-e", "HW_PREFETCHER", "-u", "HW_PREFETCHER", "-e", "DCU_PREFETCHER"]))
            .unwrap();
        let toggles = parsed.occurrences_of(&["-e", "-u"]);
        assert_eq!(
            toggles,
            vec![
                ("-e", Some("HW_PREFETCHER")),
                ("-u", Some("HW_PREFETCHER")),
                ("-e", Some("DCU_PREFETCHER")),
            ]
        );
        // Last occurrence wins for single-value lookups.
        assert_eq!(parsed.value("-e"), Some("DCU_PREFETCHER"));
    }

    #[test]
    fn positionals_are_collected_and_validated() {
        let many = ArgSpec::new("fig", "sizes").positional("size", "problem size", true);
        let parsed = many.parse(&args(&["32", "48"])).unwrap();
        assert_eq!(parsed.positionals(), &["32".to_string(), "48".to_string()]);

        let single = ArgSpec::new("fig", "samples").positional("samples", "sample count", false);
        assert_eq!(single.parse(&args(&["7"])).unwrap().positional_number(100).unwrap(), 7);
        assert_eq!(single.parse(&args(&[])).unwrap().positional_number(100).unwrap(), 100);
        assert!(single.parse(&args(&["7", "8"])).is_err(), "only one positional allowed");
        assert!(single.parse(&args(&["seven"])).unwrap().positional_number(100).is_err());
    }

    #[test]
    fn help_text_is_generated_from_the_spec() {
        let help = spec().help_text();
        assert!(help.starts_with("likwid-test"));
        assert!(help.contains("a test tool"));
        assert!(help.contains("-M, --machine <preset>"));
        assert!(help.contains("-O <ascii|csv|json>"));
        assert!(help.contains("-o <file>"));
        assert!(help.contains("-h, --help"));
        let parsed = spec().parse(&args(&["-h"])).unwrap();
        assert!(parsed.help_requested());
    }

    #[test]
    fn notes_append_paragraphs_after_the_flag_table() {
        let help = spec().note("A comma-separated -g list multiplexes.").help_text();
        let flags_at = help.find("-h, --help").unwrap();
        let note_at = help.find("A comma-separated -g list multiplexes.").unwrap();
        assert!(note_at > flags_at, "notes come after the options:\n{help}");
        assert!(help.ends_with("multiplexes.\n"));
    }

    #[test]
    fn interval_flags_share_one_validator() {
        let s = ArgSpec::new("t", "t").flag("-t", None, Some("interval"), "sampling interval");
        assert_eq!(s.parse(&args(&[])).unwrap().interval("-t").unwrap(), None);
        assert_eq!(s.parse(&args(&["-t", "1ms"])).unwrap().interval("-t").unwrap(), Some(1e-3));
        assert_eq!(s.parse(&args(&["-t", "250us"])).unwrap().interval("-t").unwrap(), Some(250e-6));
        for bad in ["0", "0ms", "bogus", "", "nan", "inf"] {
            let err = s.parse(&args(&["-t", bad])).unwrap().interval("-t").unwrap_err();
            assert!(matches!(err, LikwidError::Usage(_)), "'{bad}' gave {err:?}");
            assert!(err.to_string().contains("-t"), "error must name the flag: {err}");
        }
        // A leading dash never reaches the validator: the arg parser itself
        // rejects "-1ms" as an unknown flag.
        assert!(s.parse(&args(&["-t", "-1ms"])).is_err());
    }

    #[test]
    fn output_target_resolution() {
        let s = ArgSpec::new("t", "t");
        assert_eq!(
            s.parse(&args(&[])).unwrap().output().unwrap(),
            OutputTarget { format: OutputFormat::Ascii, path: None }
        );
        assert_eq!(
            s.parse(&args(&["-O", "json"])).unwrap().output().unwrap().format,
            OutputFormat::Json
        );
        let inferred = s.parse(&args(&["-o", "out.csv"])).unwrap().output().unwrap();
        assert_eq!(inferred.format, OutputFormat::Csv);
        assert_eq!(inferred.path.as_deref(), Some("out.csv"));
        // -O beats the extension.
        let both = s.parse(&args(&["-O", "ascii", "-o", "out.json"])).unwrap().output().unwrap();
        assert_eq!(both.format, OutputFormat::Ascii);
        assert!(s.parse(&args(&["-O", "xml"])).unwrap().output().is_err());
    }
}

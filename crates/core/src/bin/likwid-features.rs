//! The `likwid-features` command-line tool (simulated-machine edition).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(likwid::cli::tool_main(likwid::cli::Tool::Features, &args));
}

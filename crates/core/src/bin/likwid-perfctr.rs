//! The `likwid-perfctr` command-line tool (simulated-machine edition).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match likwid::cli::run_perfctr(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("likwid-perfctr: {e}");
            std::process::exit(1);
        }
    }
}

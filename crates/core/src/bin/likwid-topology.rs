//! The `likwid-topology` command-line tool (simulated-machine edition).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match likwid::cli::run_topology(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("likwid-topology: {e}");
            std::process::exit(1);
        }
    }
}

//! Command-line front ends of the four tools.
//!
//! The binaries in `src/bin/` are thin wrappers around [`tool_main`]; each
//! tool declares its switches once as an [`ArgSpec`] and builds a typed
//! [`Report`], which the common driver renders in the format selected with
//! `-O <ascii|csv|json>` (or inferred from the `-o <file>` extension) —
//! argument handling and output stay unit-testable without spawning
//! processes. Since the reproduction drives a *simulated* machine, every
//! tool accepts a `--machine <preset>` switch selecting one of the paper's
//! node configurations; the remaining switches mirror the original tools
//! (`-c`, `-g`, `-t`, `-s`, `-e`/`-u`, …).

use likwid_affinity::{SkipMask, ThreadingModel};
use likwid_x86_machine::{MachinePreset, Prefetcher, SimMachine};

use crate::args::{ArgSpec, OutputTarget, ParsedArgs};
use crate::error::{LikwidError, Result};
use crate::features::FeaturesTool;
use crate::perfctr::supported_groups;
use crate::pin::{PinConfig, PinTool};
use crate::report::{Body, KvEntry, Report, Row, Section, Table, Value};
use crate::topology::CpuTopology;

/// The four tools of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// `likwid-topology`.
    Topology,
    /// `likwid-perfctr`.
    Perfctr,
    /// `likwid-pin`.
    Pin,
    /// `likwid-features`.
    Features,
}

impl Tool {
    /// The binary name.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Topology => "likwid-topology",
            Tool::Perfctr => "likwid-perfctr",
            Tool::Pin => "likwid-pin",
            Tool::Features => "likwid-features",
        }
    }

    /// The declarative argument specification of the tool.
    pub fn spec(self) -> ArgSpec {
        match self {
            Tool::Topology => ArgSpec::new(
                "likwid-topology",
                "probe and report the hardware thread and cache topology",
            )
            .machine_flag()
            .flag("-c", None, None, "print extended cache parameters")
            .flag("-g", None, None, "print the cache hierarchy as ASCII art"),
            Tool::Perfctr => crate::trace::trace_flag(
                ArgSpec::new(
                    "likwid-perfctr",
                    "configure hardware performance counter measurements",
                )
                .machine_flag()
                .flag("-c", None, Some("cpus"), "hardware threads to measure")
                .flag("-g", None, Some("group|EVENT:CTR,..."), "event group or custom event set")
                .flag("-a", None, None, "list the event groups available on the machine")
                .flag(
                    "-t",
                    None,
                    Some("interval"),
                    "timeline mode: sample the counters every <interval> of virtual time (e.g. \
                     1ms)",
                )
                .flag(
                    "-S",
                    None,
                    Some("duration"),
                    "stethoscope mode: measure for <duration> of virtual time and report",
                )
                .flag(
                    "--inject",
                    None,
                    Some("spec"),
                    "inject faults into the MSR substrate (e.g. seed=7,read=0.2x3,stuck=0x186@0)",
                ),
            )
            .note(crate::perfctr::multiplex_note()),
            Tool::Pin => ArgSpec::new(
                "likwid-pin",
                "report the thread-core placement the wrapper library enforces",
            )
            .machine_flag()
            .flag("-c", None, Some("list"), "pin list expression")
            .flag("-t", None, Some("model"), "threading model (intel|gnu|posix|intel-mpi)")
            .flag("-s", None, Some("mask"), "skip mask overriding the model default")
            .flag("-n", None, Some("threads"), "number of application threads"),
            Tool::Features => {
                ArgSpec::new("likwid-features", "report and toggle switchable processor features")
                    .machine_flag()
                    .flag("-c", None, Some("core"), "core to inspect (default 0)")
                    .flag(
                        "-e",
                        None,
                        Some("NAME"),
                        "enable a prefetcher (applied in argument order)",
                    )
                    .flag(
                        "-u",
                        None,
                        Some("NAME"),
                        "disable a prefetcher (applied in argument order)",
                    )
            }
        }
    }

    /// Parse a command line and build the tool's report and output target.
    /// `--help` requests surface as `Ok(None)`.
    pub fn run(self, args: &[String]) -> Result<Option<(Report, OutputTarget)>> {
        let parsed = self.spec().parse(args)?;
        if parsed.help_requested() {
            return Ok(None);
        }
        let target = parsed.output()?;
        Ok(Some((self.build_report(&parsed)?, target)))
    }

    fn build_report(self, parsed: &ParsedArgs) -> Result<Report> {
        match self {
            Tool::Topology => topology_report_from(parsed),
            Tool::Perfctr => perfctr_report_from(parsed),
            Tool::Pin => pin_report_from(parsed),
            Tool::Features => features_report_from(parsed),
        }
    }
}

/// Binary entry point shared by the four tools: parse, build the report,
/// render it in the selected format and write it to stdout or the `-o`
/// file. Returns the process exit code.
pub fn tool_main(tool: Tool, args: &[String]) -> i32 {
    crate::args::bin_main(&tool.spec(), args, |parsed| tool.build_report(parsed))
}

/// Run a tool and render its report (the string-level front end used by the
/// tests and by embedders that do not need the typed document). Honours
/// `-o` exactly like the binaries — the rendered text is also written to
/// the file — and additionally returns it.
fn run_tool(tool: Tool, args: &[String]) -> Result<String> {
    match tool.run(args)? {
        None => Ok(tool.spec().help_text()),
        Some((report, target)) => {
            let text = target.format.render(&report);
            target.write_file_if_requested(&text)?;
            Ok(text)
        }
    }
}

/// Parse `--machine <id>` (default: the Westmere EP node of the paper).
/// Shared by the four tools and the `likwid-bench` microbenchmark harness.
pub fn parse_machine(parsed: &ParsedArgs) -> Result<MachinePreset> {
    match parsed.value("-M") {
        None => Ok(MachinePreset::WestmereEp2S),
        Some(id) => MachinePreset::from_id(id).ok_or_else(|| {
            LikwidError::Usage(format!(
                "unknown machine '{id}'; available: {}",
                MachinePreset::all().iter().map(|p| p.id()).collect::<Vec<_>>().join(", ")
            ))
        }),
    }
}

/// `likwid-topology [-c] [-g] [--machine <id>]`.
pub fn run_topology(args: &[String]) -> Result<String> {
    run_tool(Tool::Topology, args)
}

/// The typed report of a `likwid-topology` invocation.
pub fn topology_report(args: &[String]) -> Result<Report> {
    topology_report_from(&Tool::Topology.spec().parse(args)?)
}

fn topology_report_from(parsed: &ParsedArgs) -> Result<Report> {
    let machine = SimMachine::new(parse_machine(parsed)?);
    let topo = CpuTopology::probe(&machine)?;
    Ok(topo.report(parsed.has("-c"), parsed.has("-g")))
}

/// `likwid-features [-c <core>] [-e <PREFETCHER>] [-u <PREFETCHER>]`.
///
/// `-e`/`-u` toggles apply in command-line order, so `-e X -u X` leaves `X`
/// disabled and `-u X -e X` leaves it enabled.
pub fn run_features(args: &[String]) -> Result<String> {
    run_tool(Tool::Features, args)
}

/// The typed report of a `likwid-features` invocation.
pub fn features_report(args: &[String]) -> Result<Report> {
    features_report_from(&Tool::Features.spec().parse(args)?)
}

fn features_report_from(parsed: &ParsedArgs) -> Result<Report> {
    let machine = SimMachine::new(parse_machine(parsed)?);
    let tool = FeaturesTool::new(&machine);
    let cpu: usize = parsed
        .value("-c")
        .map(|v| v.parse().map_err(|_| LikwidError::Usage(format!("bad core id '{v}'"))))
        .transpose()?
        .unwrap_or(0);

    let mut actions = Vec::new();
    for (flag, value) in parsed.occurrences_of(&["-e", "-u"]) {
        let name = value.expect("-e/-u declare a value in the spec");
        let prefetcher = Prefetcher::from_cli_name(name)
            .ok_or_else(|| LikwidError::Usage(format!("unknown prefetcher '{name}'")))?;
        if flag == "-e" {
            tool.enable_prefetcher(cpu, prefetcher)?;
            actions.push(KvEntry::new(name, Value::Str("enabled".to_string())));
        } else {
            tool.disable_prefetcher(cpu, prefetcher)?;
            actions.push(KvEntry::new(name, Value::Str("disabled".to_string())));
        }
    }

    let mut report = Report::new("likwid-features");
    if !actions.is_empty() {
        report.push(Section::new("actions", Body::KeyValues(actions)));
    }
    report.extend(tool.report(cpu)?);
    Ok(report)
}

/// `likwid-pin -c <list> [-t <model>] [-s <mask>] [-n <threads>]`.
///
/// The simulated front end reports the placement the wrapper library will
/// enforce for the given number of application threads instead of exec'ing
/// a target binary.
pub fn run_pin(args: &[String]) -> Result<String> {
    run_tool(Tool::Pin, args)
}

/// The typed report of a `likwid-pin` invocation.
pub fn pin_report(args: &[String]) -> Result<Report> {
    pin_report_from(&Tool::Pin.spec().parse(args)?)
}

fn pin_report_from(parsed: &ParsedArgs) -> Result<Report> {
    let machine = SimMachine::new(parse_machine(parsed)?);
    let expression = parsed
        .value("-c")
        .ok_or_else(|| LikwidError::Usage("likwid-pin requires -c <list>".into()))?;
    let mut config = PinConfig::new(expression);
    if let Some(model) = parsed.value("-t") {
        config = config.with_model(
            ThreadingModel::from_cli_name(model)
                .ok_or_else(|| LikwidError::Usage(format!("unknown threading model '{model}'")))?,
        );
    }
    if let Some(mask) = parsed.value("-s") {
        config = config.with_skip_mask(
            SkipMask::parse(mask)
                .ok_or_else(|| LikwidError::Usage(format!("bad skip mask '{mask}'")))?,
        );
    }
    let threads: usize = match parsed.value("-n") {
        Some(v) => v.parse().map_err(|_| LikwidError::Usage(format!("bad thread count '{v}'")))?,
        // Default to one thread per pin-list slot. A malformed expression is
        // a usage error here — the old front end swallowed it and silently
        // fabricated a single-thread placement.
        None => likwid_affinity::parse_pin_list(expression, machine.topology())
            .map_err(|e| LikwidError::Usage(format!("bad pin list '{expression}': {e}")))?
            .len(),
    };

    let tool = PinTool::new(&machine, config)?;
    Ok(tool.report(threads))
}

/// `likwid-perfctr -c <cpus> -g <group> [-a] [-t <interval>] [-S <duration>]
/// [--machine <preset>]`.
///
/// Wrapper mode against a real target process is replaced by reporting the
/// measurement configuration (group resolution, counter assignment, socket
/// locks); the full measurement pipeline is exercised by the workload and
/// benchmark crates, which drive the counting engine. The timeline (`-t`)
/// and stethoscope (`-S`) modes observe the built-in synthetic
/// phase-structured demo application
/// ([`crate::perfctr::timeline::demo_slice`]), since the simulated tool has
/// no real process to attach to.
pub fn run_perfctr(args: &[String]) -> Result<String> {
    run_tool(Tool::Perfctr, args)
}

/// The typed report of a `likwid-perfctr` invocation.
pub fn perfctr_report(args: &[String]) -> Result<Report> {
    perfctr_report_from(&Tool::Perfctr.spec().parse(args)?)
}

fn perfctr_report_from(parsed: &ParsedArgs) -> Result<Report> {
    let machine = SimMachine::new(parse_machine(parsed)?);
    apply_fault_injection(&machine, parsed)?;

    if parsed.has("-a") {
        let mut groups = Table::plain(vec!["group", "description"]);
        for g in supported_groups(machine.arch()) {
            groups.push(
                Row::new(vec![
                    Value::Str(g.name().to_string()),
                    Value::Str(g.description().to_string()),
                ])
                .with_ascii(format!("{:10} {}", g.name(), g.description())),
            );
        }
        let mut report = Report::new("likwid-perfctr");
        report.push(
            Section::new("groups", Body::Table(groups)).with_heading("Available event groups:"),
        );
        return Ok(report);
    }

    let cpus_expr = parsed
        .value("-c")
        .ok_or_else(|| LikwidError::Usage("likwid-perfctr requires -c <cpus>".into()))?;
    let cpus = likwid_affinity::parse_pin_list(cpus_expr, machine.topology())?;
    let group_arg = parsed
        .value("-g")
        .ok_or_else(|| LikwidError::Usage("likwid-perfctr requires -g <group>".into()))?;

    let table = likwid_perf_events::tables::for_arch(machine.arch());
    let spec = crate::perfctr::parse_measurement_spec(group_arg, &table)?;

    if parsed.has("-t") && parsed.has("-S") {
        return Err(LikwidError::Usage("choose one of -t (timeline) and -S (stethoscope)".into()));
    }
    if let Some(interval) = parsed.interval("-t")? {
        let config = crate::perfctr::PerfCtrConfig { cpus: cpus.clone(), spec };
        let result = crate::perfctr::timeline::run_demo_timeline(
            &machine,
            config,
            interval,
            crate::perfctr::timeline::DEMO_DURATION_S,
        )?;
        let mut report = Report::new("likwid-perfctr");
        report.push(session_section(&machine, group_arg, &cpus, &result.socket_lock_owners));
        report.extend(result.report());
        return Ok(report);
    }
    if let Some(duration) = parsed.interval("-S")? {
        let config = crate::perfctr::PerfCtrConfig { cpus: cpus.clone(), spec };
        let result = crate::perfctr::timeline::run_demo_stethoscope(&machine, config, duration)?;
        let mut report = Report::new("likwid-perfctr");
        report.push(session_section(&machine, group_arg, &cpus, &result.socket_lock_owners));
        report.extend(result.stethoscope_report());
        return Ok(report);
    }

    let session = crate::perfctr::PerfCtr::new(
        &machine,
        crate::perfctr::PerfCtrConfig { cpus: cpus.clone(), spec },
    )?;
    let mut report = Report::new("likwid-perfctr");
    report.push(session_section(
        &machine,
        group_arg,
        session.cpus(),
        &session.socket_lock_owners(),
    ));
    Ok(report)
}

/// Apply a `--inject` fault plan to the simulated machine before any MSR
/// device is opened. The measurement then has to heal or degrade
/// gracefully; a malformed spec is the only way the flag itself errors.
fn apply_fault_injection(machine: &SimMachine, parsed: &ParsedArgs) -> Result<()> {
    if let Some(spec) = parsed.value("--inject") {
        let plan = likwid_x86_machine::FaultPlan::parse(spec)
            .map_err(|e| LikwidError::Usage(format!("bad --inject spec: {e}")))?;
        machine.inject_faults(plan);
    }
    Ok(())
}

/// The `session` key/value section shared by the perfctr modes: machine
/// identification, the measured group and threads, and the session's
/// socket-lock owners (as assigned by [`crate::perfctr::PerfCtr`] — the
/// single source of truth for the lock rule).
fn session_section(
    machine: &SimMachine,
    group_arg: &str,
    cpus: &[usize],
    socket_lock_owners: &[usize],
) -> Section {
    let mut entries = vec![
        KvEntry::new("CPU type", Value::Str(machine.arch().display_name().to_string())),
        KvEntry::new("CPU clock", Value::Real(machine.clock().ghz()))
            .with_ascii(format!("CPU clock: {}", machine.clock().display())),
        KvEntry::new("Measuring group", Value::Str(group_arg.to_string()))
            .with_ascii(format!("Measuring group {group_arg}")),
        KvEntry::new("Measured hardware threads", Value::Str(format!("{cpus:?}"))),
    ];
    for &cpu in socket_lock_owners {
        entries.push(
            KvEntry::new("Socket lock owner", Value::CpuId(cpu))
                .with_ascii(format!("Socket lock owner: hardware thread {cpu}")),
        );
    }
    Section::new("session", Body::KeyValues(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::OutputFormat;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn topology_cli_produces_the_listing() {
        let out = run_topology(&args(&["--machine", "westmere-ep-2s", "-c"])).unwrap();
        assert!(out.contains("Sockets: 2"));
        assert!(out.contains("Shared among 12 threads"));
        let with_art = run_topology(&args(&["-g"])).unwrap();
        assert!(with_art.contains("Socket 0:"));
        assert!(with_art.contains("12MB"));
    }

    #[test]
    fn topology_cli_rejects_unknown_machines() {
        assert!(run_topology(&args(&["--machine", "sparc"])).is_err());
        assert!(run_topology(&args(&["--machine"])).is_err());
    }

    #[test]
    fn features_cli_toggles_prefetchers() {
        let out = run_features(&args(&["--machine", "core2-duo", "-u", "CL_PREFETCHER"])).unwrap();
        assert!(out.contains("CL_PREFETCHER: disabled"));
        assert!(out.contains("Adjacent Cache Line Prefetch: disabled"));
        assert!(run_features(&args(&["--machine", "core2-duo", "-u", "BOGUS"])).is_err());
    }

    #[test]
    fn features_toggles_apply_in_argument_order() {
        // enable-then-disable must end disabled…
        let out = run_features(&args(&[
            "--machine",
            "core2-duo",
            "-e",
            "CL_PREFETCHER",
            "-u",
            "CL_PREFETCHER",
        ]))
        .unwrap();
        assert!(out.contains("Adjacent Cache Line Prefetch: disabled"));
        let enabled_at = out.find("CL_PREFETCHER: enabled").expect("first action reported");
        let disabled_at = out.find("CL_PREFETCHER: disabled").expect("second action reported");
        assert!(enabled_at < disabled_at, "actions report in argument order");

        // …and disable-then-enable must end enabled (the old front end
        // always applied -u before -e and got this wrong).
        let out = run_features(&args(&[
            "--machine",
            "core2-duo",
            "-u",
            "CL_PREFETCHER",
            "-e",
            "CL_PREFETCHER",
        ]))
        .unwrap();
        assert!(out.contains("Adjacent Cache Line Prefetch: enabled"));
    }

    #[test]
    fn pin_cli_reports_the_placement() {
        let out =
            run_pin(&args(&["--machine", "westmere-ep-2s", "-c", "0-3", "-t", "intel", "-n", "4"]))
                .unwrap();
        assert!(out.contains("Skip mask: 0x1"));
        assert!(out.contains("thread 3 -> hardware thread 3"));
        assert!(out.contains("KMP_AFFINITY=disabled"));
        assert!(run_pin(&args(&["-t", "intel"])).is_err(), "-c is mandatory");
    }

    #[test]
    fn pin_cli_rejects_malformed_pin_lists_without_thread_count() {
        // The old front end swallowed the parse error and defaulted to one
        // thread; the expression must be a usage error instead.
        let err = run_pin(&args(&["--machine", "westmere-ep-2s", "-c", "S9:frob"])).unwrap_err();
        assert!(matches!(err, LikwidError::Usage(_)), "got {err:?}");
        assert!(err.to_string().contains("S9:frob"));
    }

    #[test]
    fn perfctr_cli_lists_groups_and_validates_specs() {
        let listing = run_perfctr(&args(&["-a", "--machine", "westmere-ep-2s"])).unwrap();
        assert!(listing.contains("FLOPS_DP"));
        assert!(listing.contains("Main memory bandwidth"));

        let out =
            run_perfctr(&args(&["--machine", "nehalem-ep-2s", "-c", "0-7", "-g", "MEM"])).unwrap();
        assert!(out.contains("Measuring group MEM"));
        assert!(out.contains("Socket lock owner: hardware thread 0"));
        assert!(out.contains("Socket lock owner: hardware thread 4"));

        assert!(run_perfctr(&args(&["-c", "0", "-g", "NOT_A_GROUP"])).is_err());
        let custom = run_perfctr(&args(&[
            "--machine",
            "core2-quad",
            "-c",
            "1",
            "-g",
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1",
        ]))
        .unwrap();
        assert!(custom.contains("Measured hardware threads: [1]"));
    }

    #[test]
    fn perfctr_timeline_mode_reports_per_interval_series() {
        let out = run_perfctr(&args(&[
            "--machine",
            "westmere-ep-2s",
            "-c",
            "0-1",
            "-g",
            "MEM",
            "-t",
            "1ms",
        ]))
        .unwrap();
        assert!(out.contains("Measuring group MEM"));
        assert!(out.contains("Timeline MEM (interval 0.001 s):"));
        assert!(out.contains("time[s]"));
        assert!(out.contains("Memory bandwidth [MBytes/s] core 0"));
        assert!(out.contains("Aggregate MEM:"));
        // The typed document carries the series.
        let report = perfctr_report(&args(&[
            "--machine",
            "westmere-ep-2s",
            "-c",
            "0-1",
            "-g",
            "MEM",
            "-t",
            "1ms",
        ]))
        .unwrap();
        let crate::report::Body::TimeSeries(ts) =
            &report.section("timeseries.MEM").expect("series section").body
        else {
            panic!("not a timeseries body");
        };
        assert_eq!(ts.timestamps.len(), 10, "10 ms demo at 1 ms sampling");
    }

    #[test]
    fn perfctr_stethoscope_mode_reports_one_aggregate() {
        let report = perfctr_report(&args(&[
            "--machine",
            "nehalem-ep-2s",
            "-c",
            "0-3",
            "-g",
            "FLOPS_DP",
            "-S",
            "5ms",
        ]))
        .unwrap();
        assert!(
            (report.value("stethoscope", "Duration [s]").unwrap().as_real().unwrap() - 5e-3).abs()
                < 1e-12
        );
        assert!(report.section("timeseries.FLOPS_DP").is_none(), "stethoscope has no series");
        let runtime = report
            .table("aggregate.FLOPS_DP.metrics")
            .expect("metrics table")
            .cell("Runtime [s]", "core 0")
            .and_then(|v| v.as_real())
            .unwrap();
        assert!((runtime - 5e-3).abs() < 1e-4, "the window is the runtime, got {runtime}");
    }

    #[test]
    fn perfctr_rejects_bad_timeline_and_stethoscope_intervals() {
        // Zero, negative and unparsable intervals are usage errors, not
        // panics or endless sampling loops.
        for bad in ["0", "0ms", "bogus", "1xs"] {
            for flag in ["-t", "-S"] {
                let err = run_perfctr(&args(&["-c", "0", "-g", "MEM", flag, bad])).unwrap_err();
                assert!(matches!(err, LikwidError::Usage(_)), "{flag} {bad}: {err:?}");
            }
        }
        // Negative values look like flags to the parser — still a usage error.
        let err = run_perfctr(&args(&["-c", "0", "-g", "MEM", "-t", "-1ms"])).unwrap_err();
        assert!(matches!(err, LikwidError::Usage(_)), "got {err:?}");
        // Both modes at once is ambiguous.
        let err =
            run_perfctr(&args(&["-c", "0", "-g", "MEM", "-t", "1ms", "-S", "2ms"])).unwrap_err();
        assert!(matches!(err, LikwidError::Usage(_)), "got {err:?}");
    }

    #[test]
    fn perfctr_cli_rejects_flags_posing_as_values() {
        // `likwid-perfctr -c -g MEM` used to take "-g" as the cpus
        // expression; it must be a usage error.
        let err = run_perfctr(&args(&["-c", "-g", "MEM"])).unwrap_err();
        assert!(matches!(err, LikwidError::Usage(_)), "got {err:?}");
        assert!(err.to_string().contains("'-c'"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        for tool in [Tool::Topology, Tool::Perfctr, Tool::Pin, Tool::Features] {
            let err = run_tool(tool, &args(&["--frobnicate"])).unwrap_err();
            assert!(err.to_string().contains("unknown option"), "{tool:?}: {err}");
        }
    }

    #[test]
    fn help_flags_short_circuit() {
        assert!(run_topology(&args(&["-h"])).unwrap().contains("likwid-topology"));
        assert!(run_pin(&args(&["--help"])).unwrap().contains("likwid-pin"));
        assert!(run_perfctr(&args(&["-h"])).unwrap().contains("likwid-perfctr"));
        assert!(run_features(&args(&["-h"])).unwrap().contains("likwid-features"));
        // Help mentions the output switches every binary carries.
        assert!(run_topology(&args(&["-h"])).unwrap().contains("-O <ascii|csv|json>"));
    }

    #[test]
    fn output_format_switch_selects_the_renderer() {
        let base = ["--machine", "westmere-ep-2s", "-c"];
        let ascii = run_topology(&args(&base)).unwrap();
        let mut with_o = base.to_vec();
        with_o.extend(["-O", "ascii"]);
        assert_eq!(run_topology(&args(&with_o)).unwrap(), ascii, "-O ascii is the default output");

        let mut json_args = base.to_vec();
        json_args.extend(["-O", "json"]);
        let json = run_topology(&args(&json_args)).unwrap();
        let parsed = Report::from_json(&json).expect("valid JSON document");
        assert_eq!(parsed, topology_report(&args(&base)).unwrap());
        assert_eq!(parsed.value("thread-topology", "Sockets").unwrap().as_count(), Some(2));

        let mut csv_args = base.to_vec();
        csv_args.extend(["-O", "csv"]);
        let csv = run_topology(&args(&csv_args)).unwrap();
        assert!(csv.contains("SECTION,thread-topology"));
        assert!(csv.contains("Sockets,2"));

        let mut bad = base.to_vec();
        bad.extend(["-O", "xml"]);
        assert!(run_topology(&args(&bad)).is_err());
    }

    #[test]
    fn output_format_is_inferred_from_the_file_extension() {
        let parsed = Tool::Topology.spec().parse(&args(&["-o", "topo.json"])).unwrap();
        assert_eq!(parsed.output().unwrap().format, OutputFormat::Json);
        assert_eq!(parsed.output().unwrap().path.as_deref(), Some("topo.json"));
    }

    #[test]
    fn string_front_ends_honour_the_output_file() {
        let path = std::env::temp_dir().join("likwid-cli-output-file-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let argv = vec!["-c".to_string(), "-o".to_string(), path_str.clone()];
        let text = run_topology(&argv).unwrap();
        let on_disk = std::fs::read_to_string(&path).expect("-o must write the file");
        assert_eq!(on_disk, text, "file contents equal the returned text");
        assert!(Report::from_json(&on_disk).is_ok(), "format inferred from .json extension");
        std::fs::remove_file(&path).ok();

        let bad = vec!["-o".to_string(), "/nonexistent-dir/impossible.json".to_string()];
        assert!(matches!(run_topology(&bad).unwrap_err(), LikwidError::Output(_)));
    }

    #[test]
    fn typed_reports_expose_tool_results() {
        let report =
            perfctr_report(&args(&["--machine", "nehalem-ep-2s", "-c", "0-7", "-g", "MEM"]))
                .unwrap();
        let owners: Vec<usize> = report
            .values("session", "Socket lock owner")
            .iter()
            .filter_map(|v| v.as_cpu_id())
            .collect();
        assert_eq!(owners, vec![0, 4]);

        let report =
            pin_report(&args(&["--machine", "westmere-ep-2s", "-c", "0-3", "-n", "4"])).unwrap();
        let placement = report.table("placement").unwrap();
        assert_eq!(placement.num_rows(), 4);
        assert_eq!(placement.rows[3].values[1].as_cpu_id(), Some(3));
    }
}

//! Command-line front ends of the four tools.
//!
//! The binaries in `src/bin/` are thin wrappers around the functions here,
//! which parse arguments and produce the tool output as a string (so the
//! argument handling is unit-testable without spawning processes). Since
//! the reproduction drives a *simulated* machine, every tool accepts a
//! `--machine <preset>` switch selecting one of the paper's node
//! configurations; the remaining switches mirror the original tools
//! (`-c`, `-g`, `-t`, `-s`, `-e`/`-u`, …).

use likwid_affinity::{SkipMask, ThreadingModel};
use likwid_x86_machine::{MachinePreset, Prefetcher, SimMachine};

use crate::error::{LikwidError, Result};
use crate::features::FeaturesTool;
use crate::perfctr::{supported_groups, EventGroupKind};
use crate::pin::{PinConfig, PinTool};
use crate::topology::CpuTopology;

/// Parse `--machine <id>` (default: the Westmere EP node of the paper).
fn parse_machine(args: &[String]) -> Result<MachinePreset> {
    let mut machine = MachinePreset::WestmereEp2S;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--machine" || arg == "-M" {
            let id = iter
                .next()
                .ok_or_else(|| LikwidError::Usage("--machine needs an argument".into()))?;
            machine = MachinePreset::from_id(id).ok_or_else(|| {
                LikwidError::Usage(format!(
                    "unknown machine '{id}'; available: {}",
                    MachinePreset::all().iter().map(|p| p.id()).collect::<Vec<_>>().join(", ")
                ))
            })?;
        }
    }
    Ok(machine)
}

/// Fetch the value following a flag.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Whether a boolean flag is present.
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// `likwid-topology [-c] [-g] [--machine <id>]`.
pub fn run_topology(args: &[String]) -> Result<String> {
    if has_flag(args, "-h") || has_flag(args, "--help") {
        return Ok(topology_help());
    }
    let machine = SimMachine::new(parse_machine(args)?);
    let topo = CpuTopology::probe(&machine)?;
    let mut out = topo.render_text(has_flag(args, "-c"));
    if has_flag(args, "-g") {
        for socket in 0..topo.sockets {
            out.push_str(&format!("Socket {socket}:\n"));
            out.push_str(&topo.render_ascii_socket(socket));
        }
    }
    Ok(out)
}

fn topology_help() -> String {
    "likwid-topology [-c] [-g] [--machine <preset>]\n\
     -c  print extended cache parameters\n\
     -g  print the cache hierarchy as ASCII art\n"
        .to_string()
}

/// `likwid-features [-c <core>] [-e <PREFETCHER>] [-u <PREFETCHER>]`.
pub fn run_features(args: &[String]) -> Result<String> {
    if has_flag(args, "-h") || has_flag(args, "--help") {
        return Ok("likwid-features [-c <core>] [-e NAME] [-u NAME] [--machine <preset>]\n".into());
    }
    let machine = SimMachine::new(parse_machine(args)?);
    let tool = FeaturesTool::new(&machine);
    let cpu: usize = flag_value(args, "-c")
        .map(|v| v.parse().map_err(|_| LikwidError::Usage(format!("bad core id '{v}'"))))
        .transpose()?
        .unwrap_or(0);

    let mut out = String::new();
    if let Some(name) = flag_value(args, "-u") {
        let prefetcher = Prefetcher::from_cli_name(name)
            .ok_or_else(|| LikwidError::Usage(format!("unknown prefetcher '{name}'")))?;
        tool.disable_prefetcher(cpu, prefetcher)?;
        out.push_str(&format!("{}: disabled\n", name));
    }
    if let Some(name) = flag_value(args, "-e") {
        let prefetcher = Prefetcher::from_cli_name(name)
            .ok_or_else(|| LikwidError::Usage(format!("unknown prefetcher '{name}'")))?;
        tool.enable_prefetcher(cpu, prefetcher)?;
        out.push_str(&format!("{}: enabled\n", name));
    }
    out.push_str(&tool.render(cpu)?);
    Ok(out)
}

/// `likwid-pin -c <list> [-t <model>] [-s <mask>] [-n <threads>]`.
///
/// The simulated front end reports the placement the wrapper library will
/// enforce for the given number of application threads instead of exec'ing
/// a target binary.
pub fn run_pin(args: &[String]) -> Result<String> {
    if has_flag(args, "-h") || has_flag(args, "--help") {
        return Ok(
            "likwid-pin -c <list> [-t intel|gnu|posix|intel-mpi] [-s <mask>] [-n <threads>] [--machine <preset>]\n"
                .into(),
        );
    }
    let machine = SimMachine::new(parse_machine(args)?);
    let expression = flag_value(args, "-c")
        .ok_or_else(|| LikwidError::Usage("likwid-pin requires -c <list>".into()))?;
    let mut config = PinConfig::new(expression);
    if let Some(model) = flag_value(args, "-t") {
        config = config.with_model(
            ThreadingModel::from_cli_name(model)
                .ok_or_else(|| LikwidError::Usage(format!("unknown threading model '{model}'")))?,
        );
    }
    if let Some(mask) = flag_value(args, "-s") {
        config = config.with_skip_mask(
            SkipMask::parse(mask)
                .ok_or_else(|| LikwidError::Usage(format!("bad skip mask '{mask}'")))?,
        );
    }
    let threads: usize = flag_value(args, "-n")
        .map(|v| v.parse().map_err(|_| LikwidError::Usage(format!("bad thread count '{v}'"))))
        .transpose()?
        .unwrap_or_else(|| parse_pin_list_len(&machine, expression));

    let tool = PinTool::new(&machine, config)?;
    let env = tool.environment();
    let mut out = String::new();
    out.push_str(&format!("Pin list: {}\n", env.likwid_pin));
    out.push_str(&format!("Skip mask: {}\n", env.likwid_skip));
    out.push_str(&format!("KMP_AFFINITY={}\n", env.kmp_affinity));
    out.push_str(&format!("LD_PRELOAD={}\n", env.ld_preload));
    out.push_str(&format!("Placement for {threads} application threads:\n"));
    for (i, cpu) in tool.worker_placement(threads).iter().enumerate() {
        match cpu {
            Some(c) => out.push_str(&format!("  thread {i} -> hardware thread {c}\n")),
            None => out.push_str(&format!("  thread {i} -> UNPINNED (pin list exhausted)\n")),
        }
    }
    Ok(out)
}

fn parse_pin_list_len(machine: &SimMachine, expression: &str) -> usize {
    likwid_affinity::parse_pin_list(expression, machine.topology()).map(|l| l.len()).unwrap_or(1)
}

/// `likwid-perfctr -c <cpus> -g <group> [-a] [--machine <preset>]`.
///
/// Wrapper mode against a real target process is replaced by reporting the
/// measurement configuration (group resolution, counter assignment, socket
/// locks); the full measurement pipeline is exercised by the workload and
/// benchmark crates, which drive the counting engine.
pub fn run_perfctr(args: &[String]) -> Result<String> {
    if has_flag(args, "-h") || has_flag(args, "--help") {
        return Ok(
            "likwid-perfctr -c <cpus> -g <group|EVENT:CTR,…> [-a] [--machine <preset>]\n".into()
        );
    }
    let machine = SimMachine::new(parse_machine(args)?);

    if has_flag(args, "-a") {
        let mut out = String::from("Available event groups:\n");
        for g in supported_groups(machine.arch()) {
            out.push_str(&format!("{:10} {}\n", g.name(), g.description()));
        }
        return Ok(out);
    }

    let cpus_expr = flag_value(args, "-c")
        .ok_or_else(|| LikwidError::Usage("likwid-perfctr requires -c <cpus>".into()))?;
    let cpus = likwid_affinity::parse_pin_list(cpus_expr, machine.topology())?;
    let group_arg = flag_value(args, "-g")
        .ok_or_else(|| LikwidError::Usage("likwid-perfctr requires -g <group>".into()))?;

    let table = likwid_perf_events::tables::for_arch(machine.arch());
    let spec = if let Some(kind) = EventGroupKind::parse(group_arg) {
        crate::perfctr::MeasurementSpec::Group(kind)
    } else if group_arg.contains(':') {
        crate::perfctr::MeasurementSpec::Custom(crate::perfctr::parse_event_spec(
            group_arg, &table,
        )?)
    } else {
        return Err(LikwidError::UnknownGroup(group_arg.to_string()));
    };

    let session = crate::perfctr::PerfCtr::new(
        &machine,
        crate::perfctr::PerfCtrConfig { cpus: cpus.clone(), spec },
    )?;
    let mut out = String::new();
    out.push_str(&format!("CPU type: {}\n", machine.arch().display_name()));
    out.push_str(&format!("CPU clock: {}\n", machine.clock().display()));
    out.push_str(&format!("Measuring group {group_arg}\n"));
    out.push_str(&format!("Measured hardware threads: {cpus:?}\n"));
    for &cpu in session.cpus() {
        if session.owns_socket_lock(cpu) {
            out.push_str(&format!("Socket lock owner: hardware thread {cpu}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn topology_cli_produces_the_listing() {
        let out = run_topology(&args(&["--machine", "westmere-ep-2s", "-c"])).unwrap();
        assert!(out.contains("Sockets: 2"));
        assert!(out.contains("Shared among 12 threads"));
        let with_art = run_topology(&args(&["-g"])).unwrap();
        assert!(with_art.contains("Socket 0:"));
        assert!(with_art.contains("12MB"));
    }

    #[test]
    fn topology_cli_rejects_unknown_machines() {
        assert!(run_topology(&args(&["--machine", "sparc"])).is_err());
        assert!(run_topology(&args(&["--machine"])).is_err());
    }

    #[test]
    fn features_cli_toggles_prefetchers() {
        let out = run_features(&args(&["--machine", "core2-duo", "-u", "CL_PREFETCHER"])).unwrap();
        assert!(out.contains("CL_PREFETCHER: disabled"));
        assert!(out.contains("Adjacent Cache Line Prefetch: disabled"));
        assert!(run_features(&args(&["--machine", "core2-duo", "-u", "BOGUS"])).is_err());
    }

    #[test]
    fn pin_cli_reports_the_placement() {
        let out =
            run_pin(&args(&["--machine", "westmere-ep-2s", "-c", "0-3", "-t", "intel", "-n", "4"]))
                .unwrap();
        assert!(out.contains("Skip mask: 0x1"));
        assert!(out.contains("thread 3 -> hardware thread 3"));
        assert!(out.contains("KMP_AFFINITY=disabled"));
        assert!(run_pin(&args(&["-t", "intel"])).is_err(), "-c is mandatory");
    }

    #[test]
    fn perfctr_cli_lists_groups_and_validates_specs() {
        let listing = run_perfctr(&args(&["-a", "--machine", "westmere-ep-2s"])).unwrap();
        assert!(listing.contains("FLOPS_DP"));
        assert!(listing.contains("Main memory bandwidth"));

        let out =
            run_perfctr(&args(&["--machine", "nehalem-ep-2s", "-c", "0-7", "-g", "MEM"])).unwrap();
        assert!(out.contains("Measuring group MEM"));
        assert!(out.contains("Socket lock owner: hardware thread 0"));
        assert!(out.contains("Socket lock owner: hardware thread 4"));

        assert!(run_perfctr(&args(&["-c", "0", "-g", "NOT_A_GROUP"])).is_err());
        let custom = run_perfctr(&args(&[
            "--machine",
            "core2-quad",
            "-c",
            "1",
            "-g",
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1",
        ]))
        .unwrap();
        assert!(custom.contains("Measured hardware threads: [1]"));
    }

    #[test]
    fn help_flags_short_circuit() {
        assert!(run_topology(&args(&["-h"])).unwrap().contains("likwid-topology"));
        assert!(run_pin(&args(&["--help"])).unwrap().contains("likwid-pin"));
        assert!(run_perfctr(&args(&["-h"])).unwrap().contains("likwid-perfctr"));
        assert!(run_features(&args(&["-h"])).unwrap().contains("likwid-features"));
    }
}

//! Error type of the tool suite.

use likwid_x86_machine::MachineError;

/// Errors surfaced by the LIKWID tools.
#[derive(Debug, Clone, PartialEq)]
pub enum LikwidError {
    /// A machine interface (cpuid / MSR) failed.
    Machine(MachineError),
    /// Counter programming failed.
    PerfMon(String),
    /// An unknown event name was given on the command line.
    UnknownEvent(String),
    /// An unknown event group was requested.
    UnknownGroup(String),
    /// An unknown counter name was used in an event specification.
    UnknownCounter(String),
    /// The requested event group is not available on this architecture.
    GroupUnsupported {
        /// Group name.
        group: String,
        /// Architecture display name.
        arch: String,
    },
    /// More events requested than counters available (and multiplexing off).
    NotEnoughCounters {
        /// Events requested.
        requested: usize,
        /// Counters available.
        available: usize,
    },
    /// A pin expression could not be parsed or applied.
    Pin(String),
    /// Marker API misuse (nesting, stopping a region that was not started, …).
    Marker(String),
    /// Measurement-session misuse (starting twice, reading before start,
    /// group switching without multiplexing, …).
    Session(String),
    /// A derived-metric formula failed to parse or evaluate.
    Formula(String),
    /// Command-line usage error.
    Usage(String),
    /// A malformed or unsatisfiable daemon-protocol request (unknown
    /// preset, unknown group, malformed pin list, oversized cpu set, bad
    /// interval). Always answered with a structured error frame; the
    /// session broker stays healthy.
    Protocol(String),
    /// Writing the rendered output failed.
    Output(String),
    /// The feature is not available on this CPU (e.g. prefetcher control on AMD).
    Unsupported(String),
}

impl std::fmt::Display for LikwidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LikwidError::Machine(e) => write!(f, "machine access failed: {e}"),
            LikwidError::PerfMon(e) => write!(f, "counter programming failed: {e}"),
            LikwidError::UnknownEvent(e) => write!(f, "unknown event '{e}'"),
            LikwidError::UnknownGroup(g) => write!(f, "unknown event group '{g}'"),
            LikwidError::UnknownCounter(c) => write!(f, "unknown counter '{c}'"),
            LikwidError::GroupUnsupported { group, arch } => {
                write!(f, "event group '{group}' is not supported on {arch}")
            }
            LikwidError::NotEnoughCounters { requested, available } => write!(
                f,
                "{requested} events requested but only {available} counters available (use multiplexing)"
            ),
            LikwidError::Pin(e) => write!(f, "pinning failed: {e}"),
            LikwidError::Marker(e) => write!(f, "marker API misuse: {e}"),
            LikwidError::Session(e) => write!(f, "session misuse: {e}"),
            LikwidError::Formula(e) => write!(f, "metric formula error: {e}"),
            LikwidError::Usage(e) => write!(f, "usage error: {e}"),
            LikwidError::Protocol(e) => write!(f, "protocol error: {e}"),
            LikwidError::Output(e) => write!(f, "output error: {e}"),
            LikwidError::Unsupported(e) => write!(f, "not supported: {e}"),
        }
    }
}

impl std::error::Error for LikwidError {}

impl From<MachineError> for LikwidError {
    fn from(e: MachineError) -> Self {
        LikwidError::Machine(e)
    }
}

impl From<likwid_perf_events::PerfMonError> for LikwidError {
    fn from(e: likwid_perf_events::PerfMonError) -> Self {
        LikwidError::PerfMon(e.to_string())
    }
}

impl From<likwid_affinity::PinListError> for LikwidError {
    fn from(e: likwid_affinity::PinListError) -> Self {
        LikwidError::Pin(e.to_string())
    }
}

/// Result alias for the tool suite.
pub type Result<T> = std::result::Result<T, LikwidError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LikwidError::NotEnoughCounters { requested: 4, available: 2 };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('2'));
        let e = LikwidError::GroupUnsupported { group: "MEM".into(), arch: "Core 2".into() };
        assert!(e.to_string().contains("MEM"));
        assert!(e.to_string().contains("Core 2"));
        let e = LikwidError::Session("start() called twice".into());
        assert!(e.to_string().starts_with("session misuse: "));
        let e = LikwidError::Protocol("unknown machine 'pdp11'".into());
        assert!(e.to_string().starts_with("protocol error: "));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: LikwidError = MachineError::NoSuchCpu { cpu: 3, available: 2 }.into();
        assert!(matches!(e, LikwidError::Machine(_)));
    }
}

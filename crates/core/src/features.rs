//! `likwid-features`: viewing and toggling switchable processor features.
//!
//! On Core 2 class processors the hardware prefetchers are controlled by
//! bits in the `IA32_MISC_ENABLE` MSR; the tool displays the state of those
//! bits (plus a handful of other feature flags) and can enable or disable
//! the four prefetchers. The paper notes that this currently only works on
//! Intel Core 2 — other architectures report their feature state but reject
//! toggling, which is reproduced here.

use likwid_x86_machine::{
    CpuFeature, FeatureState, Microarch, Msr, MsrPermission, Prefetcher, SimMachine, Vendor,
};

use crate::error::{LikwidError, Result};
use crate::report::{Ascii, Body, KvEntry, Render, Report, Section, Value};

/// The `likwid-features` tool bound to one machine.
pub struct FeaturesTool<'m> {
    machine: &'m SimMachine,
}

impl<'m> FeaturesTool<'m> {
    /// Create the tool for a machine.
    pub fn new(machine: &'m SimMachine) -> Self {
        FeaturesTool { machine }
    }

    /// Whether prefetcher toggling is supported on this CPU (Intel Core 2 in
    /// the paper's version of the tool).
    pub fn can_toggle(&self) -> bool {
        self.machine.arch() == Microarch::Core2
    }

    /// The raw `IA32_MISC_ENABLE` value of a core.
    pub fn misc_enable(&self, cpu: usize) -> Result<u64> {
        if self.machine.vendor() != Vendor::Intel {
            return Err(LikwidError::Unsupported(
                "IA32_MISC_ENABLE exists only on Intel processors".into(),
            ));
        }
        Ok(self.machine.msr(cpu, MsrPermission::ReadOnly)?.read(Msr::IA32_MISC_ENABLE)?)
    }

    /// The state of every reportable feature on a core, in output order.
    pub fn feature_states(&self, cpu: usize) -> Result<Vec<(CpuFeature, FeatureState)>> {
        let misc = self.misc_enable(cpu)?;
        Ok(CpuFeature::all().iter().map(|&f| (f, f.state_from_misc_enable(misc))).collect())
    }

    /// The state of one prefetcher on a core.
    pub fn prefetcher_enabled(&self, cpu: usize, prefetcher: Prefetcher) -> Result<bool> {
        Ok(prefetcher.is_enabled(self.misc_enable(cpu)?))
    }

    /// Enable a prefetcher (`likwid-features -e <NAME>`).
    pub fn enable_prefetcher(&self, cpu: usize, prefetcher: Prefetcher) -> Result<()> {
        self.set_prefetcher(cpu, prefetcher, true)
    }

    /// Disable a prefetcher (`likwid-features -u <NAME>`).
    pub fn disable_prefetcher(&self, cpu: usize, prefetcher: Prefetcher) -> Result<()> {
        self.set_prefetcher(cpu, prefetcher, false)
    }

    fn set_prefetcher(&self, cpu: usize, prefetcher: Prefetcher, enable: bool) -> Result<()> {
        if !self.can_toggle() {
            return Err(LikwidError::Unsupported(format!(
                "prefetcher control is only implemented for Intel Core 2 (this is {})",
                self.machine.arch().display_name()
            )));
        }
        let dev = self.machine.msr(cpu, MsrPermission::ReadWrite)?;
        let bit = prefetcher.disable_bit();
        if enable {
            dev.update(Msr::IA32_MISC_ENABLE, 0, bit)?;
        } else {
            dev.update(Msr::IA32_MISC_ENABLE, bit, 0)?;
        }
        Ok(())
    }

    /// Build the structured feature report for one core.
    pub fn report(&self, cpu: usize) -> Result<Report> {
        let mut report = Report::new("likwid-features");
        report.push(
            Section::new(
                "identification",
                Body::KeyValues(vec![
                    KvEntry::new("CPU name", Value::Str(self.machine.preset().brand().to_string())),
                    KvEntry::new("CPU core id", Value::CpuId(cpu)),
                ]),
            )
            .with_rule_before(),
        );
        let entries = self
            .feature_states(cpu)?
            .into_iter()
            .map(|(feature, state)| {
                KvEntry::new(
                    feature.display_name().to_string(),
                    Value::Str(state.display().to_string()),
                )
            })
            .collect();
        report.push(
            Section::new("features", Body::KeyValues(entries)).with_rule_before().with_rule_after(),
        );
        Ok(report)
    }

    /// Render the report for one core, in the style of the paper's listing.
    pub fn render(&self, cpu: usize) -> Result<String> {
        Ok(Ascii.render(&self.report(cpu)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn report_matches_the_paper_listing_states() {
        let machine = SimMachine::new(MachinePreset::Core2Duo);
        let tool = FeaturesTool::new(&machine);
        let rendered = tool.render(0).unwrap();
        assert!(rendered.contains("Fast-Strings: enabled"));
        assert!(rendered.contains("Hardware Prefetcher: enabled"));
        assert!(rendered.contains("PEBS: supported"));
        assert!(rendered.contains("Intel Dynamic Acceleration: disabled"));
        assert!(rendered.contains("CPU core id: 0"));
    }

    #[test]
    fn disable_and_reenable_the_adjacent_line_prefetcher() {
        // The paper's example: `likwid-features -u CL_PREFETCHER`.
        let machine = SimMachine::new(MachinePreset::Core2Duo);
        let tool = FeaturesTool::new(&machine);
        assert!(tool.prefetcher_enabled(0, Prefetcher::AdjacentLine).unwrap());
        tool.disable_prefetcher(0, Prefetcher::AdjacentLine).unwrap();
        assert!(!tool.prefetcher_enabled(0, Prefetcher::AdjacentLine).unwrap());
        let rendered = tool.render(0).unwrap();
        assert!(rendered.contains("Adjacent Cache Line Prefetch: disabled"));
        // The other prefetchers are untouched.
        assert!(tool.prefetcher_enabled(0, Prefetcher::Hardware).unwrap());
        tool.enable_prefetcher(0, Prefetcher::AdjacentLine).unwrap();
        assert!(tool.prefetcher_enabled(0, Prefetcher::AdjacentLine).unwrap());
    }

    #[test]
    fn toggling_is_rejected_on_non_core2_processors() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let tool = FeaturesTool::new(&machine);
        assert!(!tool.can_toggle());
        assert!(matches!(
            tool.disable_prefetcher(0, Prefetcher::Dcu),
            Err(LikwidError::Unsupported(_))
        ));
        // Reporting still works on Westmere.
        assert!(tool.render(0).is_ok());
    }

    #[test]
    fn amd_has_no_misc_enable() {
        let machine = SimMachine::new(MachinePreset::IstanbulH2S);
        let tool = FeaturesTool::new(&machine);
        assert!(matches!(tool.misc_enable(0), Err(LikwidError::Unsupported(_))));
        assert!(tool.render(0).is_err());
    }

    #[test]
    fn prefetcher_state_is_per_core() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let tool = FeaturesTool::new(&machine);
        tool.disable_prefetcher(2, Prefetcher::Dcu).unwrap();
        assert!(!tool.prefetcher_enabled(2, Prefetcher::Dcu).unwrap());
        assert!(tool.prefetcher_enabled(0, Prefetcher::Dcu).unwrap(), "core 0 is unaffected");
    }
}

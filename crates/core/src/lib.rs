//! The LIKWID tool suite.
//!
//! This crate is the reproduction of the paper's primary contribution: the
//! four command-line tools and the marker API, implemented on top of the
//! simulated machine substrate.
//!
//! * [`topology`] — `likwid-topology`: probes the hardware thread and cache
//!   topology of a node by decoding `cpuid`, and renders it as text and
//!   ASCII art.
//! * [`perfctr`] — `likwid-perfCtr`: programs hardware performance counters
//!   through MSRs, offers preconfigured event groups with derived metrics,
//!   wrapper/marker/multiplexing measurement modes and socket locks for
//!   uncore events.
//! * [`marker`] — the user-code marker API (`likwid_markerInit`,
//!   `likwid_markerStartRegion`, …) for restricting measurements to named
//!   code regions with automatic accumulation.
//! * [`pin`] — `likwid-pin`: thread-core affinity "from the outside" via the
//!   `pthread_create` interception model of the `likwid-affinity` crate.
//! * [`features`] — `likwid-features`: reporting and toggling of hardware
//!   prefetchers and other switchable processor features.
//! * [`report`] — the typed report document model every tool produces, and
//!   the ASCII/CSV/JSON renderers behind the [`report::Render`] trait.
//! * [`output`] — the low-level ASCII table/box rendering primitives.
//! * [`args`] — the declarative [`args::ArgSpec`] command-line parser shared
//!   by every binary (including the common `-O`/`-o` output switches).
//! * [`cli`] — the four tool front ends on top of [`args`] and [`report`].
//! * [`trace`] — the process-wide self-observability recorder: spans and
//!   counters across the suite's concurrent subsystems, exported as Chrome
//!   trace-event JSON or folded flamegraph stacks via `--trace <file>`.

pub mod args;
pub mod cli;
pub mod error;
pub mod features;
pub mod marker;
pub mod output;
pub mod perfctr;
pub mod pin;
pub mod report;
pub mod topology;
pub mod trace;

pub use args::{ArgSpec, ParsedArgs};
pub use error::{LikwidError, Result};
pub use features::FeaturesTool;
pub use marker::MarkerApi;
pub use perfctr::{
    Diagnostic, EventGroupKind, HealingStats, PerfCtr, PerfCtrConfig, PerfCtrResults,
};
pub use pin::{PinConfig, PinTool};
pub use report::{Ascii, Csv, Json, OutputFormat, Render, Report};
pub use topology::CpuTopology;

//! The marker API: restricting measurements to named code regions.
//!
//! The paper's listing (Section II-A) shows the C API:
//!
//! ```c
//! likwid_markerInit(numberOfThreads, numberOfRegions);
//! int MainId = likwid_markerRegisterRegion("Main");
//! likwid_markerStartRegion(0, coreID);
//! /* measured code */
//! likwid_markerStopRegion(0, coreID, MainId);
//! likwid_markerClose();
//! ```
//!
//! Event counts are accumulated automatically over all executions of a
//! region with the same name; nesting or partial overlap of regions is not
//! allowed. This module reproduces those semantics on top of the
//! [`PerfCtr`] session: starting a region snapshots the counters of the
//! calling thread's core, stopping it attributes the difference to the
//! named region.

use std::collections::HashMap;

use crate::error::{LikwidError, Result};
use crate::perfctr::session::{GroupCounts, PerfCtr};
use crate::perfctr::PerfCtrResults;
use crate::report::{Ascii, Heading, Render, Report};

/// Identifier returned by [`MarkerApi::register_region`].
pub type RegionId = usize;

/// Per-region accumulated counts.
#[derive(Debug, Clone)]
struct RegionData {
    name: String,
    /// Accumulated counts in the shape of the active group's `GroupCounts`.
    counts: GroupCounts,
    /// Number of start/stop pairs folded into `counts` (per measured cpu).
    call_counts: Vec<u64>,
}

/// The marker API state of one instrumented process.
pub struct MarkerApi {
    num_threads: usize,
    regions: Vec<RegionData>,
    /// Open region snapshot per application thread: (cpu, counter snapshot).
    open: HashMap<usize, (usize, GroupCounts)>,
    closed: bool,
}

impl MarkerApi {
    /// `likwid_markerInit(numberOfThreads, numberOfRegions)`.
    ///
    /// `number_of_regions` is a capacity hint in the original API; regions
    /// are registered explicitly afterwards.
    pub fn init(number_of_threads: usize, number_of_regions: usize) -> Self {
        MarkerApi {
            num_threads: number_of_threads,
            regions: Vec::with_capacity(number_of_regions),
            open: HashMap::new(),
            closed: false,
        }
    }

    /// `likwid_markerRegisterRegion(name)`: returns the region handle.
    /// Registering the same name twice returns the existing handle, which is
    /// what gives automatic accumulation across calls.
    pub fn register_region(&mut self, name: &str) -> RegionId {
        if let Some(id) = self.regions.iter().position(|r| r.name == name) {
            return id;
        }
        self.regions.push(RegionData {
            name: name.to_string(),
            counts: Vec::new(),
            call_counts: Vec::new(),
        });
        self.regions.len() - 1
    }

    /// Number of registered regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The name of a region.
    pub fn region_name(&self, id: RegionId) -> Option<&str> {
        self.regions.get(id).map(|r| r.name.as_str())
    }

    /// `likwid_markerStartRegion(threadId, coreId)`: snapshot the counters.
    ///
    /// Nesting is not allowed: starting a second region on a thread that
    /// already has one open is an error.
    pub fn start_region(
        &mut self,
        thread_id: usize,
        core_id: usize,
        session: &PerfCtr<'_>,
    ) -> Result<()> {
        if self.closed {
            return Err(LikwidError::Marker("markerClose was already called".into()));
        }
        if thread_id >= self.num_threads {
            return Err(LikwidError::Marker(format!(
                "thread id {thread_id} out of range (markerInit said {})",
                self.num_threads
            )));
        }
        if self.open.contains_key(&thread_id) {
            return Err(LikwidError::Marker(format!(
                "thread {thread_id} already has an open region (nesting is not allowed)"
            )));
        }
        let snapshot = session.read_counts()?;
        self.open.insert(thread_id, (core_id, snapshot));
        Ok(())
    }

    /// `likwid_markerStopRegion(threadId, coreId, regionId)`: accumulate the
    /// difference since the matching start into the region.
    pub fn stop_region(
        &mut self,
        thread_id: usize,
        core_id: usize,
        region: RegionId,
        session: &PerfCtr<'_>,
    ) -> Result<()> {
        if self.closed {
            return Err(LikwidError::Marker("markerClose was already called".into()));
        }
        let (start_core, start_counts) = self
            .open
            .remove(&thread_id)
            .ok_or_else(|| LikwidError::Marker(format!("thread {thread_id} has no open region")))?;
        if start_core != core_id {
            return Err(LikwidError::Marker(format!(
                "region started on core {start_core} but stopped on core {core_id}"
            )));
        }
        let region_data = self
            .regions
            .get_mut(region)
            .ok_or_else(|| LikwidError::Marker(format!("unknown region id {region}")))?;

        let now = session.read_counts()?;
        // Initialise the accumulator lazily with the group shape.
        if region_data.counts.is_empty() {
            region_data.counts = vec![vec![0; session.cpus().len()]; now.len()];
            region_data.call_counts = vec![0; session.cpus().len()];
        }
        // Only the counters of the calling thread's core are attributed: the
        // other measured cpus' activity belongs to their own threads' calls.
        let Some(cpu_pos) = session.cpus().iter().position(|&c| c == core_id) else {
            return Err(LikwidError::Marker(format!(
                "core {core_id} is not part of the measurement set"
            )));
        };
        for (ei, per_cpu) in now.iter().enumerate() {
            let delta = per_cpu[cpu_pos].saturating_sub(start_counts[ei][cpu_pos]);
            region_data.counts[ei][cpu_pos] += delta;
        }
        region_data.call_counts[cpu_pos] += 1;
        Ok(())
    }

    /// `likwid_markerClose()`: no further regions may be started or stopped.
    pub fn close(&mut self) -> Result<()> {
        if !self.open.is_empty() {
            return Err(LikwidError::Marker(format!(
                "{} region(s) still open at markerClose",
                self.open.len()
            )));
        }
        self.closed = true;
        Ok(())
    }

    /// Accumulated raw counts of a region.
    pub fn region_counts(&self, id: RegionId) -> Option<&GroupCounts> {
        self.regions.get(id).map(|r| &r.counts).filter(|c| !c.is_empty())
    }

    /// How many start/stop pairs were accumulated for a region on one
    /// measured cpu position.
    pub fn region_call_count(&self, id: RegionId, cpu_position: usize) -> u64 {
        self.regions.get(id).and_then(|r| r.call_counts.get(cpu_position)).copied().unwrap_or(0)
    }

    /// Results (events + derived metrics) of a region, computed with the
    /// session's active group definition.
    pub fn region_results(&self, id: RegionId, session: &PerfCtr<'_>) -> Result<PerfCtrResults> {
        let region = self
            .regions
            .get(id)
            .ok_or_else(|| LikwidError::Marker(format!("unknown region id {id}")))?;
        if region.counts.is_empty() {
            return Err(LikwidError::Marker(format!(
                "region '{}' was never measured",
                region.name
            )));
        }
        session.results(&region.counts)
    }

    /// Build the structured summary of all measured regions: for each
    /// region, the event and metric tables of its accumulated counts,
    /// headed by the region name.
    pub fn report(&self, session: &PerfCtr<'_>) -> Result<Report> {
        let mut report = Report::new("likwid-marker");
        for (id, region) in self.regions.iter().enumerate() {
            if region.counts.is_empty() {
                continue;
            }
            let mut region_report = self.region_results(id, session)?.report();
            if let Some(first) = region_report.sections.first_mut() {
                first.heading = Heading::Line(format!("Region: {}", region.name));
            }
            for mut section in region_report.sections {
                section.id = format!("{}.{}", region.name, section.id);
                report.push(section);
            }
        }
        Ok(report)
    }

    /// Render all regions in the style of the paper's marker-mode listing
    /// ("Region: Init", tables, "Region: Benchmark", tables).
    pub fn render(&self, session: &PerfCtr<'_>) -> Result<String> {
        Ok(Ascii.render(&self.report(session)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfctr::{EventGroupKind, MeasurementSpec, PerfCtrConfig};
    use likwid_perf_events::{EventEngine, EventSample, HwEventKind};
    use likwid_x86_machine::{MachinePreset, SimMachine};

    fn run_activity(machine: &SimMachine, cpu: usize, packed: u64, cycles: u64) {
        let engine = EventEngine::new(machine);
        let mut sample =
            EventSample::new(machine.num_hw_threads(), machine.topology().sockets as usize);
        sample.threads[cpu].add(HwEventKind::SimdPackedDouble, packed);
        sample.threads[cpu].add(HwEventKind::SimdScalarDouble, 1);
        sample.threads[cpu].add(HwEventKind::CoreCycles, cycles);
        sample.threads[cpu].add(HwEventKind::InstructionsRetired, cycles / 2);
        engine.apply(machine, &sample);
    }

    fn session(machine: &SimMachine) -> PerfCtr<'_> {
        let config = PerfCtrConfig {
            cpus: vec![0, 1, 2, 3],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        };
        let mut s = PerfCtr::new(machine, config).unwrap();
        s.start().unwrap();
        s
    }

    #[test]
    fn regions_accumulate_over_multiple_calls() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let s = session(&machine);
        let mut marker = MarkerApi::init(1, 2);
        let accum = marker.register_region("Accum");

        // Two passes through the region on core 0, like the paper's loop.
        for _ in 0..2 {
            marker.start_region(0, 0, &s).unwrap();
            run_activity(&machine, 0, 1000, 5000);
            marker.stop_region(0, 0, accum, &s).unwrap();
        }
        // Activity outside any region must not be attributed.
        run_activity(&machine, 0, 999_999, 10_000);
        marker.close().unwrap();

        let results = marker.region_results(accum, &s).unwrap();
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(2000));
        assert_eq!(marker.region_call_count(accum, 0), 2);
    }

    #[test]
    fn registering_the_same_name_returns_the_same_region() {
        let mut marker = MarkerApi::init(1, 4);
        let a = marker.register_region("Main");
        let b = marker.register_region("Main");
        assert_eq!(a, b);
        assert_eq!(marker.num_regions(), 1);
        assert_eq!(marker.region_name(a), Some("Main"));
    }

    #[test]
    fn two_regions_are_kept_separate() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let s = session(&machine);
        let mut marker = MarkerApi::init(1, 2);
        let init = marker.register_region("Init");
        let bench = marker.register_region("Benchmark");

        marker.start_region(0, 0, &s).unwrap();
        run_activity(&machine, 0, 0, 300_000);
        marker.stop_region(0, 0, init, &s).unwrap();

        marker.start_region(0, 0, &s).unwrap();
        run_activity(&machine, 0, 8_192_000, 28_000_000);
        marker.stop_region(0, 0, bench, &s).unwrap();

        let init_results = marker.region_results(init, &s).unwrap();
        let bench_results = marker.region_results(bench, &s).unwrap();
        assert_eq!(init_results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(0));
        assert_eq!(
            bench_results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0),
            Some(8_192_000)
        );
        let rendered = marker.render(&s).unwrap();
        assert!(rendered.contains("Region: Init"));
        assert!(rendered.contains("Region: Benchmark"));
    }

    #[test]
    fn per_thread_attribution_only_counts_the_calling_core() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let s = session(&machine);
        let mut marker = MarkerApi::init(4, 1);
        let region = marker.register_region("Main");

        // Thread 0 on core 0 and thread 1 on core 1 both measure the region;
        // core 1 does 3x the work of core 0.
        marker.start_region(0, 0, &s).unwrap();
        marker.start_region(1, 1, &s).unwrap();
        run_activity(&machine, 0, 100, 1000);
        run_activity(&machine, 1, 300, 1000);
        marker.stop_region(0, 0, region, &s).unwrap();
        marker.stop_region(1, 1, region, &s).unwrap();

        let results = marker.region_results(region, &s).unwrap();
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(100));
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 1), Some(300));
    }

    #[test]
    fn nesting_is_rejected() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let s = session(&machine);
        let mut marker = MarkerApi::init(1, 2);
        marker.register_region("Outer");
        marker.start_region(0, 0, &s).unwrap();
        assert!(matches!(marker.start_region(0, 0, &s), Err(LikwidError::Marker(_))));
    }

    #[test]
    fn misuse_is_reported() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let s = session(&machine);
        let mut marker = MarkerApi::init(2, 1);
        let region = marker.register_region("Main");

        // Stop without start.
        assert!(marker.stop_region(0, 0, region, &s).is_err());
        // Thread id out of range.
        assert!(marker.start_region(5, 0, &s).is_err());
        // Core mismatch between start and stop.
        marker.start_region(0, 0, &s).unwrap();
        assert!(marker.stop_region(0, 2, region, &s).is_err());
        // Close with an open region.
        marker.start_region(1, 1, &s).unwrap();
        assert!(marker.close().is_err());
        marker.stop_region(1, 1, region, &s).unwrap();
        marker.close().unwrap();
        // After close, nothing works.
        assert!(marker.start_region(0, 0, &s).is_err());
    }

    #[test]
    fn unmeasured_region_has_no_results() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let s = session(&machine);
        let mut marker = MarkerApi::init(1, 1);
        let region = marker.register_region("Never");
        assert!(marker.region_results(region, &s).is_err());
        assert!(marker.region_counts(region).is_none());
    }
}

//! ASCII table and box rendering.
//!
//! `likwid-perfCtr` prints its per-core event counts and derived metrics as
//! bordered ASCII tables (see the FLOPS_DP listing in Section II-A of the
//! paper), and `likwid-topology -g` prints the cache hierarchy of a socket
//! as nested ASCII boxes. This module provides both renderers.

/// A simple ASCII table with a header row, rendered in the style of the
/// paper's listings:
///
/// ```text
/// +--------+--------+--------+
/// | Event  | core 0 | core 1 |
/// +--------+--------+--------+
/// | ...    | ...    | ...    |
/// +--------+--------+--------+
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given header cells.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded or truncated to the header width).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let separator = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let render_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!(" {cell:<w$} |", w = w));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&separator);
        out.push('\n');
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&separator);
        out.push('\n');
        out
    }
}

/// The horizontal rule used between tool output sections
/// (`likwid-perfCtr`, `likwid-topology` and `likwid-features` all print it).
pub fn rule() -> String {
    "-".repeat(61)
}

/// The heavier rule used around section headings in `likwid-topology`.
pub fn heavy_rule() -> String {
    "*".repeat(61)
}

/// Format a floating point value the way the tool output does: six
/// significant digits, falling back to scientific notation for very small or
/// very large magnitudes (the paper's listings mix `0.693493` and
/// `7.67906e-05`).
pub fn format_value(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let magnitude = v.abs();
    if !(1e-4..1e7).contains(&magnitude) {
        format!("{v:.5e}")
    } else if (v.fract()).abs() < f64::EPSILON && magnitude < 1e7 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}").trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Format a large integer count the way the listings do: plain digits up to
/// seven digits, scientific notation above (`1.88024e+07`).
pub fn format_count(v: u64) -> String {
    if v < 10_000_000 {
        v.to_string()
    } else {
        let value = v as f64;
        let exponent = value.log10().floor() as i32;
        let mantissa = value / 10f64.powi(exponent);
        format!("{mantissa:.5}e+{exponent:02}")
    }
}

/// Render nested ASCII boxes: a socket box containing one row of core boxes
/// and one box per shared cache level, in the style of `likwid-topology -g`.
pub fn socket_ascii_art(core_labels: &[String], cache_rows: &[Vec<String>]) -> String {
    // Compute the inner width from the widest row.
    let core_box_width = core_labels.iter().map(|l| l.len()).max().unwrap_or(4) + 2;
    let inner_width = (core_box_width + 3) * core_labels.len() + 1;

    let mut out = String::new();
    out.push('+');
    out.push_str(&"-".repeat(inner_width + 2));
    out.push_str("+\n");

    let mut push_box_row = |labels: &[String]| {
        // Per-cache-instance boxes spread evenly over the inner width.
        let n = labels.len();
        let width = if n == core_labels.len() {
            core_box_width
        } else {
            // A shared cache spans the space of its sharers.
            (inner_width - 2 * n - (n - 1)) / n
        };
        let mut top = String::from("| ");
        let mut mid = String::from("| ");
        let mut bot = String::from("| ");
        for label in labels {
            top.push_str(&format!("+{}+ ", "-".repeat(width)));
            mid.push_str(&format!("|{:^width$}| ", label, width = width));
            bot.push_str(&format!("+{}+ ", "-".repeat(width)));
        }
        for line in [top, mid, bot] {
            let padded = format!("{line:<w$}|", w = inner_width + 3);
            out.push_str(&padded);
            out.push('\n');
        }
    };

    push_box_row(core_labels);
    for row in cache_rows {
        push_box_row(row);
    }

    out.push('+');
    out.push_str(&"-".repeat(inner_width + 2));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_aligned_columns() {
        let mut t = Table::new(vec!["Event", "core 0", "core 1"]);
        t.add_row(vec!["INSTR_RETIRED_ANY", "313742", "376154"]);
        t.add_row(vec!["CPI", "0.69", "1.34"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("+-"));
        assert!(lines[1].contains("| Event"));
        assert!(lines[3].contains("INSTR_RETIRED_ANY"));
        // All border lines have equal length.
        let lengths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lengths.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        let s = t.render();
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn format_value_matches_listing_style() {
        assert_eq!(format_value(0.693493), "0.693493");
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(1624.08), "1624.08");
        assert!(format_value(7.67906e-05).contains('e'));
        assert_eq!(format_value(3.0), "3");
    }

    #[test]
    fn format_count_switches_to_scientific_for_large_values() {
        assert_eq!(format_count(313742), "313742");
        assert!(format_count(18_802_400).contains("e+07"));
    }

    #[test]
    fn rules_have_the_conventional_width() {
        assert_eq!(rule().len(), 61);
        assert_eq!(heavy_rule().len(), 61);
        assert!(rule().chars().all(|c| c == '-'));
    }

    #[test]
    fn ascii_art_contains_cores_and_caches() {
        let cores = vec!["0 12".to_string(), "1 13".to_string(), "2 14".to_string()];
        let caches = vec![
            vec!["32kB".to_string(), "32kB".to_string(), "32kB".to_string()],
            vec!["12MB".to_string()],
        ];
        let art = socket_ascii_art(&cores, &caches);
        assert!(art.contains("0 12"));
        assert!(art.contains("32kB"));
        assert!(art.contains("12MB"));
        assert!(art.starts_with("+-"));
        assert!(art.trim_end().ends_with('+'));
    }
}

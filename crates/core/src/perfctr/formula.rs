//! Derived-metric formula evaluator.
//!
//! LIKWID's preconfigured event groups define their derived metrics as
//! arithmetic formulas over counter names (`1.0E-06*(PMC0*2.0+PMC1)/time`).
//! This module implements the small expression language those formulas use:
//! numbers (including scientific notation), identifiers bound to counter
//! values or to the helper variables `time` and `inverseClock`, the four
//! arithmetic operators and parentheses.

use std::collections::HashMap;

use crate::error::{LikwidError, Result};

/// A parsed formula, ready to evaluate against different variable bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    source: String,
    expr: Expr,
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Number(f64),
    Variable(String),
    Binary { op: Op, lhs: Box<Expr>, rhs: Box<Expr> },
    Negate(Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && i > start
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text
                    .parse::<f64>()
                    .map_err(|_| LikwidError::Formula(format!("bad number '{text}'")))?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(LikwidError::Formula(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// expression := term (('+' | '-') term)*
    fn expression(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        while let Some(op) = match self.peek() {
            Some(Token::Plus) => Some(Op::Add),
            Some(Token::Minus) => Some(Op::Sub),
            _ => None,
        } {
            self.next();
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    /// term := factor (('*' | '/') factor)*
    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        while let Some(op) = match self.peek() {
            Some(Token::Star) => Some(Op::Mul),
            Some(Token::Slash) => Some(Op::Div),
            _ => None,
        } {
            self.next();
            let rhs = self.factor()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    /// factor := '-' factor | number | ident | '(' expression ')'
    fn factor(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Minus) => Ok(Expr::Negate(Box::new(self.factor()?))),
            Some(Token::Number(v)) => Ok(Expr::Number(v)),
            Some(Token::Ident(name)) => Ok(Expr::Variable(name)),
            Some(Token::LParen) => {
                let inner = self.expression()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(LikwidError::Formula("missing closing parenthesis".into())),
                }
            }
            other => Err(LikwidError::Formula(format!("unexpected token {other:?}"))),
        }
    }
}

impl Formula {
    /// Parse a formula.
    pub fn parse(src: &str) -> Result<Self> {
        let tokens = tokenize(src)?;
        if tokens.is_empty() {
            return Err(LikwidError::Formula("empty formula".into()));
        }
        let mut parser = Parser { tokens, pos: 0 };
        let expr = parser.expression()?;
        if parser.pos != parser.tokens.len() {
            return Err(LikwidError::Formula(format!(
                "trailing input after position {} in '{src}'",
                parser.pos
            )));
        }
        Ok(Formula { source: src.to_string(), expr })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Variables referenced by the formula.
    pub fn variables(&self) -> Vec<String> {
        fn collect(expr: &Expr, out: &mut Vec<String>) {
            match expr {
                Expr::Variable(name) => {
                    if !out.contains(name) {
                        out.push(name.clone());
                    }
                }
                Expr::Binary { lhs, rhs, .. } => {
                    collect(lhs, out);
                    collect(rhs, out);
                }
                Expr::Negate(inner) => collect(inner, out),
                Expr::Number(_) => {}
            }
        }
        let mut out = Vec::new();
        collect(&self.expr, &mut out);
        out
    }

    /// Evaluate against variable bindings. Unknown variables are an error;
    /// division by zero yields 0 (matching the real tool's behaviour of
    /// printing 0 for metrics whose events did not fire).
    pub fn evaluate(&self, vars: &HashMap<String, f64>) -> Result<f64> {
        fn eval(expr: &Expr, vars: &HashMap<String, f64>) -> Result<f64> {
            Ok(match expr {
                Expr::Number(v) => *v,
                Expr::Variable(name) => *vars
                    .get(name)
                    .ok_or_else(|| LikwidError::Formula(format!("unbound variable '{name}'")))?,
                Expr::Negate(inner) => -eval(inner, vars)?,
                Expr::Binary { op, lhs, rhs } => {
                    let l = eval(lhs, vars)?;
                    let r = eval(rhs, vars)?;
                    match op {
                        Op::Add => l + r,
                        Op::Sub => l - r,
                        Op::Mul => l * r,
                        Op::Div => {
                            if r == 0.0 {
                                0.0
                            } else {
                                l / r
                            }
                        }
                    }
                }
            })
        }
        eval(&self.expr, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn arithmetic_precedence() {
        let f = Formula::parse("1+2*3").unwrap();
        assert_eq!(f.evaluate(&vars(&[])).unwrap(), 7.0);
        let f = Formula::parse("(1+2)*3").unwrap();
        assert_eq!(f.evaluate(&vars(&[])).unwrap(), 9.0);
        let f = Formula::parse("10-2-3").unwrap();
        assert_eq!(f.evaluate(&vars(&[])).unwrap(), 5.0, "subtraction is left associative");
        let f = Formula::parse("8/2/2").unwrap();
        assert_eq!(f.evaluate(&vars(&[])).unwrap(), 2.0);
    }

    #[test]
    fn scientific_notation_and_unary_minus() {
        let f = Formula::parse("1.0E-06*2000000").unwrap();
        assert!((f.evaluate(&vars(&[])).unwrap() - 2.0).abs() < 1e-12);
        let f = Formula::parse("-3+5").unwrap();
        assert_eq!(f.evaluate(&vars(&[])).unwrap(), 2.0);
        let f = Formula::parse("2*-3").unwrap();
        assert_eq!(f.evaluate(&vars(&[])).unwrap(), -6.0);
    }

    #[test]
    fn the_flops_dp_formula_from_likwid_groups() {
        // MFlops/s = 1.0E-06*(PMC0*2.0+PMC1)/time
        let f = Formula::parse("1.0E-06*(PMC0*2.0+PMC1*1.0)/time").unwrap();
        let v = vars(&[("PMC0", 8.192e6), ("PMC1", 1.0), ("time", 0.01)]);
        let mflops = f.evaluate(&v).unwrap();
        assert!((mflops - 1638.4).abs() < 0.1, "got {mflops}");
    }

    #[test]
    fn cpi_formula() {
        let f = Formula::parse("FIXC1/FIXC0").unwrap();
        let v = vars(&[("FIXC0", 18_802_400.0), ("FIXC1", 28_583_800.0)]);
        assert!((f.evaluate(&v).unwrap() - 1.5202).abs() < 0.001);
    }

    #[test]
    fn variables_are_reported() {
        let f = Formula::parse("1.0E-06*(UPMC0+UPMC1)*64.0/time").unwrap();
        let mut vs = f.variables();
        vs.sort();
        assert_eq!(vs, vec!["UPMC0", "UPMC1", "time"]);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let f = Formula::parse("PMC0/time").unwrap();
        assert!(f.evaluate(&vars(&[("PMC0", 1.0)])).is_err());
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let f = Formula::parse("PMC0/PMC1").unwrap();
        let v = vars(&[("PMC0", 5.0), ("PMC1", 0.0)]);
        assert_eq!(f.evaluate(&v).unwrap(), 0.0);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Formula::parse("").is_err());
        assert!(Formula::parse("1+").is_err());
        assert!(Formula::parse("(1+2").is_err());
        assert!(Formula::parse("1 ? 2").is_err());
        assert!(Formula::parse("1 2").is_err());
    }

    #[test]
    fn source_is_preserved() {
        let src = "FIXC1*inverseClock";
        assert_eq!(Formula::parse(src).unwrap().source(), src);
    }

    #[test]
    fn table2_memory_bandwidth_from_unc_l3_lines() {
        // The paper's Table 2 derives Jacobi memory traffic from the Nehalem
        // uncore events: bandwidth [MB/s] = 1.0E-06*(lines_in+lines_out)*64/time.
        let f = Formula::parse("1.0E-06*(UPMC0+UPMC1)*64.0/time").unwrap();
        let v = vars(&[("UPMC0", 5.0e8), ("UPMC1", 2.5e8), ("time", 1.5)]);
        let mbs = f.evaluate(&v).unwrap();
        // (5e8 + 2.5e8) * 64 bytes / 1.5 s = 32 GB/s.
        assert!((mbs - 32_000.0).abs() < 1e-6, "got {mbs}");
    }

    #[test]
    fn zero_time_yields_zero_bandwidth_not_infinity() {
        // A region that never ran reports time = 0; the metric must print 0,
        // not inf/NaN, matching the real tool's output for idle regions.
        let f = Formula::parse("1.0E-06*(UPMC0+UPMC1)*64.0/time").unwrap();
        let v = vars(&[("UPMC0", 1.0e9), ("UPMC1", 1.0e9), ("time", 0.0)]);
        assert_eq!(f.evaluate(&v).unwrap(), 0.0);
        // Division by a zero *subexpression* behaves the same.
        let f = Formula::parse("PMC0/(PMC1-PMC1)").unwrap();
        let v = vars(&[("PMC0", 42.0), ("PMC1", 9.0)]);
        assert_eq!(f.evaluate(&v).unwrap(), 0.0);
    }

    #[test]
    fn unknown_counter_names_the_missing_variable() {
        let f = Formula::parse("UPMC0*64.0/time").unwrap();
        let err = f.evaluate(&vars(&[("time", 1.0)])).unwrap_err();
        assert!(err.to_string().contains("UPMC0"), "error must name the counter: {err}");
        // Binding every referenced variable fixes the evaluation.
        let ok = f.evaluate(&vars(&[("UPMC0", 1.0e6), ("time", 1.0)])).unwrap();
        assert!((ok - 6.4e7).abs() < 1e-3);
    }

    #[test]
    fn variables_cover_negated_and_nested_subexpressions() {
        let f = Formula::parse("-(A*(B+C))/(D-1.0)").unwrap();
        let mut vs = f.variables();
        vs.sort();
        assert_eq!(vs, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn evaluation_is_repeatable_with_different_bindings() {
        // One parsed formula re-evaluated against per-thread counter sets,
        // as the session does when printing per-core metric columns.
        let f = Formula::parse("FIXC1/FIXC0").unwrap();
        for (instr, cycles, want) in [(100.0, 200.0, 2.0), (400.0, 100.0, 0.25), (7.0, 7.0, 1.0)] {
            let v = vars(&[("FIXC0", instr), ("FIXC1", cycles)]);
            assert_eq!(f.evaluate(&v).unwrap(), want);
        }
    }
}

//! Preconfigured event groups ("performance groups") with derived metrics.
//!
//! The paper's table of event sets (Section II-A) lists eleven groups —
//! FLOPS_DP, FLOPS_SP, L2, L3, MEM, CACHE, L2CACHE, L3CACHE, DATA, BRANCH
//! and TLB — that abstract over the architecture-specific event names. This
//! module defines, per supported microarchitecture, which native events and
//! counters each group uses and the formulas of its derived metrics. The
//! tool tries to provide the same groups on all architectures "as long as
//! the native events support them"; where they do not (e.g. L3 groups on
//! L3-less parts), the group is reported as unsupported.

use likwid_perf_events::CounterSlot;
use likwid_x86_machine::Microarch;

use crate::error::{LikwidError, Result};

/// The preconfigured event groups of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum EventGroupKind {
    /// Double precision MFlops/s.
    FLOPS_DP,
    /// Single precision MFlops/s.
    FLOPS_SP,
    /// L2 cache bandwidth in MBytes/s.
    L2,
    /// L3 cache bandwidth in MBytes/s.
    L3,
    /// Main memory bandwidth in MBytes/s.
    MEM,
    /// L1 data cache miss rate/ratio.
    CACHE,
    /// L2 data cache miss rate/ratio.
    L2CACHE,
    /// L3 data cache miss rate/ratio.
    L3CACHE,
    /// Load to store ratio.
    DATA,
    /// Branch prediction miss rate/ratio.
    BRANCH,
    /// Translation lookaside buffer miss rate/ratio.
    TLB,
}

impl EventGroupKind {
    /// All groups in the order of the paper's table.
    pub fn all() -> &'static [EventGroupKind] {
        &[
            EventGroupKind::FLOPS_DP,
            EventGroupKind::FLOPS_SP,
            EventGroupKind::L2,
            EventGroupKind::L3,
            EventGroupKind::MEM,
            EventGroupKind::CACHE,
            EventGroupKind::L2CACHE,
            EventGroupKind::L3CACHE,
            EventGroupKind::DATA,
            EventGroupKind::BRANCH,
            EventGroupKind::TLB,
        ]
    }

    /// The name used on the `-g` command line.
    pub fn name(self) -> &'static str {
        match self {
            EventGroupKind::FLOPS_DP => "FLOPS_DP",
            EventGroupKind::FLOPS_SP => "FLOPS_SP",
            EventGroupKind::L2 => "L2",
            EventGroupKind::L3 => "L3",
            EventGroupKind::MEM => "MEM",
            EventGroupKind::CACHE => "CACHE",
            EventGroupKind::L2CACHE => "L2CACHE",
            EventGroupKind::L3CACHE => "L3CACHE",
            EventGroupKind::DATA => "DATA",
            EventGroupKind::BRANCH => "BRANCH",
            EventGroupKind::TLB => "TLB",
        }
    }

    /// Parse a `-g` argument.
    pub fn parse(name: &str) -> Option<Self> {
        Self::all().iter().copied().find(|g| g.name() == name)
    }

    /// The one-line description from the paper's table.
    pub fn description(self) -> &'static str {
        match self {
            EventGroupKind::FLOPS_DP => "Double Precision MFlops/s",
            EventGroupKind::FLOPS_SP => "Single Precision MFlops/s",
            EventGroupKind::L2 => "L2 cache bandwidth in MBytes/s",
            EventGroupKind::L3 => "L3 cache bandwidth in MBytes/s",
            EventGroupKind::MEM => "Main memory bandwidth in MBytes/s",
            EventGroupKind::CACHE => "L1 Data cache miss rate/ratio",
            EventGroupKind::L2CACHE => "L2 Data cache miss rate/ratio",
            EventGroupKind::L3CACHE => "L3 Data cache miss rate/ratio",
            EventGroupKind::DATA => "Load to store ratio",
            EventGroupKind::BRANCH => "Branch prediction miss rate/ratio",
            EventGroupKind::TLB => "Translation lookaside buffer miss rate/ratio",
        }
    }
}

/// A fully resolved event group for one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDefinition {
    /// Which group this is.
    pub kind: EventGroupKind,
    /// The events to program: `(documented event name, counter slot)`.
    pub events: Vec<(&'static str, CounterSlot)>,
    /// The formula for the measurement time in seconds, usually
    /// `FIXC1*inverseClock` (unhalted core cycles over the nominal clock).
    pub time_formula: &'static str,
    /// Derived metrics: `(metric name, formula)`.
    pub metrics: Vec<(&'static str, &'static str)>,
}

impl GroupDefinition {
    /// Whether the group needs uncore counters (and therefore socket locks).
    pub fn uses_uncore(&self) -> bool {
        self.events.iter().any(|(_, slot)| slot.is_uncore())
    }

    /// The number of general-purpose core counters the group needs.
    pub fn pmc_events(&self) -> usize {
        self.events.iter().filter(|(_, s)| matches!(s, CounterSlot::Pmc(_))).count()
    }
}

use CounterSlot::{Fixed, Pmc, UncorePmc};

/// The Intel fixed-counter events present in every group on Core 2 and newer.
fn intel_fixed() -> Vec<(&'static str, CounterSlot)> {
    vec![("INSTR_RETIRED_ANY", Fixed(0)), ("CPU_CLK_UNHALTED_CORE", Fixed(1))]
}

const INTEL_TIME: &str = "FIXC1*inverseClock";
const INTEL_BASE_METRICS: [(&str, &str); 2] = [("Runtime [s]", "time"), ("CPI", "FIXC1/FIXC0")];

fn intel_group(
    kind: EventGroupKind,
    extra_events: Vec<(&'static str, CounterSlot)>,
    extra_metrics: Vec<(&'static str, &'static str)>,
) -> GroupDefinition {
    let mut events = intel_fixed();
    events.extend(extra_events);
    let mut metrics = INTEL_BASE_METRICS.to_vec();
    metrics.extend(extra_metrics);
    GroupDefinition { kind, events, time_formula: INTEL_TIME, metrics }
}

/// Group definitions for Core 2 and Atom (two PMCs, no uncore, FSB memory
/// events).
fn core2_like(kind: EventGroupKind, atom: bool) -> Option<GroupDefinition> {
    let loads = if atom { "INST_RETIRED_LOADS" } else { "INST_RETIRED_LOADS" };
    let l1_all = if atom { "L1D_CACHE_LD" } else { "L1D_ALL_REF" };
    let l1_repl = if atom { "L1D_CACHE_REPL" } else { "L1D_REPL" };
    let tlb = if atom { "DATA_TLB_MISSES_DTLB_MISS" } else { "DTLB_MISSES_ANY" };
    Some(match kind {
        EventGroupKind::FLOPS_DP => intel_group(
            kind,
            vec![
                ("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", Pmc(0)),
                ("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE", Pmc(1)),
            ],
            vec![("DP MFlops/s", "1.0E-06*(PMC0*2.0+PMC1*1.0)/time")],
        ),
        EventGroupKind::FLOPS_SP => intel_group(
            kind,
            vec![
                ("SIMD_COMP_INST_RETIRED_PACKED_SINGLE", Pmc(0)),
                ("SIMD_COMP_INST_RETIRED_SCALAR_SINGLE", Pmc(1)),
            ],
            vec![("SP MFlops/s", "1.0E-06*(PMC0*4.0+PMC1*1.0)/time")],
        ),
        EventGroupKind::L2 => intel_group(
            kind,
            vec![(l1_repl, Pmc(0)), ("L1D_M_EVICT", Pmc(1))],
            vec![
                ("L2 bandwidth [MBytes/s]", "1.0E-06*(PMC0+PMC1)*64.0/time"),
                ("L2 data volume [GBytes]", "1.0E-09*(PMC0+PMC1)*64.0"),
            ],
        ),
        EventGroupKind::MEM => intel_group(
            kind,
            vec![
                ("BUS_TRANS_MEM_THIS_CORE_THIS_A", Pmc(0)),
                ("BUS_TRANS_WB_THIS_CORE_THIS_A", Pmc(1)),
            ],
            vec![
                ("Memory bandwidth [MBytes/s]", "1.0E-06*(PMC0+PMC1)*64.0/time"),
                ("Memory data volume [GBytes]", "1.0E-09*(PMC0+PMC1)*64.0"),
            ],
        ),
        EventGroupKind::CACHE => intel_group(
            kind,
            vec![(l1_all, Pmc(0)), (l1_repl, Pmc(1))],
            vec![("Data cache miss rate", "PMC1/FIXC0"), ("Data cache miss ratio", "PMC1/PMC0")],
        ),
        EventGroupKind::L2CACHE => intel_group(
            kind,
            vec![("L2_RQSTS_REFERENCES", Pmc(0)), ("L2_RQSTS_MISS", Pmc(1))],
            vec![("L2 miss rate", "PMC1/FIXC0"), ("L2 miss ratio", "PMC1/PMC0")],
        ),
        EventGroupKind::DATA => intel_group(
            kind,
            vec![(loads, Pmc(0)), ("INST_RETIRED_STORES", Pmc(1))],
            vec![("Load to store ratio", "PMC0/PMC1")],
        ),
        EventGroupKind::BRANCH => intel_group(
            kind,
            vec![("BR_INST_RETIRED_ANY", Pmc(0)), ("BR_INST_RETIRED_MISPRED", Pmc(1))],
            vec![
                ("Branch rate", "PMC0/FIXC0"),
                ("Branch misprediction rate", "PMC1/FIXC0"),
                ("Branch misprediction ratio", "PMC1/PMC0"),
            ],
        ),
        EventGroupKind::TLB => {
            intel_group(kind, vec![(tlb, Pmc(0))], vec![("DTLB miss rate", "PMC0/FIXC0")])
        }
        // Core 2 / Atom have no L3.
        EventGroupKind::L3 | EventGroupKind::L3CACHE => return None,
    })
}

/// Group definitions for Nehalem EP / Westmere EP (four PMCs, uncore).
fn nehalem_like(kind: EventGroupKind) -> Option<GroupDefinition> {
    Some(match kind {
        EventGroupKind::FLOPS_DP => intel_group(
            kind,
            vec![
                ("FP_COMP_OPS_EXE_SSE_FP_PACKED", Pmc(0)),
                ("FP_COMP_OPS_EXE_SSE_FP_SCALAR", Pmc(1)),
            ],
            vec![("DP MFlops/s", "1.0E-06*(PMC0*2.0+PMC1*1.0)/time")],
        ),
        EventGroupKind::FLOPS_SP => intel_group(
            kind,
            vec![
                ("FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION", Pmc(0)),
                ("FP_COMP_OPS_EXE_SSE_FP_SCALAR", Pmc(1)),
            ],
            vec![("SP MFlops/s", "1.0E-06*(PMC0*4.0+PMC1*1.0)/time")],
        ),
        EventGroupKind::L2 => intel_group(
            kind,
            vec![("L1D_REPL", Pmc(0)), ("L1D_M_EVICT", Pmc(1))],
            vec![
                ("L2 bandwidth [MBytes/s]", "1.0E-06*(PMC0+PMC1)*64.0/time"),
                ("L2 data volume [GBytes]", "1.0E-09*(PMC0+PMC1)*64.0"),
            ],
        ),
        EventGroupKind::L3 => intel_group(
            kind,
            vec![("L2_LINES_IN_ANY", Pmc(0)), ("L2_LINES_OUT_ANY", Pmc(1))],
            vec![
                ("L3 bandwidth [MBytes/s]", "1.0E-06*(PMC0+PMC1)*64.0/time"),
                ("L3 data volume [GBytes]", "1.0E-09*(PMC0+PMC1)*64.0"),
            ],
        ),
        EventGroupKind::MEM => intel_group(
            kind,
            vec![
                ("UNC_QMC_NORMAL_READS_ANY", UncorePmc(0)),
                ("UNC_QMC_WRITES_FULL_ANY", UncorePmc(1)),
            ],
            vec![
                ("Memory bandwidth [MBytes/s]", "1.0E-06*(UPMC0+UPMC1)*64.0/time"),
                ("Memory data volume [GBytes]", "1.0E-09*(UPMC0+UPMC1)*64.0"),
            ],
        ),
        EventGroupKind::CACHE => intel_group(
            kind,
            vec![("L1D_ALL_REF_ANY", Pmc(0)), ("L1D_REPL", Pmc(1))],
            vec![("Data cache miss rate", "PMC1/FIXC0"), ("Data cache miss ratio", "PMC1/PMC0")],
        ),
        EventGroupKind::L2CACHE => intel_group(
            kind,
            vec![("L2_RQSTS_REFERENCES", Pmc(0)), ("L2_RQSTS_MISS", Pmc(1))],
            vec![("L2 miss rate", "PMC1/FIXC0"), ("L2 miss ratio", "PMC1/PMC0")],
        ),
        EventGroupKind::L3CACHE => intel_group(
            kind,
            vec![("UNC_L3_HITS_ANY", UncorePmc(0)), ("UNC_L3_MISS_ANY", UncorePmc(1))],
            vec![("L3 miss rate", "UPMC1/FIXC0"), ("L3 miss ratio", "UPMC1/(UPMC0+UPMC1)")],
        ),
        EventGroupKind::DATA => intel_group(
            kind,
            vec![("MEM_INST_RETIRED_LOADS", Pmc(0)), ("MEM_INST_RETIRED_STORES", Pmc(1))],
            vec![("Load to store ratio", "PMC0/PMC1")],
        ),
        EventGroupKind::BRANCH => intel_group(
            kind,
            vec![
                ("BR_INST_RETIRED_ALL_BRANCHES", Pmc(0)),
                ("BR_MISP_RETIRED_ALL_BRANCHES", Pmc(1)),
            ],
            vec![
                ("Branch rate", "PMC0/FIXC0"),
                ("Branch misprediction rate", "PMC1/FIXC0"),
                ("Branch misprediction ratio", "PMC1/PMC0"),
            ],
        ),
        EventGroupKind::TLB => intel_group(
            kind,
            vec![("DTLB_MISSES_ANY", Pmc(0))],
            vec![("DTLB miss rate", "PMC0/FIXC0")],
        ),
    })
}

const AMD_TIME: &str = "PMC1*inverseClock";
const AMD_BASE_METRICS: [(&str, &str); 2] = [("Runtime [s]", "time"), ("CPI", "PMC1/PMC0")];

fn amd_group(
    kind: EventGroupKind,
    extra_events: Vec<(&'static str, CounterSlot)>,
    extra_metrics: Vec<(&'static str, &'static str)>,
) -> GroupDefinition {
    let mut events = vec![("RETIRED_INSTRUCTIONS", Pmc(0)), ("CPU_CLOCKS_UNHALTED", Pmc(1))];
    events.extend(extra_events);
    let mut metrics = AMD_BASE_METRICS.to_vec();
    metrics.extend(extra_metrics);
    GroupDefinition { kind, events, time_formula: AMD_TIME, metrics }
}

/// Group definitions for AMD K10 (and, minus the L3 groups, K8). The two
/// generations name a few events differently, so the names are selected by
/// `has_l3` (K10) vs. not (K8).
fn k10_like(kind: EventGroupKind, has_l3: bool) -> Option<GroupDefinition> {
    let packed_dp = if has_l3 { "RETIRED_SSE_OPS_PACKED_DOUBLE" } else { "SSE_PACKED_DOUBLE_OPS" };
    let scalar_dp =
        if has_l3 { "RETIRED_SSE_OPS_SCALAR_DOUBLE" } else { "DISPATCHED_FPU_OPS_ADD_MUL" };
    let packed_sp = if has_l3 { "RETIRED_SSE_OPS_PACKED_SINGLE" } else { "SSE_PACKED_SINGLE_OPS" };
    let scalar_sp = if has_l3 { "RETIRED_SSE_OPS_SCALAR_SINGLE" } else { "SSE_SCALAR_SINGLE_OPS" };
    let dc_refills = if has_l3 {
        "DATA_CACHE_REFILLS_L2_OR_NORTHBRIDGE"
    } else {
        "DATA_CACHE_REFILLS_L2_OR_SYSTEM"
    };
    let dc_evicted = if has_l3 { "DATA_CACHE_EVICTED_ALL" } else { "DATA_CACHE_EVICTED" };
    Some(match kind {
        EventGroupKind::FLOPS_DP => amd_group(
            kind,
            vec![(packed_dp, Pmc(2)), (scalar_dp, Pmc(3))],
            vec![("DP MFlops/s", "1.0E-06*(PMC2*2.0+PMC3*1.0)/time")],
        ),
        EventGroupKind::FLOPS_SP => amd_group(
            kind,
            vec![(packed_sp, Pmc(2)), (scalar_sp, Pmc(3))],
            vec![("SP MFlops/s", "1.0E-06*(PMC2*4.0+PMC3*1.0)/time")],
        ),
        EventGroupKind::L2 => amd_group(
            kind,
            vec![(dc_refills, Pmc(2)), (dc_evicted, Pmc(3))],
            vec![
                ("L2 bandwidth [MBytes/s]", "1.0E-06*(PMC2+PMC3)*64.0/time"),
                ("L2 data volume [GBytes]", "1.0E-09*(PMC2+PMC3)*64.0"),
            ],
        ),
        EventGroupKind::L3 => {
            if !has_l3 {
                return None;
            }
            amd_group(
                kind,
                vec![("L3_FILLS_ALL_ALL_CORES", Pmc(2)), ("L3_EVICTIONS_ALL_ALL_CORES", Pmc(3))],
                vec![
                    ("L3 bandwidth [MBytes/s]", "1.0E-06*(PMC2+PMC3)*64.0/time"),
                    ("L3 data volume [GBytes]", "1.0E-09*(PMC2+PMC3)*64.0"),
                ],
            )
        }
        EventGroupKind::MEM => {
            let (read_ev, write_ev) = if has_l3 {
                ("DRAM_ACCESSES_DCT0_ALL", "DRAM_ACCESSES_DCT1_ALL")
            } else {
                ("DRAM_ACCESSES_PAGE_HIT", "DRAM_ACCESSES_PAGE_MISS")
            };
            amd_group(
                kind,
                vec![(read_ev, Pmc(2)), (write_ev, Pmc(3))],
                vec![
                    ("Memory bandwidth [MBytes/s]", "1.0E-06*(PMC2+PMC3)*64.0/time"),
                    ("Memory data volume [GBytes]", "1.0E-09*(PMC2+PMC3)*64.0"),
                ],
            )
        }
        EventGroupKind::CACHE => amd_group(
            kind,
            vec![("DATA_CACHE_ACCESSES", Pmc(2)), (dc_refills, Pmc(3))],
            vec![("Data cache miss rate", "PMC3/PMC0"), ("Data cache miss ratio", "PMC3/PMC2")],
        ),
        EventGroupKind::L2CACHE => amd_group(
            kind,
            vec![("L2_REQUESTS_ALL", Pmc(2)), ("L2_MISSES_ALL", Pmc(3))],
            vec![("L2 miss rate", "PMC3/PMC0"), ("L2 miss ratio", "PMC3/PMC2")],
        ),
        EventGroupKind::L3CACHE => {
            if !has_l3 {
                return None;
            }
            amd_group(
                kind,
                vec![
                    ("L3_READ_REQUEST_ALL_ALL_CORES", Pmc(2)),
                    ("L3_MISSES_ALL_ALL_CORES", Pmc(3)),
                ],
                vec![("L3 miss rate", "PMC3/PMC0"), ("L3 miss ratio", "PMC3/PMC2")],
            )
        }
        EventGroupKind::DATA => amd_group(
            kind,
            vec![("LS_DISPATCH_LOADS", Pmc(2)), ("LS_DISPATCH_STORES", Pmc(3))],
            vec![("Load to store ratio", "PMC2/PMC3")],
        ),
        EventGroupKind::BRANCH => amd_group(
            kind,
            vec![("RETIRED_BRANCH_INSTR", Pmc(2)), ("RETIRED_MISPREDICTED_BRANCH_INSTR", Pmc(3))],
            vec![
                ("Branch rate", "PMC2/PMC0"),
                ("Branch misprediction rate", "PMC3/PMC0"),
                ("Branch misprediction ratio", "PMC3/PMC2"),
            ],
        ),
        EventGroupKind::TLB => amd_group(
            kind,
            vec![(if has_l3 { "DTLB_L2_MISS_ALL" } else { "DTLB_L2_MISS" }, Pmc(2))],
            vec![("DTLB miss rate", "PMC2/PMC0")],
        ),
    })
}

/// Group definitions for Pentium M: only two programmable counters and no
/// fixed counters, so each group carries the cycle counter plus one event.
fn pentium_m(kind: EventGroupKind) -> Option<GroupDefinition> {
    let base = |extra: (&'static str, CounterSlot), metrics: Vec<(&'static str, &'static str)>| {
        GroupDefinition {
            kind,
            events: vec![("CPU_CLK_UNHALTED", Pmc(0)), extra],
            time_formula: "PMC0*inverseClock",
            metrics: {
                let mut m = vec![("Runtime [s]", "time")];
                m.extend(metrics);
                m
            },
        }
    };
    Some(match kind {
        EventGroupKind::FLOPS_DP => base(
            ("EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DP", Pmc(1)),
            vec![("DP MFlops/s", "1.0E-06*PMC1*2.0/time")],
        ),
        EventGroupKind::FLOPS_SP => base(
            ("EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SP", Pmc(1)),
            vec![("SP MFlops/s", "1.0E-06*PMC1*4.0/time")],
        ),
        EventGroupKind::L2 => base(
            ("L2_LINES_IN", Pmc(1)),
            vec![("L2 bandwidth [MBytes/s]", "1.0E-06*PMC1*64.0/time")],
        ),
        EventGroupKind::CACHE => base(("DCU_LINES_IN", Pmc(1)), vec![("L1 misses/s", "PMC1/time")]),
        EventGroupKind::MEM => base(
            ("BUS_TRAN_MEM", Pmc(1)),
            vec![("Memory bandwidth [MBytes/s]", "1.0E-06*PMC1*64.0/time")],
        ),
        EventGroupKind::BRANCH => {
            base(("BR_MISS_PRED_RETIRED", Pmc(1)), vec![("Branch mispredictions/s", "PMC1/time")])
        }
        EventGroupKind::TLB => base(("DTLB_MISS", Pmc(1)), vec![("DTLB misses/s", "PMC1/time")]),
        EventGroupKind::L3
        | EventGroupKind::L3CACHE
        | EventGroupKind::L2CACHE
        | EventGroupKind::DATA => return None,
    })
}

/// Resolve a group for an architecture.
pub fn group_definition(arch: Microarch, kind: EventGroupKind) -> Result<GroupDefinition> {
    let def = match arch {
        Microarch::Core2 => core2_like(kind, false),
        Microarch::Atom => core2_like(kind, true),
        Microarch::NehalemEp | Microarch::WestmereEp => nehalem_like(kind),
        Microarch::K10 => k10_like(kind, true),
        Microarch::K8 => k10_like(kind, false),
        Microarch::PentiumM => pentium_m(kind),
    };
    def.ok_or_else(|| LikwidError::GroupUnsupported {
        group: kind.name().to_string(),
        arch: arch.display_name().to_string(),
    })
}

/// All groups supported on an architecture.
pub fn supported_groups(arch: Microarch) -> Vec<EventGroupKind> {
    EventGroupKind::all().iter().copied().filter(|&k| group_definition(arch, k).is_ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfctr::formula::Formula;
    use likwid_perf_events::tables;

    #[test]
    fn group_names_round_trip() {
        for &g in EventGroupKind::all() {
            assert_eq!(EventGroupKind::parse(g.name()), Some(g));
        }
        assert_eq!(EventGroupKind::parse("NOT_A_GROUP"), None);
        assert_eq!(EventGroupKind::all().len(), 11, "the paper lists eleven groups");
    }

    #[test]
    fn every_supported_group_references_only_real_events() {
        for &arch in Microarch::all() {
            let table = tables::for_arch(arch);
            for kind in supported_groups(arch) {
                let def = group_definition(arch, kind).unwrap();
                for (event, slot) in &def.events {
                    let e = table
                        .find(event)
                        .unwrap_or_else(|| panic!("{arch:?} {kind:?}: unknown event {event}"));
                    assert!(
                        table.allowed_slots(e).contains(slot),
                        "{arch:?} {kind:?}: {event} cannot go on {}",
                        slot.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_metric_formula_parses_and_references_known_variables() {
        for &arch in Microarch::all() {
            for kind in supported_groups(arch) {
                let def = group_definition(arch, kind).unwrap();
                let counter_names: Vec<String> = def.events.iter().map(|(_, s)| s.name()).collect();
                let time = Formula::parse(def.time_formula).unwrap();
                for var in time.variables() {
                    assert!(
                        var == "inverseClock" || counter_names.contains(&var),
                        "{arch:?} {kind:?}: time formula references unknown '{var}'"
                    );
                }
                for (name, formula) in &def.metrics {
                    let f = Formula::parse(formula)
                        .unwrap_or_else(|e| panic!("{arch:?} {kind:?} {name}: {e}"));
                    for var in f.variables() {
                        assert!(
                            var == "time" || var == "inverseClock" || counter_names.contains(&var),
                            "{arch:?} {kind:?} metric '{name}' references unknown '{var}'"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn groups_fit_into_the_available_counters() {
        for &arch in Microarch::all() {
            let table = tables::for_arch(arch);
            for kind in supported_groups(arch) {
                let def = group_definition(arch, kind).unwrap();
                assert!(
                    def.pmc_events() <= table.num_pmc,
                    "{arch:?} {kind:?} needs {} PMCs but only {} exist",
                    def.pmc_events(),
                    table.num_pmc
                );
            }
        }
    }

    #[test]
    fn paper_table_availability_per_architecture() {
        // Nehalem/Westmere support all eleven groups.
        assert_eq!(supported_groups(Microarch::WestmereEp).len(), 11);
        assert_eq!(supported_groups(Microarch::NehalemEp).len(), 11);
        // Core 2 has no L3 groups.
        let core2 = supported_groups(Microarch::Core2);
        assert!(!core2.contains(&EventGroupKind::L3));
        assert!(!core2.contains(&EventGroupKind::L3CACHE));
        assert!(core2.contains(&EventGroupKind::FLOPS_DP));
        assert!(core2.contains(&EventGroupKind::MEM));
        // K8 has no L3 either; K10 (Istanbul) does.
        assert!(!supported_groups(Microarch::K8).contains(&EventGroupKind::L3));
        assert!(supported_groups(Microarch::K10).contains(&EventGroupKind::L3CACHE));
    }

    #[test]
    fn mem_group_on_nehalem_uses_uncore_counters() {
        let def = group_definition(Microarch::NehalemEp, EventGroupKind::MEM).unwrap();
        assert!(def.uses_uncore());
        let def = group_definition(Microarch::Core2, EventGroupKind::MEM).unwrap();
        assert!(!def.uses_uncore(), "Core 2 measures memory traffic through FSB core events");
    }

    #[test]
    fn group_descriptions_match_the_paper_table() {
        assert_eq!(EventGroupKind::FLOPS_DP.description(), "Double Precision MFlops/s");
        assert_eq!(EventGroupKind::DATA.description(), "Load to store ratio");
        assert_eq!(
            EventGroupKind::TLB.description(),
            "Translation lookaside buffer miss rate/ratio"
        );
    }
}

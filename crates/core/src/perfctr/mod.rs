//! `likwid-perfCtr`: hardware performance counter measurement.
//!
//! The tool has three measurement modes, all reproduced here:
//!
//! * **wrapper mode** — program the counters, start them, run the
//!   application, stop, read and report;
//! * **marker mode** — the application uses the marker API
//!   ([`crate::marker`]) to restrict measurement to named code regions;
//! * **multiplexing mode** — more event groups than counters are measured
//!   round-robin and extrapolated.
//!
//! Submodules: [`formula`] implements the derived-metric expression
//! language, [`groups`] the preconfigured event groups of the paper's
//! table, and [`session`] the counter-programming session (including
//! socket locks for uncore events) and result rendering.

pub mod formula;
pub mod groups;
pub mod session;

pub use formula::Formula;
pub use groups::{group_definition, supported_groups, EventGroupKind, GroupDefinition};
pub use session::{
    parse_event_spec, parse_measurement_spec, MeasurementSpec, PerfCtr, PerfCtrConfig,
    PerfCtrResults,
};

//! `likwid-perfCtr`: hardware performance counter measurement.
//!
//! The tool has three measurement modes, all reproduced here:
//!
//! * **wrapper mode** — program the counters, start them, run the
//!   application, stop, read and report;
//! * **marker mode** — the application uses the marker API
//!   ([`crate::marker`]) to restrict measurement to named code regions;
//! * **multiplexing mode** — more event groups than counters are measured
//!   round-robin and extrapolated;
//! * **timeline mode** (`-t`) — the counter state is sampled at a fixed
//!   virtual-time interval, yielding per-interval deltas and derived
//!   metrics ([`timeline`]);
//! * **stethoscope mode** (`-S`) — a fixed measurement window over whatever
//!   is running, reported as one aggregate.
//!
//! Submodules: [`formula`] implements the derived-metric expression
//! language, [`groups`] the preconfigured event groups of the paper's
//! table, [`session`] the counter-programming session (including socket
//! locks for uncore events) and result rendering, and [`timeline`] the
//! time-resolved measurement subsystem.

pub mod formula;
pub mod groups;
pub mod session;
pub mod timeline;

pub use formula::Formula;
pub use groups::{group_definition, supported_groups, EventGroupKind, GroupDefinition};
pub use session::{
    multiplex_note, parse_event_spec, parse_measurement_spec, Diagnostic, GroupCounts,
    HealingStats, MeasurementSpec, PerfCtr, PerfCtrConfig, PerfCtrResults,
};
pub use timeline::{
    parse_duration, parse_interval, TimelineInterval, TimelineResult, TimelineSession,
};

//! The counter-programming session: from event specification to rendered
//! result tables.

use std::collections::HashMap;

use likwid_perf_events::{CounterSlot, EventDefinition, EventTable, MultiplexSchedule, PerfMon};
use likwid_x86_machine::SimMachine;

use crate::error::{LikwidError, Result};
use crate::perfctr::formula::Formula;
use crate::perfctr::groups::{group_definition, EventGroupKind, GroupDefinition};
use crate::report::{Ascii, Body, Render, Report, Row, Section, Table, Value};

/// What to measure.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasurementSpec {
    /// One preconfigured group (`-g FLOPS_DP`).
    Group(EventGroupKind),
    /// Several groups measured via multiplexing (`-g FLOPS_DP,MEM` with
    /// round-robin switching).
    Groups(Vec<EventGroupKind>),
    /// Explicit event list (`-g EVENT:PMC0,EVENT2:PMC1`).
    Custom(Vec<(String, CounterSlot)>),
}

/// Configuration of a measurement session.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCtrConfig {
    /// The hardware threads to measure (`-c 0-3`).
    pub cpus: Vec<usize>,
    /// What to measure.
    pub spec: MeasurementSpec,
}

/// Parse a `-g` custom event specification
/// (`SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,...:PMC1`).
pub fn parse_event_spec(spec: &str, table: &EventTable) -> Result<Vec<(String, CounterSlot)>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (event, counter) = part.split_once(':').ok_or_else(|| {
            LikwidError::Usage(format!("event spec '{part}' must be EVENT:COUNTER"))
        })?;
        let slot = CounterSlot::parse(counter)
            .ok_or_else(|| LikwidError::UnknownCounter(counter.to_string()))?;
        let def = table.find(event).ok_or_else(|| LikwidError::UnknownEvent(event.to_string()))?;
        if !table.allowed_slots(def).contains(&slot) {
            return Err(LikwidError::Usage(format!(
                "event {event} cannot be counted on {counter}"
            )));
        }
        out.push((event.to_string(), slot));
    }
    if out.is_empty() {
        return Err(LikwidError::Usage("empty event specification".into()));
    }
    Ok(out)
}

/// Parse a `-g` argument into a measurement specification: a preconfigured
/// group name (`MEM`), a comma-separated group list measured via
/// multiplexing (`FLOPS_DP,MEM`), or a custom `EVENT:COUNTER` list.
/// Shared by `likwid-perfctr` and the `likwid-bench` harness.
pub fn parse_measurement_spec(arg: &str, table: &EventTable) -> Result<MeasurementSpec> {
    if let Some(kind) = EventGroupKind::parse(arg) {
        return Ok(MeasurementSpec::Group(kind));
    }
    let parts: Vec<&str> = arg.split(',').map(str::trim).filter(|p| !p.is_empty()).collect();
    if !parts.is_empty() {
        if let Some(kinds) =
            parts.iter().map(|p| EventGroupKind::parse(p)).collect::<Option<Vec<_>>>()
        {
            return Ok(MeasurementSpec::Groups(kinds));
        }
    }
    if arg.contains(':') {
        return Ok(MeasurementSpec::Custom(parse_event_spec(arg, table)?));
    }
    Err(LikwidError::UnknownGroup(arg.to_string()))
}

/// One event group resolved against the architecture's event table.
#[derive(Debug, Clone)]
struct ResolvedGroup {
    name: String,
    events: Vec<(String, CounterSlot, EventDefinition)>,
    time_formula: String,
    metrics: Vec<(String, String)>,
}

impl ResolvedGroup {
    fn from_definition(def: &GroupDefinition, table: &EventTable) -> Result<Self> {
        let events = def
            .events
            .iter()
            .map(|(name, slot)| {
                table
                    .find(name)
                    .cloned()
                    .map(|d| (name.to_string(), *slot, d))
                    .ok_or_else(|| LikwidError::UnknownEvent(name.to_string()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ResolvedGroup {
            name: def.kind.name().to_string(),
            events,
            time_formula: def.time_formula.to_string(),
            metrics: def.metrics.iter().map(|(n, f)| (n.to_string(), f.to_string())).collect(),
        })
    }

    fn from_custom(spec: &[(String, CounterSlot)], table: &EventTable) -> Result<Self> {
        let events = spec
            .iter()
            .map(|(name, slot)| {
                table
                    .find(name)
                    .cloned()
                    .map(|d| (name.clone(), *slot, d))
                    .ok_or_else(|| LikwidError::UnknownEvent(name.clone()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ResolvedGroup {
            name: "CUSTOM".to_string(),
            events,
            time_formula: String::new(),
            metrics: Vec::new(),
        })
    }
}

/// Raw counts of one group: `counts[event_index][cpu_index]`.
pub type GroupCounts = Vec<Vec<u64>>;

/// A measurement session over one machine.
///
/// The session opens one MSR device per measured hardware thread, resolves
/// the requested groups against the architecture's event table, applies
/// socket locks for uncore events (only the first measured hardware thread
/// of each socket programs and reads the package-level counters), and — in
/// multiplexing mode — rotates through the groups with round-robin
/// accounting.
pub struct PerfCtr<'m> {
    machine: &'m SimMachine,
    cpus: Vec<usize>,
    groups: Vec<ResolvedGroup>,
    perfmon: PerfMon,
    /// Socket → owning measured cpu (the "socket lock" of the paper).
    socket_owner: HashMap<u32, usize>,
    active_group: usize,
    schedule: MultiplexSchedule,
    /// Accumulated raw counts per group (multiplex mode).
    accumulated: Vec<GroupCounts>,
    running: bool,
}

impl<'m> PerfCtr<'m> {
    /// Create a session.
    pub fn new(machine: &'m SimMachine, config: PerfCtrConfig) -> Result<Self> {
        if config.cpus.is_empty() {
            return Err(LikwidError::Usage("no hardware threads selected (-c)".into()));
        }
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        let groups: Vec<ResolvedGroup> = match &config.spec {
            MeasurementSpec::Group(kind) => {
                vec![ResolvedGroup::from_definition(
                    &group_definition(machine.arch(), *kind)?,
                    &table,
                )?]
            }
            MeasurementSpec::Groups(kinds) => {
                if kinds.is_empty() {
                    return Err(LikwidError::Usage("no groups given".into()));
                }
                kinds
                    .iter()
                    .map(|k| {
                        ResolvedGroup::from_definition(
                            &group_definition(machine.arch(), *k)?,
                            &table,
                        )
                    })
                    .collect::<Result<Vec<_>>>()?
            }
            MeasurementSpec::Custom(spec) => vec![ResolvedGroup::from_custom(spec, &table)?],
        };

        // Validate counter capacity per group.
        for g in &groups {
            let pmcs = g.events.iter().filter(|(_, s, _)| matches!(s, CounterSlot::Pmc(_))).count();
            if pmcs > table.num_pmc {
                return Err(LikwidError::NotEnoughCounters {
                    requested: pmcs,
                    available: table.num_pmc,
                });
            }
        }

        // Socket locks: the first measured cpu of each socket owns the uncore.
        let topo = machine.topology();
        let mut socket_owner = HashMap::new();
        for &cpu in &config.cpus {
            let socket = topo.hw_thread(cpu)?.socket;
            socket_owner.entry(socket).or_insert(cpu);
        }

        let perfmon = PerfMon::new(machine, &config.cpus)?;
        let num_groups = groups.len();
        let accumulated =
            groups.iter().map(|g| vec![vec![0u64; config.cpus.len()]; g.events.len()]).collect();

        let mut session = PerfCtr {
            machine,
            cpus: config.cpus,
            groups,
            perfmon,
            socket_owner,
            active_group: 0,
            schedule: MultiplexSchedule::new(num_groups),
            accumulated,
            running: false,
        };
        session.program_group(0)?;
        Ok(session)
    }

    /// The measured hardware threads.
    pub fn cpus(&self) -> &[usize] {
        &self.cpus
    }

    /// Number of event groups in this session (more than one only in
    /// multiplexing mode).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The index of the currently programmed group.
    pub fn active_group(&self) -> usize {
        self.active_group
    }

    /// Whether a cpu owns its socket's uncore counters in this session.
    pub fn owns_socket_lock(&self, cpu: usize) -> bool {
        self.socket_owner.values().any(|&owner| owner == cpu)
    }

    /// The socket-lock owners, in measured-cpu order.
    pub fn socket_lock_owners(&self) -> Vec<usize> {
        self.cpus.iter().copied().filter(|&cpu| self.owns_socket_lock(cpu)).collect()
    }

    /// Program all counters of group `index` (does not start them).
    fn program_group(&mut self, index: usize) -> Result<()> {
        let group = &self.groups[index];
        for &cpu in &self.cpus {
            for (_, slot, def) in &group.events {
                if slot.is_uncore() && !self.owns_socket_lock(cpu) {
                    continue;
                }
                self.perfmon.setup(cpu, *slot, def)?;
            }
        }
        self.active_group = index;
        Ok(())
    }

    /// Start counting on all measured hardware threads.
    pub fn start(&mut self) -> Result<()> {
        for &cpu in &self.cpus {
            self.perfmon.start(cpu)?;
        }
        self.running = true;
        Ok(())
    }

    /// Stop counting on all measured hardware threads.
    pub fn stop(&mut self) -> Result<()> {
        for &cpu in &self.cpus {
            self.perfmon.stop(cpu)?;
        }
        self.running = false;
        Ok(())
    }

    /// Read the current raw counts of the active group:
    /// `counts[event][cpu_position]`. Uncore events are attributed to the
    /// socket-lock owner; other cpus read 0 for them.
    pub fn read_counts(&self) -> Result<GroupCounts> {
        let group = &self.groups[self.active_group];
        let mut counts = vec![vec![0u64; self.cpus.len()]; group.events.len()];
        for (ei, (_, slot, _)) in group.events.iter().enumerate() {
            for (ci, &cpu) in self.cpus.iter().enumerate() {
                if slot.is_uncore() && !self.owns_socket_lock(cpu) {
                    continue;
                }
                counts[ei][ci] = self.perfmon.read(cpu, *slot)?;
            }
        }
        Ok(counts)
    }

    /// Multiplexing: accumulate the active group's counts, rotate to the next
    /// group, reprogram and keep running. Mirrors the round-robin counter
    /// reassignment of the real tool.
    pub fn switch_group(&mut self) -> Result<usize> {
        let was_running = self.running;
        if was_running {
            self.stop()?;
        }
        let counts = self.read_counts()?;
        let active = self.active_group;
        for (ei, per_cpu) in counts.iter().enumerate() {
            for (ci, &v) in per_cpu.iter().enumerate() {
                self.accumulated[active][ei][ci] += v;
            }
        }
        self.schedule.tick();
        let next = (active + 1) % self.groups.len();
        self.program_group(next)?;
        if was_running {
            self.start()?;
        }
        Ok(next)
    }

    /// Finish a multiplexed measurement: stop counting and fold any residual
    /// counts of the active group into its accumulator. Unlike
    /// [`PerfCtr::switch_group`] this does not account a schedule interval —
    /// intervals correspond to the completed measurement slices, which is
    /// what the extrapolation divides by.
    pub fn finish(&mut self) -> Result<()> {
        if self.running {
            self.stop()?;
        }
        let counts = self.read_counts()?;
        let active = self.active_group;
        for (ei, per_cpu) in counts.iter().enumerate() {
            for (ci, &v) in per_cpu.iter().enumerate() {
                self.accumulated[active][ei][ci] += v;
            }
        }
        Ok(())
    }

    /// The extrapolated counts of a group after a multiplexed run.
    pub fn extrapolated_counts(&self, group: usize) -> GroupCounts {
        self.accumulated[group]
            .iter()
            .map(|per_cpu| per_cpu.iter().map(|&v| self.schedule.extrapolate(group, v)).collect())
            .collect()
    }

    /// The raw accumulated counts of a group (no extrapolation): exactly
    /// what was measured while the group's counters were live.
    pub fn accumulated_counts(&self, group: usize) -> GroupCounts {
        self.accumulated[group].clone()
    }

    /// The name of a group by index.
    pub fn group_name(&self, group: usize) -> &str {
        &self.groups[group].name
    }

    /// Compute results (event table + derived metrics) for the active group
    /// from raw counts.
    pub fn results(&self, counts: &GroupCounts) -> Result<PerfCtrResults> {
        self.results_for_group(self.active_group, counts)
    }

    /// Compute results for an arbitrary group index (used by the multiplexed
    /// and marker paths). The derived metrics' `time` variable is bound to
    /// the group's time formula (total runtime from the cycle counters) —
    /// the aggregate-mode binding.
    pub fn results_for_group(&self, group: usize, counts: &GroupCounts) -> Result<PerfCtrResults> {
        self.results_for_group_with_time(group, counts, None)
    }

    /// Compute results for one *timeline interval* of a group: the derived
    /// metrics' `time` variable is bound to the interval length `dt_s`, not
    /// to the time formula, so rate metrics (MBytes/s, MFlops/s) come out
    /// per interval. Aggregate-mode results ([`PerfCtr::results_for_group`])
    /// keep the total-runtime binding.
    pub fn results_for_group_at(
        &self,
        group: usize,
        counts: &GroupCounts,
        dt_s: f64,
    ) -> Result<PerfCtrResults> {
        self.results_for_group_with_time(group, counts, Some(dt_s))
    }

    fn results_for_group_with_time(
        &self,
        group: usize,
        counts: &GroupCounts,
        time_override: Option<f64>,
    ) -> Result<PerfCtrResults> {
        let g = &self.groups[group];
        let inverse_clock = 1.0 / self.machine.clock().frequency_hz;

        let mut metrics = Vec::new();
        if !g.metrics.is_empty() {
            let time_formula = Formula::parse(&g.time_formula)?;
            let parsed: Vec<(String, Formula)> = g
                .metrics
                .iter()
                .map(|(n, f)| Formula::parse(f).map(|pf| (n.clone(), pf)))
                .collect::<Result<Vec<_>>>()?;
            for (name, f) in &parsed {
                let mut per_cpu = Vec::with_capacity(self.cpus.len());
                for ci in 0..self.cpus.len() {
                    let mut vars: HashMap<String, f64> = HashMap::new();
                    vars.insert("inverseClock".to_string(), inverse_clock);
                    for (ei, (_, slot, _)) in g.events.iter().enumerate() {
                        vars.insert(slot.name(), counts[ei][ci] as f64);
                    }
                    let time = match time_override {
                        Some(dt) => dt,
                        None => time_formula.evaluate(&vars)?,
                    };
                    vars.insert("time".to_string(), time);
                    per_cpu.push(f.evaluate(&vars)?);
                }
                metrics.push((name.clone(), per_cpu));
            }
        }

        Ok(PerfCtrResults {
            group_name: g.name.clone(),
            cpus: self.cpus.clone(),
            events: g
                .events
                .iter()
                .enumerate()
                .map(|(ei, (name, slot, _))| (name.clone(), *slot, counts[ei].clone()))
                .collect(),
            metrics,
        })
    }

    /// Convenience wrapper-mode flow: start, run `body`, stop, and return the
    /// results of the active group. `body` receives the machine so it can
    /// drive workload execution.
    pub fn measure<T>(
        &mut self,
        body: impl FnOnce(&SimMachine) -> T,
    ) -> Result<(T, PerfCtrResults)> {
        self.start()?;
        let value = body(self.machine);
        self.stop()?;
        let counts = self.read_counts()?;
        let results = self.results(&counts)?;
        Ok((value, results))
    }
}

/// Measured event counts and derived metrics, ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCtrResults {
    /// Group name (e.g. "FLOPS_DP").
    pub group_name: String,
    /// Measured hardware threads (column order).
    pub cpus: Vec<usize>,
    /// `(event name, counter, per-cpu counts)`.
    pub events: Vec<(String, CounterSlot, Vec<u64>)>,
    /// `(metric name, per-cpu values)`.
    pub metrics: Vec<(String, Vec<f64>)>,
}

impl PerfCtrResults {
    /// The count of an event on one measured cpu (by position).
    pub fn event_count(&self, event: &str, cpu_position: usize) -> Option<u64> {
        self.events
            .iter()
            .find(|(n, _, _)| n == event)
            .and_then(|(_, _, counts)| counts.get(cpu_position).copied())
    }

    /// The value of a metric on one measured cpu (by position).
    pub fn metric(&self, name: &str, cpu_position: usize) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.get(cpu_position).copied())
    }

    /// Build the structured report of the measurement: the event-count
    /// table, followed by the derived-metric table when the group defines
    /// metrics. Rows are keyed by event/metric name, columns by `core N`,
    /// so consumers read typed counts via [`Table::cell`] instead of
    /// scraping the listing.
    pub fn report(&self) -> Report {
        let mut report = Report::new(format!("likwid-perfctr.{}", self.group_name));
        let mut header: Vec<String> = vec!["Event".to_string()];
        header.extend(self.cpus.iter().map(|c| format!("core {c}")));
        let mut events_table = Table::bordered(header);
        for (name, _, counts) in &self.events {
            let mut row = vec![Value::Str(name.clone())];
            row.extend(counts.iter().map(|&c| Value::Count(c)));
            events_table.push(Row::new(row));
        }
        report.push(Section::new("events", Body::Table(events_table)));

        if !self.metrics.is_empty() {
            let mut header: Vec<String> = vec!["Metric".to_string()];
            header.extend(self.cpus.iter().map(|c| format!("core {c}")));
            let mut metrics_table = Table::bordered(header);
            for (name, values) in &self.metrics {
                let mut row = vec![Value::Str(name.clone())];
                row.extend(values.iter().map(|&v| Value::Real(v)));
                metrics_table.push(Row::new(row));
            }
            report.push(Section::new("metrics", Body::Table(metrics_table)));
        }
        report
    }

    /// Render the two tables of the tool output (events, then metrics), in
    /// the style of the FLOPS_DP listing of the paper.
    pub fn render(&self) -> String {
        Ascii.render(&self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_perf_events::{EventEngine, EventSample, HwEventKind};
    use likwid_x86_machine::MachinePreset;

    /// Drive a synthetic "workload" through the counting engine: every
    /// measured cpu retires the given per-thread counts.
    fn apply_activity(
        machine: &SimMachine,
        activity: &[(usize, HwEventKind, u64)],
        uncore: &[(usize, HwEventKind, u64)],
    ) {
        let engine = EventEngine::new(machine);
        let mut sample =
            EventSample::new(machine.num_hw_threads(), machine.topology().sockets as usize);
        for &(cpu, kind, value) in activity {
            sample.threads[cpu].add(kind, value);
        }
        for &(socket, kind, value) in uncore {
            sample.sockets[socket].add(kind, value);
        }
        engine.apply(machine, &sample);
    }

    #[test]
    fn flops_dp_wrapper_mode_reproduces_the_paper_listing_shape() {
        // The paper's Core 2 Quad FLOPS_DP marker listing: 8.192e6 packed DP
        // operations per core in the benchmark region, ~1640 MFlops/s.
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config = PerfCtrConfig {
            cpus: vec![0, 1, 2, 3],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        session.start().unwrap();
        let activity: Vec<(usize, HwEventKind, u64)> = (0..4)
            .flat_map(|cpu| {
                vec![
                    (cpu, HwEventKind::SimdPackedDouble, 8_192_000),
                    (cpu, HwEventKind::SimdScalarDouble, 1),
                    (cpu, HwEventKind::InstructionsRetired, 18_802_400),
                    (cpu, HwEventKind::CoreCycles, 28_583_800),
                ]
            })
            .collect();
        apply_activity(&machine, &activity, &[]);
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();

        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(8_192_000));
        assert_eq!(results.event_count("INSTR_RETIRED_ANY", 2), Some(18_802_400));
        let cpi = results.metric("CPI", 0).unwrap();
        assert!((cpi - 1.52).abs() < 0.01, "CPI should be ~1.52, got {cpi}");
        let runtime = results.metric("Runtime [s]", 0).unwrap();
        assert!((runtime - 0.0101).abs() < 0.0003, "runtime ~10.1 ms, got {runtime}");
        let mflops = results.metric("DP MFlops/s", 0).unwrap();
        assert!((mflops - 1620.0).abs() < 30.0, "~1620 MFlops/s, got {mflops}");
        let rendered = results.render();
        assert!(rendered.contains("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"));
        assert!(rendered.contains("DP MFlops/s"));
    }

    #[test]
    fn uncore_events_use_socket_locks() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        // Measure all 8 physical-core SMT-0 threads across both sockets.
        let cpus: Vec<usize> = (0..8).collect();
        let config =
            PerfCtrConfig { cpus: cpus.clone(), spec: MeasurementSpec::Group(EventGroupKind::MEM) };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        // Socket 0's owner is cpu 0, socket 1's owner is cpu 4.
        assert!(session.owns_socket_lock(0));
        assert!(session.owns_socket_lock(4));
        assert!(!session.owns_socket_lock(1));
        session.start().unwrap();
        apply_activity(
            &machine,
            &(0..8).map(|c| (c, HwEventKind::CoreCycles, 2_660_000_000)).collect::<Vec<_>>(),
            &[
                (0, HwEventKind::MemoryReads, 900_000_000),
                (0, HwEventKind::MemoryWrites, 300_000_000),
                (1, HwEventKind::MemoryReads, 100_000_000),
            ],
        );
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();
        // The uncore read event is attributed to the socket owners only.
        assert_eq!(results.event_count("UNC_QMC_NORMAL_READS_ANY", 0), Some(900_000_000));
        assert_eq!(results.event_count("UNC_QMC_NORMAL_READS_ANY", 1), Some(0));
        assert_eq!(results.event_count("UNC_QMC_NORMAL_READS_ANY", 4), Some(100_000_000));
        // Memory bandwidth on the socket-0 owner: (0.9e9+0.3e9)*64/1s ≈ 76.8 GB/s
        // over a 1-second (2.66e9 cycles) run.
        let bw = results.metric("Memory bandwidth [MBytes/s]", 0).unwrap();
        assert!((bw - 76_800.0).abs() / 76_800.0 < 0.01, "got {bw}");
    }

    #[test]
    fn custom_event_spec_is_parsed_and_validated() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        let spec = parse_event_spec(
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1",
            &table,
        )
        .unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec[0].1, CounterSlot::Pmc(0));

        assert!(parse_event_spec("NO_SUCH_EVENT:PMC0", &table).is_err());
        assert!(parse_event_spec("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC9", &table).is_err());
        assert!(parse_event_spec("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", &table).is_err());
        assert!(parse_event_spec("", &table).is_err());

        let config = PerfCtrConfig { cpus: vec![1], spec: MeasurementSpec::Custom(spec) };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        session.start().unwrap();
        apply_activity(&machine, &[(1, HwEventKind::SimdPackedDouble, 1234)], &[]);
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(1234));
        assert!(results.metrics.is_empty(), "custom specs have no derived metrics");
    }

    #[test]
    fn event_spec_rejects_counters_that_cannot_carry_the_event() {
        use likwid_perf_events::CounterSlot as Slot;
        use likwid_perf_events::{tables, CounterClass};
        use likwid_x86_machine::Microarch;

        for &arch in Microarch::all() {
            let table = tables::for_arch(arch);

            // A general-purpose core event accepts any PMC but never a slot
            // from a different counter class.
            let pmc_event = table
                .events
                .iter()
                .find(|e| matches!(e.counters, CounterClass::AnyPmc))
                .unwrap_or_else(|| panic!("{arch:?} has no AnyPmc event"));
            for n in 0..table.num_pmc as u8 {
                let spec = format!("{}:PMC{n}", pmc_event.name);
                assert!(parse_event_spec(&spec, &table).is_ok(), "{arch:?} {spec}");
            }
            let beyond = format!("{}:PMC{}", pmc_event.name, table.num_pmc);
            assert!(parse_event_spec(&beyond, &table).is_err(), "{arch:?} {beyond}");
            if table.num_fixed > 0 {
                let spec = format!("{}:FIXC0", pmc_event.name);
                assert!(parse_event_spec(&spec, &table).is_err(), "{arch:?} {spec}");
            }
            if table.num_uncore_pmc > 0 {
                let spec = format!("{}:UPMC0", pmc_event.name);
                assert!(parse_event_spec(&spec, &table).is_err(), "{arch:?} {spec}");
            }

            // Fixed events are pinned to their one fixed counter.
            if let Some(fixed) =
                table.events.iter().find(|e| matches!(e.counters, CounterClass::Fixed(_)))
            {
                let CounterClass::Fixed(slot) = fixed.counters else { unreachable!() };
                let ok = format!("{}:FIXC{slot}", fixed.name);
                assert!(parse_event_spec(&ok, &table).is_ok(), "{arch:?} {ok}");
                let wrong = format!("{}:PMC0", fixed.name);
                assert!(parse_event_spec(&wrong, &table).is_err(), "{arch:?} {wrong}");
                let other_fixed = format!("{}:FIXC{}", fixed.name, (slot + 1) % 3);
                assert!(parse_event_spec(&other_fixed, &table).is_err(), "{arch:?} {other_fixed}");
            }

            // Uncore events never schedule on core counters and vice versa.
            if let Some(uncore) =
                table.events.iter().find(|e| matches!(e.counters, CounterClass::AnyUncorePmc))
            {
                let ok = format!("{}:UPMC0", uncore.name);
                let spec = parse_event_spec(&ok, &table).unwrap();
                assert_eq!(spec[0].1, Slot::UncorePmc(0));
                let wrong = format!("{}:PMC0", uncore.name);
                assert!(parse_event_spec(&wrong, &table).is_err(), "{arch:?} {wrong}");
            }
        }
    }

    #[test]
    fn every_documented_event_parses_on_its_first_allowed_slot() {
        use likwid_perf_events::tables;
        use likwid_x86_machine::Microarch;

        for &arch in Microarch::all() {
            let table = tables::for_arch(arch);
            for event in &table.events {
                let slots = table.allowed_slots(event);
                let slot = slots.first().expect("validated non-empty by the tables tests");
                let spec = format!("{}:{}", event.name, slot.name());
                let parsed = parse_event_spec(&spec, &table)
                    .unwrap_or_else(|e| panic!("{arch:?} '{spec}' failed: {e}"));
                assert_eq!(parsed, vec![(event.name.to_string(), *slot)]);
            }
        }
    }

    #[test]
    fn measurement_specs_parse_groups_lists_and_custom_events() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        assert_eq!(
            parse_measurement_spec("MEM", &table).unwrap(),
            MeasurementSpec::Group(EventGroupKind::MEM)
        );
        assert_eq!(
            parse_measurement_spec("FLOPS_DP,MEM", &table).unwrap(),
            MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::MEM])
        );
        assert!(matches!(
            parse_measurement_spec("L1D_REPL:PMC0", &table).unwrap(),
            MeasurementSpec::Custom(_)
        ));
        assert!(matches!(
            parse_measurement_spec("NOT_A_GROUP", &table),
            Err(LikwidError::UnknownGroup(_))
        ));
        // A list mixing a group with an unknown name is not a group list.
        assert!(parse_measurement_spec("FLOPS_DP,BOGUS", &table).is_err());
    }

    #[test]
    fn unsupported_group_is_rejected() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config =
            PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::L3) };
        assert!(matches!(
            PerfCtr::new(&machine, config),
            Err(LikwidError::GroupUnsupported { .. })
        ));
    }

    #[test]
    fn empty_cpu_list_is_rejected() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config =
            PerfCtrConfig { cpus: vec![], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) };
        assert!(PerfCtr::new(&machine, config).is_err());
    }

    #[test]
    fn multiplexing_rotates_groups_and_extrapolates() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let config = PerfCtrConfig {
            cpus: vec![0],
            spec: MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::L2]),
        };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        assert_eq!(session.num_groups(), 2);
        session.start().unwrap();

        // Four equal time slices of identical activity; each group is active
        // for two of them, so extrapolation should recover the full total.
        for _slice in 0..4 {
            apply_activity(
                &machine,
                &[
                    (0, HwEventKind::SimdPackedDouble, 1000),
                    (0, HwEventKind::L1Misses, 500),
                    (0, HwEventKind::L2LinesOut, 100),
                    (0, HwEventKind::InstructionsRetired, 10_000),
                    (0, HwEventKind::CoreCycles, 20_000),
                ],
                &[],
            );
            session.switch_group().unwrap();
        }
        session.finish().unwrap();

        let flops = session.extrapolated_counts(0);
        let results0 = session.results_for_group(0, &flops).unwrap();
        let packed = results0.event_count("FP_COMP_OPS_EXE_SSE_FP_PACKED", 0).unwrap();
        assert!(
            (packed as i64 - 4000).abs() <= 10,
            "extrapolated packed count should be ~4000, got {packed}"
        );

        let l2 = session.extrapolated_counts(1);
        let results1 = session.results_for_group(1, &l2).unwrap();
        let repl = results1.event_count("L1D_REPL", 0).unwrap();
        assert!((repl as i64 - 2000).abs() <= 10, "extrapolated L1D_REPL ~2000, got {repl}");
    }

    #[test]
    fn measure_wrapper_runs_the_body_between_start_and_stop() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config =
            PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        let (value, results) = session
            .measure(|m| {
                apply_activity(
                    m,
                    &[
                        (0, HwEventKind::SimdPackedDouble, 77),
                        (0, HwEventKind::CoreCycles, 1000),
                        (0, HwEventKind::InstructionsRetired, 500),
                    ],
                    &[],
                );
                42
            })
            .unwrap();
        assert_eq!(value, 42);
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(77));
    }
}

//! The counter-programming session: from event specification to rendered
//! result tables.

use std::cell::RefCell;
use std::collections::HashMap;

use likwid_perf_events::perfmon::slot_registers;
use likwid_perf_events::{
    CounterSlot, EventDefinition, EventTable, MultiplexSchedule, PerfMon, PerfMonError,
};
use likwid_x86_machine::{MachineError, SimMachine};

use crate::error::{LikwidError, Result};
use crate::perfctr::formula::Formula;
use crate::perfctr::groups::{group_definition, EventGroupKind, GroupDefinition};
use crate::report::{Ascii, Body, Render, Report, Row, Section, Table, Value};

/// What to measure.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasurementSpec {
    /// One preconfigured group (`-g FLOPS_DP`).
    Group(EventGroupKind),
    /// Several groups measured via multiplexing (`-g FLOPS_DP,MEM` with
    /// round-robin switching).
    Groups(Vec<EventGroupKind>),
    /// Explicit event list (`-g EVENT:PMC0,EVENT2:PMC1`).
    Custom(Vec<(String, CounterSlot)>),
}

/// Configuration of a measurement session.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCtrConfig {
    /// The hardware threads to measure (`-c 0-3`).
    pub cpus: Vec<usize>,
    /// What to measure.
    pub spec: MeasurementSpec,
}

/// Parse a `-g` custom event specification
/// (`SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,...:PMC1`).
pub fn parse_event_spec(spec: &str, table: &EventTable) -> Result<Vec<(String, CounterSlot)>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (event, counter) = part.split_once(':').ok_or_else(|| {
            LikwidError::Usage(format!("event spec '{part}' must be EVENT:COUNTER"))
        })?;
        let slot = CounterSlot::parse(counter)
            .ok_or_else(|| LikwidError::UnknownCounter(counter.to_string()))?;
        let def = table.find(event).ok_or_else(|| LikwidError::UnknownEvent(event.to_string()))?;
        if !table.allowed_slots(def).contains(&slot) {
            return Err(LikwidError::Usage(format!(
                "event {event} cannot be counted on {counter}"
            )));
        }
        out.push((event.to_string(), slot));
    }
    if out.is_empty() {
        return Err(LikwidError::Usage("empty event specification".into()));
    }
    Ok(out)
}

/// Parse a `-g` argument into a measurement specification: a preconfigured
/// group name (`MEM`), a comma-separated group list measured via
/// multiplexing (`FLOPS_DP,MEM`), or a custom `EVENT:COUNTER` list.
/// Shared by `likwid-perfctr` and the `likwid-bench` harness.
pub fn parse_measurement_spec(arg: &str, table: &EventTable) -> Result<MeasurementSpec> {
    if let Some(kind) = EventGroupKind::parse(arg) {
        return Ok(MeasurementSpec::Group(kind));
    }
    let parts: Vec<&str> = arg.split(',').map(str::trim).filter(|p| !p.is_empty()).collect();
    if !parts.is_empty() {
        if let Some(kinds) =
            parts.iter().map(|p| EventGroupKind::parse(p)).collect::<Option<Vec<_>>>()
        {
            return Ok(MeasurementSpec::Groups(kinds));
        }
    }
    if arg.contains(':') {
        return Ok(MeasurementSpec::Custom(parse_event_spec(arg, table)?));
    }
    Err(LikwidError::UnknownGroup(arg.to_string()))
}

/// The `--help` paragraph describing which [`parse_measurement_spec`]
/// spellings multiplex. Tools taking a `-g` flag append this through
/// [`crate::args::ArgSpec::note`] so the generated help carries the
/// annotation the one-line flag help cannot.
pub fn multiplex_note() -> &'static str {
    "A comma-separated group list (-g FLOPS_DP,MEM) multiplexes: the groups take turns on \
     the counters and are only measured together in timeline mode or through the session \
     API, where the rotation is extrapolated by schedule coverage. Aggregate runs measure \
     exactly one group; EVENT:CTR lists never multiplex."
}

/// One event group resolved against the architecture's event table.
#[derive(Debug, Clone)]
struct ResolvedGroup {
    name: String,
    events: Vec<(String, CounterSlot, EventDefinition)>,
    time_formula: String,
    metrics: Vec<(String, String)>,
}

impl ResolvedGroup {
    fn from_definition(def: &GroupDefinition, table: &EventTable) -> Result<Self> {
        let events = def
            .events
            .iter()
            .map(|(name, slot)| {
                table
                    .find(name)
                    .cloned()
                    .map(|d| (name.to_string(), *slot, d))
                    .ok_or_else(|| LikwidError::UnknownEvent(name.to_string()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ResolvedGroup {
            name: def.kind.name().to_string(),
            events,
            time_formula: def.time_formula.to_string(),
            metrics: def.metrics.iter().map(|(n, f)| (n.to_string(), f.to_string())).collect(),
        })
    }

    fn from_custom(spec: &[(String, CounterSlot)], table: &EventTable) -> Result<Self> {
        let events = spec
            .iter()
            .map(|(name, slot)| {
                table
                    .find(name)
                    .cloned()
                    .map(|d| (name.clone(), *slot, d))
                    .ok_or_else(|| LikwidError::UnknownEvent(name.clone()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ResolvedGroup {
            name: "CUSTOM".to_string(),
            events,
            time_formula: String::new(),
            metrics: Vec::new(),
        })
    }
}

/// Raw counts of one group: `counts[event_index][cpu_index]`.
pub type GroupCounts = Vec<Vec<u64>>;

/// One degradation recorded by the self-healing session: what was dropped
/// or corrected, and why. Rendered as the `diagnostics` section of the
/// report, so a partially broken machine still produces a complete run.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What degraded (`cpu 3`, `PMC0 (EVENT) on cpu 1`, …).
    pub subject: String,
    /// Why, and what the session did about it.
    pub reason: String,
}

/// Healing effort spent by a session. Deliberately not part of
/// [`PerfCtrResults`]: retries, backoff and reprogramming never change
/// measured values, so results under transient faults stay bit-identical
/// to a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealingStats {
    /// Individual MSR accesses that had to be repeated (transient EIO).
    pub msr_retries: u64,
    /// Deterministic exponential-backoff units spent between attempts.
    pub backoff_units: u64,
    /// Counters reprogrammed after a verify-after-write mismatch.
    pub reprograms: u64,
    /// Counters or cpus dropped from the session (permanent faults).
    pub degradations: usize,
}

/// Per-slot wraparound and liveness tracking.
#[derive(Debug, Clone, Default)]
struct SlotHeal {
    /// Last raw (width-masked) counter value seen.
    last_raw: u64,
    /// Last machine-side wide (unwrapped) value seen, for multi-wrap
    /// detection.
    last_wide: u64,
    /// Wrap-corrected cumulative count since the slot was last programmed.
    unwrapped: u64,
    /// The slot was dropped (stuck register); it reads as frozen zeros.
    dead: bool,
    /// A multi-wrap diagnostic was already recorded for this slot.
    wrap_warned: bool,
}

/// Mutable healing state of a session, behind a `RefCell` because
/// [`PerfCtr::read_counts`] must stay `&self` (the marker API reads through
/// a shared reference).
#[derive(Debug, Default)]
struct HealState {
    /// Tracking per `[group][event][cpu position]`.
    slots: Vec<Vec<Vec<SlotHeal>>>,
    /// Cpus whose MSR device failed permanently; their counts freeze.
    dead_cpus: Vec<usize>,
    /// Everything that degraded, in occurrence order.
    diagnostics: Vec<Diagnostic>,
    /// Counters reprogrammed after a verify mismatch.
    reprograms: u64,
}

impl HealState {
    fn cpu_is_dead(&self, cpu: usize) -> bool {
        self.dead_cpus.contains(&cpu)
    }

    fn mark_cpu_dead(&mut self, cpu: usize, err: &PerfMonError) {
        if !self.cpu_is_dead(cpu) {
            self.dead_cpus.push(cpu);
            self.diagnostics.push(Diagnostic {
                subject: format!("cpu {cpu}"),
                reason: format!("dropped from the measurement: {err}"),
            });
        }
    }
}

/// Whether a counter-programming error is a permanently failing MSR access.
/// Transient EIO is already retried away inside [`PerfMon`], so an I/O error
/// escaping it means the device is gone for good (a dead cpu).
fn is_permanent_io(e: &PerfMonError) -> bool {
    matches!(e, PerfMonError::Msr(MachineError::MsrIo { .. }))
}

/// A measurement session over one machine.
///
/// The session opens one MSR device per measured hardware thread, resolves
/// the requested groups against the architecture's event table, applies
/// socket locks for uncore events (only the first measured hardware thread
/// of each socket programs and reads the package-level counters), and — in
/// multiplexing mode — rotates through the groups with round-robin
/// accounting.
pub struct PerfCtr<'m> {
    machine: &'m SimMachine,
    cpus: Vec<usize>,
    groups: Vec<ResolvedGroup>,
    perfmon: PerfMon,
    /// Socket → owning measured cpu (the "socket lock" of the paper).
    socket_owner: HashMap<u32, usize>,
    active_group: usize,
    schedule: MultiplexSchedule,
    /// Accumulated raw counts per group (multiplex mode).
    accumulated: Vec<GroupCounts>,
    /// `(counter register, width mask)` per `[group][event]`, for
    /// wraparound-correct delta computation.
    slot_meta: Vec<Vec<(u32, u64)>>,
    /// Wraparound/degradation tracking (interior mutability: reads heal).
    heal: RefCell<HealState>,
    running: bool,
    /// Whether the session was ever started (reads before that are misuse).
    started: bool,
    /// Whether the session currently yields the hardware to other sessions
    /// (between [`PerfCtr::suspend`] and [`PerfCtr::resume`]). While
    /// suspended, the counter registers may hold foreign sessions' state and
    /// must not be folded into this session's accumulators.
    suspended: bool,
}

impl<'m> PerfCtr<'m> {
    /// Create a session.
    pub fn new(machine: &'m SimMachine, config: PerfCtrConfig) -> Result<Self> {
        let setup_started = crate::trace::now();
        if config.cpus.is_empty() {
            return Err(LikwidError::Usage("no hardware threads selected (-c)".into()));
        }
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        let groups: Vec<ResolvedGroup> = match &config.spec {
            MeasurementSpec::Group(kind) => {
                vec![ResolvedGroup::from_definition(
                    &group_definition(machine.arch(), *kind)?,
                    &table,
                )?]
            }
            MeasurementSpec::Groups(kinds) => {
                if kinds.is_empty() {
                    return Err(LikwidError::Usage("no groups given".into()));
                }
                kinds
                    .iter()
                    .map(|k| {
                        ResolvedGroup::from_definition(
                            &group_definition(machine.arch(), *k)?,
                            &table,
                        )
                    })
                    .collect::<Result<Vec<_>>>()?
            }
            MeasurementSpec::Custom(spec) => vec![ResolvedGroup::from_custom(spec, &table)?],
        };

        // Validate counter capacity per group.
        for g in &groups {
            let pmcs = g.events.iter().filter(|(_, s, _)| matches!(s, CounterSlot::Pmc(_))).count();
            if pmcs > table.num_pmc {
                return Err(LikwidError::NotEnoughCounters {
                    requested: pmcs,
                    available: table.num_pmc,
                });
            }
        }

        // Socket locks: the first measured cpu of each socket owns the uncore.
        let topo = machine.topology();
        let mut socket_owner = HashMap::new();
        for &cpu in &config.cpus {
            let socket = topo.hw_thread(cpu)?.socket;
            socket_owner.entry(socket).or_insert(cpu);
        }

        let perfmon = PerfMon::new(machine, &config.cpus)?;
        let num_groups = groups.len();
        let accumulated =
            groups.iter().map(|g| vec![vec![0u64; config.cpus.len()]; g.events.len()]).collect();

        let vendor = machine.vendor();
        let slot_meta: Vec<Vec<(u32, u64)>> = groups
            .iter()
            .map(|g| {
                g.events
                    .iter()
                    .map(|(_, slot, _)| {
                        let (_, counter) = slot_registers(vendor, *slot);
                        let bits = table.counter_bits(*slot);
                        let mask =
                            if bits == 0 || bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
                        (counter, mask)
                    })
                    .collect()
            })
            .collect();
        let heal = RefCell::new(HealState {
            slots: groups
                .iter()
                .map(|g| vec![vec![SlotHeal::default(); config.cpus.len()]; g.events.len()])
                .collect(),
            ..HealState::default()
        });

        let mut session = PerfCtr {
            machine,
            cpus: config.cpus,
            groups,
            perfmon,
            socket_owner,
            active_group: 0,
            schedule: MultiplexSchedule::new(num_groups),
            accumulated,
            slot_meta,
            heal,
            running: false,
            started: false,
            suspended: false,
        };
        session.program_group(0)?;
        crate::trace::complete_since(
            crate::trace::cat::CORE,
            setup_started,
            || "session.setup".to_string(),
            || {
                vec![
                    ("cpus", format!("{:?}", session.cpus)),
                    ("groups", session.groups.len().to_string()),
                ]
            },
        );
        Ok(session)
    }

    /// The measured hardware threads.
    pub fn cpus(&self) -> &[usize] {
        &self.cpus
    }

    /// Number of event groups in this session (more than one only in
    /// multiplexing mode).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The index of the currently programmed group.
    pub fn active_group(&self) -> usize {
        self.active_group
    }

    /// Whether a cpu owns its socket's uncore counters in this session.
    pub fn owns_socket_lock(&self, cpu: usize) -> bool {
        self.socket_owner.values().any(|&owner| owner == cpu)
    }

    /// The socket-lock owners, in measured-cpu order.
    pub fn socket_lock_owners(&self) -> Vec<usize> {
        self.cpus.iter().copied().filter(|&cpu| self.owns_socket_lock(cpu)).collect()
    }

    /// Program all counters of group `index` (does not start them).
    ///
    /// Every programmed counter is verified by reading its state back; a
    /// mismatch (e.g. a stuck PERFEVTSEL) is answered by reprogramming, and
    /// a counter that still does not hold its state after three rounds is
    /// dropped from the session with a diagnostic instead of failing the
    /// run. A cpu whose MSR device fails permanently (EIO surviving the
    /// per-access retries inside [`PerfMon`]) is dropped entirely.
    fn program_group(&mut self, index: usize) -> Result<()> {
        const MAX_PROGRAM_ATTEMPTS: u32 = 3;
        let group = &self.groups[index];
        let msr_file = self.machine.msr_file();
        let mut heal = self.heal.borrow_mut();
        'cpus: for (ci, &cpu) in self.cpus.iter().enumerate() {
            if heal.cpu_is_dead(cpu) {
                continue;
            }
            for (ei, (name, slot, def)) in group.events.iter().enumerate() {
                if slot.is_uncore() && !self.owns_socket_lock(cpu) {
                    continue;
                }
                // Fresh wrap tracking for this programming cycle; dead slots
                // stay dead and contribute frozen zeros from here on.
                let was_dead = heal.slots[index][ei][ci].dead;
                heal.slots[index][ei][ci] = SlotHeal { dead: was_dead, ..SlotHeal::default() };
                if was_dead {
                    continue;
                }
                let mut programmed = false;
                for _ in 0..MAX_PROGRAM_ATTEMPTS {
                    match self.perfmon.setup(cpu, *slot, def) {
                        Ok(()) => {}
                        Err(e) if is_permanent_io(&e) => {
                            heal.mark_cpu_dead(cpu, &e);
                            continue 'cpus;
                        }
                        Err(e) => return Err(e.into()),
                    }
                    match self.perfmon.verify(cpu, *slot, def) {
                        Ok(true) => {
                            programmed = true;
                            break;
                        }
                        Ok(false) => heal.reprograms += 1,
                        Err(e) if is_permanent_io(&e) => {
                            heal.mark_cpu_dead(cpu, &e);
                            continue 'cpus;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                if programmed {
                    // The counter was just zeroed; resynchronise the wide
                    // (machine-side, unwrapped) baseline used for multi-wrap
                    // detection.
                    let (reg, _) = self.slot_meta[index][ei];
                    heal.slots[index][ei][ci].last_wide =
                        msr_file.wide_value(cpu, reg).unwrap_or(0);
                } else {
                    heal.slots[index][ei][ci].dead = true;
                    heal.diagnostics.push(Diagnostic {
                        subject: format!("{} ({name}) on cpu {cpu}", slot.name()),
                        reason: format!(
                            "programmed state did not stick after \
                             {MAX_PROGRAM_ATTEMPTS} attempts; counter dropped"
                        ),
                    });
                }
            }
        }
        drop(heal);
        self.active_group = index;
        Ok(())
    }

    /// Start counting on all measured hardware threads.
    ///
    /// Enables exactly the active group's counter slots (not every
    /// programmed select register on the cpu): under the `likwid-perfctrd`
    /// broker other sessions leave their selects programmed-but-disabled
    /// across a suspend, and blanket-enabling them would count this
    /// session's activity into a foreign session's registers.
    pub fn start(&mut self) -> Result<()> {
        if self.running {
            return Err(LikwidError::Session(
                "start() called while the session is already counting (stop() it first)".into(),
            ));
        }
        let slots: Vec<CounterSlot> =
            self.groups[self.active_group].events.iter().map(|(_, slot, _)| *slot).collect();
        let mut heal = self.heal.borrow_mut();
        for &cpu in &self.cpus {
            if heal.cpu_is_dead(cpu) {
                continue;
            }
            match self.perfmon.start_slots(cpu, &slots) {
                Ok(()) => {}
                Err(e) if is_permanent_io(&e) => heal.mark_cpu_dead(cpu, &e),
                Err(e) => return Err(e.into()),
            }
        }
        drop(heal);
        self.running = true;
        self.started = true;
        Ok(())
    }

    /// Stop counting on all measured hardware threads.
    pub fn stop(&mut self) -> Result<()> {
        let mut heal = self.heal.borrow_mut();
        for &cpu in &self.cpus {
            if heal.cpu_is_dead(cpu) {
                continue;
            }
            match self.perfmon.stop(cpu) {
                Ok(()) => {}
                Err(e) if is_permanent_io(&e) => heal.mark_cpu_dead(cpu, &e),
                Err(e) => return Err(e.into()),
            }
        }
        drop(heal);
        self.running = false;
        Ok(())
    }

    /// Read the current counts of the active group:
    /// `counts[event][cpu_position]`. Uncore events are attributed to the
    /// socket-lock owner; other cpus read 0 for them.
    ///
    /// Counts are wraparound-corrected against the implemented counter width
    /// (40/48-bit PMCs, 44-bit fixed counters): a raw value below the last
    /// one seen is one wrap, not a negative delta. A counter that advances a
    /// full wrap period or more between two reads cannot be corrected from
    /// the raw values alone; that case is detected against the machine-side
    /// wide shadow and reported as a diagnostic rather than silently
    /// mis-corrected. Dead cpus/counters return their last good (frozen)
    /// value.
    pub fn read_counts(&self) -> Result<GroupCounts> {
        if !self.started {
            return Err(LikwidError::Session(
                "read_counts() called before the session was ever start()ed".into(),
            ));
        }
        let group = &self.groups[self.active_group];
        let msr_file = self.machine.msr_file();
        let mut counts = vec![vec![0u64; self.cpus.len()]; group.events.len()];
        let mut heal = self.heal.borrow_mut();
        let heal = &mut *heal;
        for (ei, (_, slot, _)) in group.events.iter().enumerate() {
            let (reg, mask) = self.slot_meta[self.active_group][ei];
            for (ci, &cpu) in self.cpus.iter().enumerate() {
                if slot.is_uncore() && !self.owns_socket_lock(cpu) {
                    continue;
                }
                if heal.cpu_is_dead(cpu) || heal.slots[self.active_group][ei][ci].dead {
                    counts[ei][ci] = heal.slots[self.active_group][ei][ci].unwrapped;
                    continue;
                }
                let raw = match self.perfmon.read(cpu, *slot) {
                    Ok(raw) => raw,
                    Err(e) if is_permanent_io(&e) => {
                        heal.mark_cpu_dead(cpu, &e);
                        counts[ei][ci] = heal.slots[self.active_group][ei][ci].unwrapped;
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                let track = &mut heal.slots[self.active_group][ei][ci];
                let delta = raw.wrapping_sub(track.last_raw) & mask;
                track.last_raw = raw;
                track.unwrapped = track.unwrapped.wrapping_add(delta);
                counts[ei][ci] = track.unwrapped;
                // Multi-wrap guard: the machine side keeps an unwrapped
                // shadow of every counter; a disagreement with the
                // width-corrected delta means at least one full wrap period
                // was lost inside this read interval.
                if let Ok(wide) = msr_file.wide_value(cpu, reg) {
                    let wide_delta = wide.wrapping_sub(track.last_wide);
                    track.last_wide = wide;
                    if wide_delta != delta && !track.wrap_warned {
                        track.wrap_warned = true;
                        let lost = wide_delta.wrapping_sub(delta);
                        heal.diagnostics.push(Diagnostic {
                            subject: format!("{} on cpu {cpu}", slot.name()),
                            reason: format!(
                                "counter wrapped more than once within one read \
                                 interval ({lost} counts lost; read more often)"
                            ),
                        });
                    }
                }
            }
        }
        Ok(counts)
    }

    /// A zero counts matrix shaped like the active group — the baseline
    /// right after programming (setup zeroes every counter, so no device
    /// access is needed and no start-state is required).
    pub fn zero_counts(&self) -> GroupCounts {
        vec![vec![0u64; self.cpus.len()]; self.groups[self.active_group].events.len()]
    }

    /// Multiplexing: accumulate the active group's counts, rotate to the next
    /// group, reprogram and keep running. Mirrors the round-robin counter
    /// reassignment of the real tool.
    pub fn switch_group(&mut self) -> Result<usize> {
        if self.groups.len() < 2 {
            return Err(LikwidError::Session(
                "switch_group() needs at least two groups (multiplexing mode)".into(),
            ));
        }
        let was_running = self.running;
        if was_running {
            self.stop()?;
        }
        let counts = self.read_counts()?;
        let active = self.active_group;
        for (ei, per_cpu) in counts.iter().enumerate() {
            for (ci, &v) in per_cpu.iter().enumerate() {
                self.accumulated[active][ei][ci] += v;
            }
        }
        self.schedule.tick();
        let next = (active + 1) % self.groups.len();
        self.program_group(next)?;
        if was_running {
            self.start()?;
        }
        Ok(next)
    }

    /// Finish a multiplexed measurement: stop counting and fold any residual
    /// counts of the active group into its accumulator. Unlike
    /// [`PerfCtr::switch_group`] this does not account a schedule interval —
    /// intervals correspond to the completed measurement slices, which is
    /// what the extrapolation divides by.
    pub fn finish(&mut self) -> Result<()> {
        if self.suspended {
            // A suspended session already folded everything it measured (and
            // zeroed its counters) at suspend time; whatever the registers
            // hold now was put there by another session borrowing them.
            return Ok(());
        }
        if self.running {
            self.stop()?;
        }
        let counts = self.read_counts()?;
        let active = self.active_group;
        for (ei, per_cpu) in counts.iter().enumerate() {
            for (ci, &v) in per_cpu.iter().enumerate() {
                self.accumulated[active][ei][ci] += v;
            }
        }
        Ok(())
    }

    /// Yield the hardware between cross-session time slices (the
    /// `likwid-perfctrd` broker multiplexes counter programming *between*
    /// sessions sharing cpus, extending the in-session group rotation of
    /// [`PerfCtr::switch_group`] across session boundaries): stop counting,
    /// fold the live counts of the active group into its accumulator, and
    /// reprogram the group. Reprogramming zeroes every counter, so a later
    /// [`PerfCtr::finish`] cannot double-count the folded values — and a
    /// foreign session may borrow the registers in between without
    /// corrupting this session's state.
    pub fn suspend(&mut self) -> Result<()> {
        if self.running {
            self.stop()?;
        }
        let counts = self.read_counts()?;
        let active = self.active_group;
        for (ei, per_cpu) in counts.iter().enumerate() {
            for (ci, &v) in per_cpu.iter().enumerate() {
                self.accumulated[active][ei][ci] += v;
            }
        }
        self.program_group(active)?;
        self.suspended = true;
        Ok(())
    }

    /// Reclaim the hardware after [`PerfCtr::suspend`]: reprogram the
    /// active group (another session may have owned the registers in
    /// between, so the stored configuration cannot be trusted) and start
    /// counting from zero.
    pub fn resume(&mut self) -> Result<()> {
        if self.running {
            return Err(LikwidError::Session(
                "resume() called while the session is counting (suspend() it first)".into(),
            ));
        }
        self.program_group(self.active_group)?;
        self.suspended = false;
        self.start()
    }

    /// The `(event name, counter slot)` list of a group, in programming
    /// order (the row order of the events table).
    pub fn group_events(&self, group: usize) -> Vec<(String, CounterSlot)> {
        self.groups[group].events.iter().map(|(name, slot, _)| (name.clone(), *slot)).collect()
    }

    /// The derived-metric names of a group, in definition order (empty for
    /// custom event lists).
    pub fn metric_names(&self, group: usize) -> Vec<String> {
        self.groups[group].metrics.iter().map(|(name, _)| name.clone()).collect()
    }

    /// Whether any group of this session programs socket-level (uncore)
    /// counters — the sessions that need the daemon's per-socket uncore
    /// arbitration.
    pub fn uses_uncore(&self) -> bool {
        self.groups.iter().any(|g| g.events.iter().any(|(_, slot, _)| slot.is_uncore()))
    }

    /// The extrapolated counts of a group after a multiplexed run.
    pub fn extrapolated_counts(&self, group: usize) -> GroupCounts {
        self.accumulated[group]
            .iter()
            .map(|per_cpu| per_cpu.iter().map(|&v| self.schedule.extrapolate(group, v)).collect())
            .collect()
    }

    /// The raw accumulated counts of a group (no extrapolation): exactly
    /// what was measured while the group's counters were live.
    pub fn accumulated_counts(&self, group: usize) -> GroupCounts {
        self.accumulated[group].clone()
    }

    /// The name of a group by index.
    pub fn group_name(&self, group: usize) -> &str {
        &self.groups[group].name
    }

    /// Everything that degraded so far (empty on a healthy machine).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.heal.borrow().diagnostics.clone()
    }

    /// The healing effort spent so far: MSR retries, backoff units,
    /// reprogrammed counters and recorded degradations.
    pub fn healing_stats(&self) -> HealingStats {
        let heal = self.heal.borrow();
        let msr = self.perfmon.retry_stats();
        HealingStats {
            msr_retries: msr.retries,
            backoff_units: msr.backoff_units,
            reprograms: heal.reprograms,
            degradations: heal.diagnostics.len(),
        }
    }

    /// Compute results (event table + derived metrics) for the active group
    /// from raw counts.
    pub fn results(&self, counts: &GroupCounts) -> Result<PerfCtrResults> {
        self.results_for_group(self.active_group, counts)
    }

    /// Compute results for an arbitrary group index (used by the multiplexed
    /// and marker paths). The derived metrics' `time` variable is bound to
    /// the group's time formula (total runtime from the cycle counters) —
    /// the aggregate-mode binding.
    pub fn results_for_group(&self, group: usize, counts: &GroupCounts) -> Result<PerfCtrResults> {
        self.results_for_group_with_time(group, counts, None)
    }

    /// Compute results for one *timeline interval* of a group: the derived
    /// metrics' `time` variable is bound to the interval length `dt_s`, not
    /// to the time formula, so rate metrics (MBytes/s, MFlops/s) come out
    /// per interval. Aggregate-mode results ([`PerfCtr::results_for_group`])
    /// keep the total-runtime binding.
    pub fn results_for_group_at(
        &self,
        group: usize,
        counts: &GroupCounts,
        dt_s: f64,
    ) -> Result<PerfCtrResults> {
        self.results_for_group_with_time(group, counts, Some(dt_s))
    }

    fn results_for_group_with_time(
        &self,
        group: usize,
        counts: &GroupCounts,
        time_override: Option<f64>,
    ) -> Result<PerfCtrResults> {
        let g = &self.groups[group];
        let inverse_clock = 1.0 / self.machine.clock().frequency_hz;

        let mut metrics = Vec::new();
        if !g.metrics.is_empty() {
            let time_formula = Formula::parse(&g.time_formula)?;
            let parsed: Vec<(String, Formula)> = g
                .metrics
                .iter()
                .map(|(n, f)| Formula::parse(f).map(|pf| (n.clone(), pf)))
                .collect::<Result<Vec<_>>>()?;
            for (name, f) in &parsed {
                let mut per_cpu = Vec::with_capacity(self.cpus.len());
                for ci in 0..self.cpus.len() {
                    let mut vars: HashMap<String, f64> = HashMap::new();
                    vars.insert("inverseClock".to_string(), inverse_clock);
                    for (ei, (_, slot, _)) in g.events.iter().enumerate() {
                        vars.insert(slot.name(), counts[ei][ci] as f64);
                    }
                    let time = match time_override {
                        Some(dt) => dt,
                        None => time_formula.evaluate(&vars)?,
                    };
                    vars.insert("time".to_string(), time);
                    per_cpu.push(f.evaluate(&vars)?);
                }
                metrics.push((name.clone(), per_cpu));
            }
        }

        Ok(PerfCtrResults {
            group_name: g.name.clone(),
            cpus: self.cpus.clone(),
            events: g
                .events
                .iter()
                .enumerate()
                .map(|(ei, (name, slot, _))| (name.clone(), *slot, counts[ei].clone()))
                .collect(),
            metrics,
            diagnostics: self.diagnostics(),
        })
    }

    /// Convenience wrapper-mode flow: start, run `body`, stop, and return the
    /// results of the active group. `body` receives the machine so it can
    /// drive workload execution.
    pub fn measure<T>(
        &mut self,
        body: impl FnOnce(&SimMachine) -> T,
    ) -> Result<(T, PerfCtrResults)> {
        self.start()?;
        let value = body(self.machine);
        self.stop()?;
        let counts = self.read_counts()?;
        let results = self.results(&counts)?;
        Ok((value, results))
    }
}

/// Measured event counts and derived metrics, ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCtrResults {
    /// Group name (e.g. "FLOPS_DP").
    pub group_name: String,
    /// Measured hardware threads (column order).
    pub cpus: Vec<usize>,
    /// `(event name, counter, per-cpu counts)`.
    pub events: Vec<(String, CounterSlot, Vec<u64>)>,
    /// `(metric name, per-cpu values)`.
    pub metrics: Vec<(String, Vec<f64>)>,
    /// Degradations recorded by the session (empty on a healthy machine;
    /// transient faults are healed without a trace so faulted and fault-free
    /// results compare equal).
    pub diagnostics: Vec<Diagnostic>,
}

impl PerfCtrResults {
    /// The count of an event on one measured cpu (by position).
    pub fn event_count(&self, event: &str, cpu_position: usize) -> Option<u64> {
        self.events
            .iter()
            .find(|(n, _, _)| n == event)
            .and_then(|(_, _, counts)| counts.get(cpu_position).copied())
    }

    /// The value of a metric on one measured cpu (by position).
    pub fn metric(&self, name: &str, cpu_position: usize) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.get(cpu_position).copied())
    }

    /// Build the structured report of the measurement: the event-count
    /// table, followed by the derived-metric table when the group defines
    /// metrics. Rows are keyed by event/metric name, columns by `core N`,
    /// so consumers read typed counts via [`Table::cell`] instead of
    /// scraping the listing.
    pub fn report(&self) -> Report {
        let mut report = Report::new(format!("likwid-perfctr.{}", self.group_name));
        let mut header: Vec<String> = vec!["Event".to_string()];
        header.extend(self.cpus.iter().map(|c| format!("core {c}")));
        let mut events_table = Table::bordered(header);
        for (name, _, counts) in &self.events {
            let mut row = vec![Value::Str(name.clone())];
            row.extend(counts.iter().map(|&c| Value::Count(c)));
            events_table.push(Row::new(row));
        }
        report.push(Section::new("events", Body::Table(events_table)));

        if !self.metrics.is_empty() {
            let mut header: Vec<String> = vec!["Metric".to_string()];
            header.extend(self.cpus.iter().map(|c| format!("core {c}")));
            let mut metrics_table = Table::bordered(header);
            for (name, values) in &self.metrics {
                let mut row = vec![Value::Str(name.clone())];
                row.extend(values.iter().map(|&v| Value::Real(v)));
                metrics_table.push(Row::new(row));
            }
            report.push(Section::new("metrics", Body::Table(metrics_table)));
        }

        if !self.diagnostics.is_empty() {
            let mut table = Table::bordered(vec!["Degraded".to_string(), "Reason".to_string()]);
            for d in &self.diagnostics {
                table.push(Row::new(vec![
                    Value::Str(d.subject.clone()),
                    Value::Str(d.reason.clone()),
                ]));
            }
            report.push(
                Section::new("diagnostics", Body::Table(table)).with_boxed_heading("Diagnostics"),
            );
        }
        report
    }

    /// Render the two tables of the tool output (events, then metrics), in
    /// the style of the FLOPS_DP listing of the paper.
    pub fn render(&self) -> String {
        Ascii.render(&self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_perf_events::{EventEngine, EventSample, HwEventKind};
    use likwid_x86_machine::MachinePreset;

    /// Drive a synthetic "workload" through the counting engine: every
    /// measured cpu retires the given per-thread counts.
    fn apply_activity(
        machine: &SimMachine,
        activity: &[(usize, HwEventKind, u64)],
        uncore: &[(usize, HwEventKind, u64)],
    ) {
        let engine = EventEngine::new(machine);
        let mut sample =
            EventSample::new(machine.num_hw_threads(), machine.topology().sockets as usize);
        for &(cpu, kind, value) in activity {
            sample.threads[cpu].add(kind, value);
        }
        for &(socket, kind, value) in uncore {
            sample.sockets[socket].add(kind, value);
        }
        engine.apply(machine, &sample);
    }

    #[test]
    fn flops_dp_wrapper_mode_reproduces_the_paper_listing_shape() {
        // The paper's Core 2 Quad FLOPS_DP marker listing: 8.192e6 packed DP
        // operations per core in the benchmark region, ~1640 MFlops/s.
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config = PerfCtrConfig {
            cpus: vec![0, 1, 2, 3],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        session.start().unwrap();
        let activity: Vec<(usize, HwEventKind, u64)> = (0..4)
            .flat_map(|cpu| {
                vec![
                    (cpu, HwEventKind::SimdPackedDouble, 8_192_000),
                    (cpu, HwEventKind::SimdScalarDouble, 1),
                    (cpu, HwEventKind::InstructionsRetired, 18_802_400),
                    (cpu, HwEventKind::CoreCycles, 28_583_800),
                ]
            })
            .collect();
        apply_activity(&machine, &activity, &[]);
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();

        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(8_192_000));
        assert_eq!(results.event_count("INSTR_RETIRED_ANY", 2), Some(18_802_400));
        let cpi = results.metric("CPI", 0).unwrap();
        assert!((cpi - 1.52).abs() < 0.01, "CPI should be ~1.52, got {cpi}");
        let runtime = results.metric("Runtime [s]", 0).unwrap();
        assert!((runtime - 0.0101).abs() < 0.0003, "runtime ~10.1 ms, got {runtime}");
        let mflops = results.metric("DP MFlops/s", 0).unwrap();
        assert!((mflops - 1620.0).abs() < 30.0, "~1620 MFlops/s, got {mflops}");
        let rendered = results.render();
        assert!(rendered.contains("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"));
        assert!(rendered.contains("DP MFlops/s"));
    }

    #[test]
    fn uncore_events_use_socket_locks() {
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        // Measure all 8 physical-core SMT-0 threads across both sockets.
        let cpus: Vec<usize> = (0..8).collect();
        let config =
            PerfCtrConfig { cpus: cpus.clone(), spec: MeasurementSpec::Group(EventGroupKind::MEM) };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        // Socket 0's owner is cpu 0, socket 1's owner is cpu 4.
        assert!(session.owns_socket_lock(0));
        assert!(session.owns_socket_lock(4));
        assert!(!session.owns_socket_lock(1));
        session.start().unwrap();
        apply_activity(
            &machine,
            &(0..8).map(|c| (c, HwEventKind::CoreCycles, 2_660_000_000)).collect::<Vec<_>>(),
            &[
                (0, HwEventKind::MemoryReads, 900_000_000),
                (0, HwEventKind::MemoryWrites, 300_000_000),
                (1, HwEventKind::MemoryReads, 100_000_000),
            ],
        );
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();
        // The uncore read event is attributed to the socket owners only.
        assert_eq!(results.event_count("UNC_QMC_NORMAL_READS_ANY", 0), Some(900_000_000));
        assert_eq!(results.event_count("UNC_QMC_NORMAL_READS_ANY", 1), Some(0));
        assert_eq!(results.event_count("UNC_QMC_NORMAL_READS_ANY", 4), Some(100_000_000));
        // Memory bandwidth on the socket-0 owner: (0.9e9+0.3e9)*64/1s ≈ 76.8 GB/s
        // over a 1-second (2.66e9 cycles) run.
        let bw = results.metric("Memory bandwidth [MBytes/s]", 0).unwrap();
        assert!((bw - 76_800.0).abs() / 76_800.0 < 0.01, "got {bw}");
    }

    #[test]
    fn custom_event_spec_is_parsed_and_validated() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        let spec = parse_event_spec(
            "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE:PMC1",
            &table,
        )
        .unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec[0].1, CounterSlot::Pmc(0));

        assert!(parse_event_spec("NO_SUCH_EVENT:PMC0", &table).is_err());
        assert!(parse_event_spec("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC9", &table).is_err());
        assert!(parse_event_spec("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", &table).is_err());
        assert!(parse_event_spec("", &table).is_err());

        let config = PerfCtrConfig { cpus: vec![1], spec: MeasurementSpec::Custom(spec) };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        session.start().unwrap();
        apply_activity(&machine, &[(1, HwEventKind::SimdPackedDouble, 1234)], &[]);
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(1234));
        assert!(results.metrics.is_empty(), "custom specs have no derived metrics");
    }

    #[test]
    fn event_spec_rejects_counters_that_cannot_carry_the_event() {
        use likwid_perf_events::CounterSlot as Slot;
        use likwid_perf_events::{tables, CounterClass};
        use likwid_x86_machine::Microarch;

        for &arch in Microarch::all() {
            let table = tables::for_arch(arch);

            // A general-purpose core event accepts any PMC but never a slot
            // from a different counter class.
            let pmc_event = table
                .events
                .iter()
                .find(|e| matches!(e.counters, CounterClass::AnyPmc))
                .unwrap_or_else(|| panic!("{arch:?} has no AnyPmc event"));
            for n in 0..table.num_pmc as u8 {
                let spec = format!("{}:PMC{n}", pmc_event.name);
                assert!(parse_event_spec(&spec, &table).is_ok(), "{arch:?} {spec}");
            }
            let beyond = format!("{}:PMC{}", pmc_event.name, table.num_pmc);
            assert!(parse_event_spec(&beyond, &table).is_err(), "{arch:?} {beyond}");
            if table.num_fixed > 0 {
                let spec = format!("{}:FIXC0", pmc_event.name);
                assert!(parse_event_spec(&spec, &table).is_err(), "{arch:?} {spec}");
            }
            if table.num_uncore_pmc > 0 {
                let spec = format!("{}:UPMC0", pmc_event.name);
                assert!(parse_event_spec(&spec, &table).is_err(), "{arch:?} {spec}");
            }

            // Fixed events are pinned to their one fixed counter.
            if let Some(fixed) =
                table.events.iter().find(|e| matches!(e.counters, CounterClass::Fixed(_)))
            {
                let CounterClass::Fixed(slot) = fixed.counters else { unreachable!() };
                let ok = format!("{}:FIXC{slot}", fixed.name);
                assert!(parse_event_spec(&ok, &table).is_ok(), "{arch:?} {ok}");
                let wrong = format!("{}:PMC0", fixed.name);
                assert!(parse_event_spec(&wrong, &table).is_err(), "{arch:?} {wrong}");
                let other_fixed = format!("{}:FIXC{}", fixed.name, (slot + 1) % 3);
                assert!(parse_event_spec(&other_fixed, &table).is_err(), "{arch:?} {other_fixed}");
            }

            // Uncore events never schedule on core counters and vice versa.
            if let Some(uncore) =
                table.events.iter().find(|e| matches!(e.counters, CounterClass::AnyUncorePmc))
            {
                let ok = format!("{}:UPMC0", uncore.name);
                let spec = parse_event_spec(&ok, &table).unwrap();
                assert_eq!(spec[0].1, Slot::UncorePmc(0));
                let wrong = format!("{}:PMC0", uncore.name);
                assert!(parse_event_spec(&wrong, &table).is_err(), "{arch:?} {wrong}");
            }
        }
    }

    #[test]
    fn every_documented_event_parses_on_its_first_allowed_slot() {
        use likwid_perf_events::tables;
        use likwid_x86_machine::Microarch;

        for &arch in Microarch::all() {
            let table = tables::for_arch(arch);
            for event in &table.events {
                let slots = table.allowed_slots(event);
                let slot = slots.first().expect("validated non-empty by the tables tests");
                let spec = format!("{}:{}", event.name, slot.name());
                let parsed = parse_event_spec(&spec, &table)
                    .unwrap_or_else(|e| panic!("{arch:?} '{spec}' failed: {e}"));
                assert_eq!(parsed, vec![(event.name.to_string(), *slot)]);
            }
        }
    }

    #[test]
    fn measurement_specs_parse_groups_lists_and_custom_events() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        assert_eq!(
            parse_measurement_spec("MEM", &table).unwrap(),
            MeasurementSpec::Group(EventGroupKind::MEM)
        );
        assert_eq!(
            parse_measurement_spec("FLOPS_DP,MEM", &table).unwrap(),
            MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::MEM])
        );
        assert!(matches!(
            parse_measurement_spec("L1D_REPL:PMC0", &table).unwrap(),
            MeasurementSpec::Custom(_)
        ));
        assert!(matches!(
            parse_measurement_spec("NOT_A_GROUP", &table),
            Err(LikwidError::UnknownGroup(_))
        ));
        // A list mixing a group with an unknown name is not a group list.
        assert!(parse_measurement_spec("FLOPS_DP,BOGUS", &table).is_err());
    }

    #[test]
    fn unsupported_group_is_rejected() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config =
            PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::L3) };
        assert!(matches!(
            PerfCtr::new(&machine, config),
            Err(LikwidError::GroupUnsupported { .. })
        ));
    }

    #[test]
    fn empty_cpu_list_is_rejected() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config =
            PerfCtrConfig { cpus: vec![], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) };
        assert!(PerfCtr::new(&machine, config).is_err());
    }

    #[test]
    fn multiplexing_rotates_groups_and_extrapolates() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let config = PerfCtrConfig {
            cpus: vec![0],
            spec: MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::L2]),
        };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        assert_eq!(session.num_groups(), 2);
        session.start().unwrap();

        // Four equal time slices of identical activity; each group is active
        // for two of them, so extrapolation should recover the full total.
        for _slice in 0..4 {
            apply_activity(
                &machine,
                &[
                    (0, HwEventKind::SimdPackedDouble, 1000),
                    (0, HwEventKind::L1Misses, 500),
                    (0, HwEventKind::L2LinesOut, 100),
                    (0, HwEventKind::InstructionsRetired, 10_000),
                    (0, HwEventKind::CoreCycles, 20_000),
                ],
                &[],
            );
            session.switch_group().unwrap();
        }
        session.finish().unwrap();

        let flops = session.extrapolated_counts(0);
        let results0 = session.results_for_group(0, &flops).unwrap();
        let packed = results0.event_count("FP_COMP_OPS_EXE_SSE_FP_PACKED", 0).unwrap();
        assert!(
            (packed as i64 - 4000).abs() <= 10,
            "extrapolated packed count should be ~4000, got {packed}"
        );

        let l2 = session.extrapolated_counts(1);
        let results1 = session.results_for_group(1, &l2).unwrap();
        let repl = results1.event_count("L1D_REPL", 0).unwrap();
        assert!((repl as i64 - 2000).abs() <= 10, "extrapolated L1D_REPL ~2000, got {repl}");
    }

    #[test]
    fn session_misuse_yields_typed_errors() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config =
            PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) };
        let mut session = PerfCtr::new(&machine, config).unwrap();

        // Reading before the session was ever started is a misuse.
        assert!(matches!(session.read_counts(), Err(LikwidError::Session(_))));
        // A single-group session cannot multiplex.
        assert!(matches!(session.switch_group(), Err(LikwidError::Session(_))));

        session.start().unwrap();
        // Starting an already-counting session is a misuse.
        assert!(matches!(session.start(), Err(LikwidError::Session(_))));

        session.stop().unwrap();
        // After a stop the counts stay readable (finish() relies on this),
        // and the session can be restarted.
        assert!(session.read_counts().is_ok());
        session.start().unwrap();
        session.stop().unwrap();
    }

    #[test]
    fn transient_msr_faults_heal_without_a_trace() {
        use likwid_x86_machine::FaultPlan;

        let run = |plan: Option<FaultPlan>| {
            let machine = SimMachine::new(MachinePreset::Core2Quad);
            if let Some(plan) = plan {
                machine.inject_faults(plan);
            }
            let config = PerfCtrConfig {
                cpus: vec![0, 1],
                spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
            };
            let mut session = PerfCtr::new(&machine, config).unwrap();
            session.start().unwrap();
            apply_activity(
                &machine,
                &[
                    (0, HwEventKind::SimdPackedDouble, 5000),
                    (0, HwEventKind::CoreCycles, 90_000),
                    (0, HwEventKind::InstructionsRetired, 40_000),
                    (1, HwEventKind::SimdScalarDouble, 77),
                ],
                &[],
            );
            session.stop().unwrap();
            let counts = session.read_counts().unwrap();
            let stats = session.healing_stats();
            (session.results(&counts).unwrap(), stats)
        };

        let (clean, clean_stats) = run(None);
        assert_eq!(clean_stats.msr_retries, 0);
        let plan = FaultPlan::parse("seed=42,read=0.4x3,write=0.4x3").unwrap();
        let (faulted, stats) = run(Some(plan));
        // Retries happened, but the results are bit-identical and free of
        // diagnostics: transient faults heal without a trace.
        assert!(stats.msr_retries > 0, "a 40% fault rate must trigger retries");
        assert!(stats.backoff_units > 0);
        assert!(faulted.diagnostics.is_empty());
        assert_eq!(clean, faulted);
    }

    #[test]
    fn stuck_registers_degrade_to_diagnostics_not_errors() {
        use likwid_x86_machine::{msr::Msr, FaultPlan};

        let machine = SimMachine::new(MachinePreset::Core2Quad);
        // PERFEVTSEL0 on cpu 0 is stuck: programming it silently does
        // nothing, which only verify-after-write can detect.
        machine.inject_faults(FaultPlan {
            stuck: vec![(0, Msr::IA32_PERFEVTSEL0)],
            ..FaultPlan::default()
        });
        let config = PerfCtrConfig {
            cpus: vec![0, 1],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        session.start().unwrap();
        apply_activity(
            &machine,
            &[(0, HwEventKind::SimdPackedDouble, 1000), (1, HwEventKind::SimdPackedDouble, 2000)],
            &[],
        );
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();

        // The stuck slot is dropped (frozen at zero) with a diagnostic; the
        // healthy cpu still measures.
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(0));
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 1), Some(2000));
        assert_eq!(results.diagnostics.len(), 1);
        assert!(results.diagnostics[0].subject.contains("PMC0"));
        assert!(results.diagnostics[0].subject.contains("cpu 0"));
        let rendered = results.render();
        assert!(rendered.contains("Diagnostics"));
        assert!(rendered.contains("Degraded"));
        assert!(session.healing_stats().degradations >= 1);
    }

    #[test]
    fn a_dying_cpu_freezes_its_counts_instead_of_failing_the_run() {
        use likwid_x86_machine::FaultPlan;

        let machine = SimMachine::new(MachinePreset::Core2Quad);
        // Cpu 1's MSR device dies after a handful of accesses, partway
        // through counter programming.
        machine.inject_faults(FaultPlan { dead: vec![(1, 10)], ..FaultPlan::default() });
        let config = PerfCtrConfig {
            cpus: vec![0, 1],
            spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP),
        };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        session.start().unwrap();
        apply_activity(
            &machine,
            &[(0, HwEventKind::SimdPackedDouble, 4444), (1, HwEventKind::SimdPackedDouble, 5555)],
            &[],
        );
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();

        // The healthy cpu's data survives; the dead cpu is reported.
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(4444));
        assert!(results.diagnostics.iter().any(|d| d.subject == "cpu 1"));
    }

    /// A single-group Westmere session with one 48-bit PMC event and one
    /// 44-bit fixed-counter event, for driving raw counter values directly.
    fn wrap_session(machine: &SimMachine) -> PerfCtr<'_> {
        let table = likwid_perf_events::tables::for_arch(machine.arch());
        let spec =
            parse_event_spec("FP_COMP_OPS_EXE_SSE_FP_PACKED:PMC0,INSTR_RETIRED_ANY:FIXC0", &table)
                .unwrap();
        let config = PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Custom(spec) };
        PerfCtr::new(machine, config).unwrap()
    }

    #[test]
    fn a_delta_across_exactly_one_wrap_is_corrected_exactly() {
        // Westmere: PMCs are 48 bits wide, fixed counters 44. Drive the raw
        // registers directly through the hardware-side MSR file so that the
        // wrap point is hit deterministically.
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let mut session = wrap_session(&machine);
        let msr = machine.msr_file();
        let (_, pmc_reg) = slot_registers(machine.vendor(), CounterSlot::Pmc(0));
        let (_, fix_reg) = slot_registers(machine.vendor(), CounterSlot::Fixed(0));

        session.start().unwrap();
        // Move both counters to just below their overflow boundary …
        msr.increment(0, pmc_reg, (1u64 << 48) - 100).unwrap();
        msr.increment(0, fix_reg, (1u64 << 44) - 7).unwrap();
        session.read_counts().unwrap();
        // … then across it: each raw register wraps exactly once.
        msr.increment(0, pmc_reg, 300).unwrap();
        msr.increment(0, fix_reg, 20).unwrap();
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();

        // The wrap-corrected totals are exact (and beyond the raw width).
        assert_eq!(
            results.event_count("FP_COMP_OPS_EXE_SSE_FP_PACKED", 0),
            Some((1u64 << 48) + 200)
        );
        assert_eq!(results.event_count("INSTR_RETIRED_ANY", 0), Some((1u64 << 44) + 13));
        // One wrap per interval is business as usual, not a degradation.
        assert!(results.diagnostics.is_empty());
    }

    #[test]
    fn two_wraps_within_one_interval_raise_a_diagnostic_not_a_fixup() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let mut session = wrap_session(&machine);
        let msr = machine.msr_file();
        let (_, pmc_reg) = slot_registers(machine.vendor(), CounterSlot::Pmc(0));

        session.start().unwrap();
        // More than two full counter periods between consecutive reads: the
        // masked delta cannot represent this, and silently "correcting" it
        // from the wide shadow would forge data no real PMU could produce.
        msr.increment(0, pmc_reg, 2 * (1u64 << 48) + 50).unwrap();
        session.stop().unwrap();
        let counts = session.read_counts().unwrap();
        let results = session.results(&counts).unwrap();

        // The reported count is the honest masked delta …
        assert_eq!(results.event_count("FP_COMP_OPS_EXE_SSE_FP_PACKED", 0), Some(50));
        // … and the lost periods are called out as a diagnostic.
        let diag = results
            .diagnostics
            .iter()
            .find(|d| d.reason.contains("wrapped more than once"))
            .expect("a multi-wrap interval must be diagnosed");
        assert!(diag.subject.contains("PMC0"));
        assert!(diag.reason.contains(&format!("{}", 2 * (1u64 << 48))), "reason: {}", diag.reason);
        // The guard fires once per slot, not once per read.
        assert_eq!(results.diagnostics.len(), 1);
    }

    #[test]
    fn measure_wrapper_runs_the_body_between_start_and_stop() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let config =
            PerfCtrConfig { cpus: vec![0], spec: MeasurementSpec::Group(EventGroupKind::FLOPS_DP) };
        let mut session = PerfCtr::new(&machine, config).unwrap();
        let (value, results) = session
            .measure(|m| {
                apply_activity(
                    m,
                    &[
                        (0, HwEventKind::SimdPackedDouble, 77),
                        (0, HwEventKind::CoreCycles, 1000),
                        (0, HwEventKind::InstructionsRetired, 500),
                    ],
                    &[],
                );
                42
            })
            .unwrap();
        assert_eq!(value, 42);
        assert_eq!(results.event_count("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0), Some(77));
    }
}

//! Time-resolved measurement: the timeline (`-t`) and stethoscope (`-S`)
//! modes of `likwid-perfctr`.
//!
//! The wrapper and marker modes report one aggregate count per run, which
//! hides the phase structure of codes like the blocked Jacobi solver. A
//! [`TimelineSession`] wraps the counter-programming session and samples
//! the counter state at a fixed *virtual-time* interval while a workload
//! runs: every interval records the raw per-cpu count deltas of the group
//! that was live, and — with a multiplexed group list — rotates the groups
//! at each interval boundary, so each group owns every `num_groups`-th
//! interval and its aggregate is extrapolated by schedule coverage exactly
//! as in plain multiplexing mode.
//!
//! **Virtual-clock semantics.** The simulated machine has no wall clock;
//! an interval is a span of *modelled* runtime. Workload drivers emit
//! progress ticks with virtual timestamps (see
//! `likwid_workloads::exec::ProgressTrace`), the harness slices the
//! simulated activity at interval boundaries, credits each slice through
//! the counting engine, and calls [`TimelineSession::tick`] — the counter
//! deltas per interval therefore sum *exactly* to the aggregate counts of
//! the same run.
//!
//! Since the simulated tool cannot attach to a real process, the CLI's
//! timeline and stethoscope modes observe a built-in synthetic target
//! "application": a deterministic activity trace alternating memory-bound
//! and compute-bound phases of [`DEMO_PHASE_S`] seconds each
//! ([`demo_slice`]), which makes the phase structure visible in the
//! per-interval derived metrics.

use likwid_perf_events::{EventEngine, EventSample, HwEventKind};
use likwid_x86_machine::SimMachine;

use crate::error::{LikwidError, Result};
use crate::perfctr::session::{GroupCounts, PerfCtr, PerfCtrConfig, PerfCtrResults};
use crate::report::{Body, KvEntry, Report, Section, Series, TimeSeries, Value};

/// Parse a duration expression: seconds as a plain float (`0.005`), or a
/// number with an `s`, `ms` or `us` suffix (`5ms`, `250us`, `1.5s`).
pub fn parse_duration(text: &str) -> Option<f64> {
    let text = text.trim();
    let lower = text.to_ascii_lowercase();
    let (digits, factor) = if let Some(d) = lower.strip_suffix("us") {
        (d, 1e-6)
    } else if let Some(d) = lower.strip_suffix("ms") {
        (d, 1e-3)
    } else if let Some(d) = lower.strip_suffix('s') {
        (d, 1.0)
    } else {
        (lower.as_str(), 1.0)
    };
    let value: f64 = digits.trim().parse().ok()?;
    Some(value * factor)
}

/// Parse a `-t`/`-S` interval argument, rejecting zero, negative and
/// unparsable values with a [`LikwidError::Usage`] error.
pub fn parse_interval(text: &str) -> Result<f64> {
    let value = parse_duration(text)
        .ok_or_else(|| LikwidError::Usage(format!("bad interval '{text}' (try e.g. 1ms)")))?;
    if !value.is_finite() || value <= 0.0 {
        return Err(LikwidError::Usage(format!("interval '{text}' must be positive")));
    }
    Ok(value)
}

/// One timeline interval: the raw per-cpu count deltas of the group that
/// was live between two sampling points.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineInterval {
    /// Virtual time at the start of the interval (seconds since
    /// measurement start).
    pub t_start_s: f64,
    /// Virtual time at the end of the interval.
    pub t_end_s: f64,
    /// Index of the group that was measured during this interval.
    pub group: usize,
    /// Raw count deltas over the interval: `counts[event][cpu_position]`.
    pub counts: GroupCounts,
}

/// A time-resolved measurement session: wraps [`PerfCtr`] and records
/// per-interval counter deltas while the caller advances virtual time.
///
/// Protocol: [`TimelineSession::start`], then — per interval — credit the
/// interval's simulated activity through the counting engine and call
/// [`TimelineSession::tick`] with the interval's virtual length; finally
/// [`TimelineSession::finish`] yields the [`TimelineResult`].
pub struct TimelineSession<'m> {
    session: PerfCtr<'m>,
    interval_s: f64,
    elapsed_s: f64,
    snapshot: GroupCounts,
    intervals: Vec<TimelineInterval>,
}

impl<'m> TimelineSession<'m> {
    /// Create a timeline session sampling every `interval_s` seconds of
    /// virtual time. Zero, negative and non-finite intervals are a usage
    /// error.
    pub fn new(machine: &'m SimMachine, config: PerfCtrConfig, interval_s: f64) -> Result<Self> {
        if !interval_s.is_finite() || interval_s <= 0.0 {
            return Err(LikwidError::Usage(format!(
                "timeline interval must be positive, got {interval_s}"
            )));
        }
        let session = PerfCtr::new(machine, config)?;
        // Counters were just programmed (and thereby zeroed); the baseline
        // snapshot is all zeros without touching the devices again.
        let snapshot = session.zero_counts();
        Ok(TimelineSession { session, interval_s, elapsed_s: 0.0, snapshot, intervals: Vec::new() })
    }

    /// The wrapped counter session.
    pub fn session(&self) -> &PerfCtr<'m> {
        &self.session
    }

    /// The configured sampling interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Start counting.
    pub fn start(&mut self) -> Result<()> {
        self.session.start()
    }

    /// Close the current interval after `dt_s` seconds of virtual time:
    /// record the active group's count deltas and — in multiplexing mode —
    /// rotate to the next group (the rotation reprograms and zeroes the
    /// counters, so the next interval starts from a clean slate). Returns
    /// the recorded interval, so streaming consumers (the `likwid-perfctrd`
    /// broker) can forward the deltas while the run is still in flight.
    pub fn tick(&mut self, dt_s: f64) -> Result<TimelineInterval> {
        if !dt_s.is_finite() || dt_s < 0.0 {
            return Err(LikwidError::Usage(format!("timeline tick of {dt_s} seconds")));
        }
        let current = self.session.read_counts()?;
        let counts: GroupCounts = current
            .iter()
            .zip(&self.snapshot)
            .map(|(cur, prev)| cur.iter().zip(prev).map(|(&c, &p)| c.saturating_sub(p)).collect())
            .collect();
        let interval = TimelineInterval {
            t_start_s: self.elapsed_s,
            t_end_s: self.elapsed_s + dt_s,
            group: self.session.active_group(),
            counts,
        };
        // The interval on the session's *virtual* clock: a complete event
        // on the virtual track of the first measured cpu, timestamped from
        // the deterministic timeline instead of the wall clock.
        if crate::trace::enabled() {
            let track = self.session.cpus().first().copied().unwrap_or(0) as u64;
            let index = self.intervals.len();
            let group = interval.group;
            crate::trace::complete_virtual(
                crate::trace::cat::CORE,
                track,
                (interval.t_start_s * 1e9) as u64,
                (dt_s * 1e9) as u64,
                || "timeline.interval".to_string(),
                || vec![("index", index.to_string()), ("group", group.to_string())],
            );
        }
        self.intervals.push(interval.clone());
        self.elapsed_s += dt_s;
        if self.session.num_groups() > 1 {
            // switch_group folds the live counts into the group's
            // accumulator and reprograms (= zeroes) the next group's
            // counters.
            self.session.switch_group()?;
            self.snapshot = self.session.zero_counts();
        } else {
            self.snapshot = current;
        }
        Ok(interval)
    }

    /// Yield the hardware between cross-session time slices (see
    /// [`PerfCtr::suspend`]): the live counts are folded into the session's
    /// accumulator and the counters are released in a zeroed state, so the
    /// `likwid-perfctrd` broker can hand the registers to another session
    /// sharing the same cpus.
    pub fn suspend(&mut self) -> Result<()> {
        self.session.suspend()?;
        self.snapshot = self.session.zero_counts();
        Ok(())
    }

    /// Reclaim the hardware for the next time slice: reprogram (another
    /// session may have owned the registers in between), zero the baseline
    /// snapshot and start counting.
    pub fn resume(&mut self) -> Result<()> {
        self.session.resume()?;
        self.snapshot = self.session.zero_counts();
        Ok(())
    }

    /// Stop counting and assemble the result: the per-interval deltas, the
    /// per-group raw aggregates (which the deltas sum to exactly), the
    /// coverage-extrapolated aggregates for multiplexed lists, aggregate
    /// results with the total-runtime `time` binding, and one
    /// [`TimeSeries`] per group with the per-interval derived metrics
    /// (`time` bound to each interval's dt).
    pub fn finish(self) -> Result<TimelineResult> {
        self.finish_scaled(1.0)
    }

    /// [`TimelineSession::finish`] with a cross-session coverage factor:
    /// `time_scale` is the wall-to-measured virtual-time ratio of a daemon
    /// session that was time-sliced against other sessions sharing its
    /// cpus, and scales the extrapolated aggregates (and the metrics
    /// derived from them) the same way the in-session multiplex schedule
    /// scales per-group coverage. A solo session passes exactly `1.0`,
    /// which is the identity — bit-identical to [`TimelineSession::finish`].
    pub fn finish_scaled(mut self, time_scale: f64) -> Result<TimelineResult> {
        if !time_scale.is_finite() || time_scale < 1.0 {
            return Err(LikwidError::Session(format!(
                "coverage time scale must be a finite ratio >= 1, got {time_scale}"
            )));
        }
        self.session.finish()?;
        let num_groups = self.session.num_groups();
        let multiplexed = num_groups > 1;
        let cpus = self.session.cpus().to_vec();
        let socket_lock_owners = self.session.socket_lock_owners();
        let group_names: Vec<String> =
            (0..num_groups).map(|g| self.session.group_name(g).to_string()).collect();

        let scale = |counts: GroupCounts| -> GroupCounts {
            if time_scale == 1.0 {
                return counts;
            }
            counts
                .into_iter()
                .map(|per_cpu| {
                    per_cpu.into_iter().map(|v| (v as f64 * time_scale).round() as u64).collect()
                })
                .collect()
        };
        let aggregate: Vec<GroupCounts> =
            (0..num_groups).map(|g| self.session.accumulated_counts(g)).collect();
        let extrapolated: Vec<GroupCounts> = (0..num_groups)
            .map(|g| {
                scale(if multiplexed {
                    self.session.extrapolated_counts(g)
                } else {
                    aggregate[g].clone()
                })
            })
            .collect();
        let aggregate_results = (0..num_groups)
            .map(|g| self.session.results_for_group(g, &extrapolated[g]))
            .collect::<Result<Vec<_>>>()?;

        let mut timeseries = Vec::with_capacity(num_groups);
        for g in 0..num_groups {
            let intervals: Vec<&TimelineInterval> =
                self.intervals.iter().filter(|iv| iv.group == g).collect();
            let timestamps: Vec<f64> = intervals.iter().map(|iv| iv.t_end_s).collect();
            let per_interval = intervals
                .iter()
                .map(|iv| {
                    self.session.results_for_group_at(g, &iv.counts, iv.t_end_s - iv.t_start_s)
                })
                .collect::<Result<Vec<_>>>()?;
            let mut series = Vec::new();
            if let Some(first) = per_interval.first() {
                if first.metrics.is_empty() {
                    // Custom event lists have no derived metrics: expose the
                    // raw per-interval event counts instead.
                    for (ei, (name, _, _)) in first.events.iter().enumerate() {
                        for (ci, &cpu) in cpus.iter().enumerate() {
                            let values =
                                per_interval.iter().map(|r| r.events[ei].2[ci] as f64).collect();
                            series.push(Series::new(name.clone(), cpu, values));
                        }
                    }
                } else {
                    for (mi, (name, _)) in first.metrics.iter().enumerate() {
                        for (ci, &cpu) in cpus.iter().enumerate() {
                            let values = per_interval.iter().map(|r| r.metrics[mi].1[ci]).collect();
                            series.push(Series::new(name.clone(), cpu, values));
                        }
                    }
                }
            }
            timeseries.push(TimeSeries { timestamps, series });
        }

        Ok(TimelineResult {
            interval_s: self.interval_s,
            duration_s: self.elapsed_s,
            cpus,
            socket_lock_owners,
            group_names,
            intervals: self.intervals,
            aggregate,
            extrapolated,
            aggregate_results,
            timeseries,
        })
    }
}

/// The outcome of a time-resolved measurement.
#[derive(Debug, Clone)]
pub struct TimelineResult {
    /// The configured sampling interval in seconds.
    pub interval_s: f64,
    /// Total measured virtual time in seconds.
    pub duration_s: f64,
    /// The measured hardware threads (column order of every
    /// [`GroupCounts`]).
    pub cpus: Vec<usize>,
    /// The socket-lock owners of the session (the measured threads that
    /// carry the uncore counts), in measured-cpu order.
    pub socket_lock_owners: Vec<usize>,
    /// The group names, by group index.
    pub group_names: Vec<String>,
    /// All recorded intervals, in time order.
    pub intervals: Vec<TimelineInterval>,
    /// Per-group raw aggregate counts; the per-interval deltas of a group
    /// sum exactly to its entry.
    pub aggregate: Vec<GroupCounts>,
    /// Per-group aggregate counts extrapolated by multiplex-schedule
    /// coverage (equal to [`TimelineResult::aggregate`] for a single
    /// group).
    pub extrapolated: Vec<GroupCounts>,
    /// Aggregate results per group (events + derived metrics with the
    /// total-runtime `time` binding), from the extrapolated counts.
    pub aggregate_results: Vec<PerfCtrResults>,
    /// One time series per group: the per-interval derived metrics (`time`
    /// bound to each interval's length), or raw event counts for custom
    /// event lists.
    pub timeseries: Vec<TimeSeries>,
}

impl TimelineResult {
    /// The index of a group by name.
    pub fn group_index(&self, name: &str) -> Option<usize> {
        self.group_names.iter().position(|n| n == name)
    }

    /// The time series of a group by name.
    pub fn time_series(&self, group: &str) -> Option<&TimeSeries> {
        self.timeseries.get(self.group_index(group)?)
    }

    /// The intervals during which one group was measured.
    pub fn intervals_of_group(&self, group: usize) -> Vec<&TimelineInterval> {
        self.intervals.iter().filter(|iv| iv.group == group).collect()
    }

    /// The summary key/value section shared by the timeline and
    /// stethoscope reports.
    fn summary_section(&self, id: &str) -> Section {
        Section::new(
            id,
            Body::KeyValues(vec![
                KvEntry::new("Sampling interval [s]", Value::Real(self.interval_s)),
                KvEntry::new("Duration [s]", Value::Real(self.duration_s)),
                KvEntry::new("Intervals", Value::Count(self.intervals.len() as u64)),
                KvEntry::new("Groups", Value::Str(self.group_names.join(","))),
                KvEntry::new("Measured hardware threads", Value::Str(format!("{:?}", self.cpus))),
            ]),
        )
    }

    /// The full timeline report: a summary section, one
    /// [`Body::TimeSeries`] section per group, and the aggregate
    /// event/metric tables per group.
    pub fn report(&self) -> Report {
        let mut report = Report::new("likwid-perfctr.timeline");
        report.push(self.summary_section("timeline"));
        for (g, name) in self.group_names.iter().enumerate() {
            report.push(
                Section::new(
                    format!("timeseries.{name}"),
                    Body::TimeSeries(self.timeseries[g].clone()),
                )
                .with_heading(format!(
                    "Timeline {name} (interval {} s):",
                    crate::output::format_value(self.interval_s)
                )),
            );
        }
        for (g, name) in self.group_names.iter().enumerate() {
            let mut first = true;
            for mut section in self.aggregate_results[g].report().sections {
                section.id = format!("aggregate.{name}.{}", section.id);
                if first {
                    section = section.with_heading(format!("Aggregate {name}:"));
                    first = false;
                }
                report.push(section);
            }
        }
        report
    }

    /// The stethoscope report: the summary plus the aggregate tables, no
    /// per-interval series.
    pub fn stethoscope_report(&self) -> Report {
        let mut report = Report::new("likwid-perfctr.stethoscope");
        report.push(self.summary_section("stethoscope"));
        for (g, name) in self.group_names.iter().enumerate() {
            let mut first = true;
            for mut section in self.aggregate_results[g].report().sections {
                section.id = format!("aggregate.{name}.{}", section.id);
                if first {
                    section = section.with_heading(format!("Aggregate {name}:"));
                    first = false;
                }
                report.push(section);
            }
        }
        report
    }
}

/// Phase length of the synthetic demo application: memory-bound and
/// compute-bound phases alternate every 2.5 ms of virtual time.
pub const DEMO_PHASE_S: f64 = 2.5e-3;

/// Virtual runtime of the synthetic demo application observed by
/// `likwid-perfctr -t`.
pub const DEMO_DURATION_S: f64 = 10e-3;

/// Interval-count guard: a `-t`/`-S` interval that would produce more
/// sampling points than this is rejected as a usage error.
pub const MAX_INTERVALS: usize = 100_000;

/// The per-thread event kinds the demo application exercises.
const DEMO_THREAD_KINDS: [HwEventKind; 17] = [
    HwEventKind::InstructionsRetired,
    HwEventKind::CoreCycles,
    HwEventKind::ReferenceCycles,
    HwEventKind::SimdPackedDouble,
    HwEventKind::SimdScalarDouble,
    HwEventKind::SimdPackedSingle,
    HwEventKind::SimdScalarSingle,
    HwEventKind::LoadsRetired,
    HwEventKind::StoresRetired,
    HwEventKind::BranchesRetired,
    HwEventKind::BranchMispredictions,
    HwEventKind::DtlbMisses,
    HwEventKind::L1Accesses,
    HwEventKind::L1Misses,
    HwEventKind::L2Accesses,
    HwEventKind::L2Misses,
    HwEventKind::L2LinesIn,
];

/// The per-socket (uncore) event kinds the demo application exercises.
const DEMO_UNCORE_KINDS: [HwEventKind; 8] = [
    HwEventKind::L2LinesOut,
    HwEventKind::L3Accesses,
    HwEventKind::L3Misses,
    HwEventKind::L3LinesIn,
    HwEventKind::L3LinesOut,
    HwEventKind::MemoryReads,
    HwEventKind::MemoryWrites,
    HwEventKind::UncoreCycles,
];

/// Event rates of the demo application per second of virtual time:
/// `(memory-phase rate, compute-phase rate)`. Core-local kinds are per
/// measured hardware thread, uncore kinds per socket.
fn demo_rates(kind: HwEventKind, frequency_hz: f64) -> (f64, f64) {
    match kind {
        HwEventKind::CoreCycles | HwEventKind::ReferenceCycles | HwEventKind::UncoreCycles => {
            (frequency_hz, frequency_hz)
        }
        HwEventKind::InstructionsRetired => (0.6 * frequency_hz, 1.8 * frequency_hz),
        HwEventKind::SimdPackedDouble | HwEventKind::SimdPackedSingle => (4.0e7, 1.5e9),
        HwEventKind::SimdScalarDouble | HwEventKind::SimdScalarSingle => (1.0e7, 2.0e8),
        HwEventKind::LoadsRetired => (4.0e8, 3.0e8),
        HwEventKind::StoresRetired => (2.0e8, 1.5e8),
        HwEventKind::BranchesRetired => (1.0e8, 2.0e8),
        HwEventKind::BranchMispredictions => (1.5e6, 3.0e6),
        HwEventKind::DtlbMisses => (2.0e6, 1.0e5),
        HwEventKind::L1Accesses => (6.0e8, 4.5e8),
        HwEventKind::L1Misses | HwEventKind::L2Accesses => (1.5e8, 2.0e6),
        HwEventKind::L2Misses | HwEventKind::L2LinesIn => (1.2e8, 5.0e5),
        HwEventKind::L2LinesOut => (6.0e7, 2.5e5),
        HwEventKind::L3Accesses => (1.2e8, 5.0e5),
        HwEventKind::L3Misses | HwEventKind::L3LinesIn => (9.0e7, 2.0e5),
        HwEventKind::L3LinesOut => (4.5e7, 1.0e5),
        HwEventKind::MemoryReads => (2.4e8, 3.0e6),
        HwEventKind::MemoryWrites => (1.2e8, 1.0e6),
    }
}

/// Cumulative demo count of one kind at virtual time `t`: the integral of
/// the alternating phase rates over `[0, t]`, floored to a whole count.
/// Slice deltas `demo_cumulative(t1) - demo_cumulative(t0)` therefore
/// telescope exactly, whatever the interval boundaries.
fn demo_cumulative(kind: HwEventKind, t: f64, frequency_hz: f64) -> u64 {
    let (rate_mem, rate_cpu) = demo_rates(kind, frequency_hz);
    let full = (t / DEMO_PHASE_S).floor();
    let rem = t - full * DEMO_PHASE_S;
    let full = full as u64;
    // Phases 0, 2, 4, … are memory-bound; 1, 3, 5, … compute-bound.
    let mem_phases = full.div_ceil(2) as f64;
    let cpu_phases = (full / 2) as f64;
    let partial_rate = if full % 2 == 0 { rate_mem } else { rate_cpu };
    (mem_phases * DEMO_PHASE_S * rate_mem
        + cpu_phases * DEMO_PHASE_S * rate_cpu
        + rem * partial_rate)
        .floor() as u64
}

/// The demo application's activity over the virtual-time slice `[t0, t1]`,
/// as an event sample for the counting engine: every measured hardware
/// thread runs the same alternating phase pattern, and the sockets hosting
/// measured threads carry the uncore traffic.
pub fn demo_slice(machine: &SimMachine, cpus: &[usize], t0: f64, t1: f64) -> EventSample {
    let topo = machine.topology();
    let frequency_hz = machine.clock().frequency_hz;
    let mut sample = EventSample::new(topo.num_hw_threads(), topo.sockets as usize);
    for &cpu in cpus {
        for kind in DEMO_THREAD_KINDS {
            let delta =
                demo_cumulative(kind, t1, frequency_hz) - demo_cumulative(kind, t0, frequency_hz);
            sample.threads[cpu].add(kind, delta);
        }
    }
    let mut sockets: Vec<usize> = cpus
        .iter()
        .filter_map(|&cpu| topo.hw_thread(cpu).ok().map(|t| t.socket as usize))
        .collect();
    sockets.sort_unstable();
    sockets.dedup();
    for socket in sockets {
        for kind in DEMO_UNCORE_KINDS {
            let delta =
                demo_cumulative(kind, t1, frequency_hz) - demo_cumulative(kind, t0, frequency_hz);
            sample.sockets[socket].add(kind, delta);
        }
    }
    sample
}

/// Run the CLI's timeline mode: observe the synthetic demo application for
/// `duration_s` of virtual time, sampling every `interval_s`.
pub fn run_demo_timeline(
    machine: &SimMachine,
    config: PerfCtrConfig,
    interval_s: f64,
    duration_s: f64,
) -> Result<TimelineResult> {
    let mut session = TimelineSession::new(machine, config, interval_s)?;
    let n = (duration_s / interval_s).ceil().max(1.0);
    if n > MAX_INTERVALS as f64 {
        return Err(LikwidError::Usage(format!(
            "interval {interval_s} s yields {n:.0} sampling points over {duration_s} s \
             (max {MAX_INTERVALS})"
        )));
    }
    let cpus = session.session().cpus().to_vec();
    let engine = EventEngine::new(machine);
    session.start()?;
    // Walk boundaries until the window is covered instead of trusting
    // `ceil(duration/interval)`: float rounding of the ratio (e.g.
    // 0.035/0.005) must never schedule a trailing zero-length interval —
    // a stethoscope over a multiplexed list rotates exactly once through
    // every group.
    let mut t0 = 0.0;
    let mut i = 0usize;
    loop {
        let t1 = ((i + 1) as f64 * interval_s).min(duration_s);
        engine.apply(machine, &demo_slice(machine, &cpus, t0, t1));
        session.tick(t1 - t0)?;
        t0 = t1;
        i += 1;
        if t1 >= duration_s {
            break;
        }
    }
    session.finish()
}

/// Run the CLI's stethoscope mode: measure the synthetic demo application
/// for `duration_s` of virtual time and report the aggregate. A
/// multiplexed group list rotates once through every group within the
/// window.
pub fn run_demo_stethoscope(
    machine: &SimMachine,
    config: PerfCtrConfig,
    duration_s: f64,
) -> Result<TimelineResult> {
    let groups = match &config.spec {
        super::MeasurementSpec::Groups(kinds) => kinds.len().max(1),
        _ => 1,
    };
    run_demo_timeline(machine, config, duration_s / groups as f64, duration_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfctr::{EventGroupKind, MeasurementSpec};
    use likwid_x86_machine::MachinePreset;

    fn config(spec: MeasurementSpec, cpus: Vec<usize>) -> PerfCtrConfig {
        PerfCtrConfig { cpus, spec }
    }

    #[test]
    fn durations_and_intervals_parse() {
        assert_eq!(parse_duration("5ms"), Some(5e-3));
        assert_eq!(parse_duration("250us"), Some(250e-6));
        assert_eq!(parse_duration("1.5s"), Some(1.5));
        assert_eq!(parse_duration("0.25"), Some(0.25));
        assert_eq!(parse_duration(" 2 ms "), Some(2e-3));
        assert_eq!(parse_duration("soon"), None);
        assert!(parse_interval("1ms").is_ok());
        for bad in ["0", "0ms", "-1ms", "bogus", "", "nan"] {
            let err = parse_interval(bad).unwrap_err();
            assert!(matches!(err, LikwidError::Usage(_)), "'{bad}' gave {err:?}");
        }
    }

    #[test]
    fn zero_and_negative_session_intervals_are_usage_errors() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        for bad in [0.0, -1e-3, f64::NAN, f64::INFINITY] {
            let err = TimelineSession::new(
                &machine,
                config(MeasurementSpec::Group(EventGroupKind::FLOPS_DP), vec![0]),
                bad,
            )
            .err()
            .unwrap_or_else(|| panic!("interval {bad} must be rejected"));
            assert!(matches!(err, LikwidError::Usage(_)), "{bad}: {err:?}");
        }
    }

    #[test]
    fn constant_rate_intervals_report_the_aggregate_bandwidth() {
        // The time-binding fix: a constant-rate "workload" must show the
        // same MBytes/s in every interval as in the aggregate — interval
        // metrics divide the interval's counts by the interval dt, the
        // aggregate divides the total counts by the total runtime.
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let mut session = TimelineSession::new(
            &machine,
            config(MeasurementSpec::Group(EventGroupKind::MEM), vec![0]),
            1e-3,
        )
        .unwrap();
        session.start().unwrap();
        let engine = EventEngine::new(&machine);
        let frequency_hz = machine.clock().frequency_hz;
        let topo = machine.topology();
        for _ in 0..8 {
            // 1 ms at exactly 1e5 reads + 5e4 writes per interval.
            let mut sample = EventSample::new(topo.num_hw_threads(), topo.sockets as usize);
            sample.threads[0].add(HwEventKind::CoreCycles, (1e-3 * frequency_hz) as u64);
            sample.threads[0].add(HwEventKind::InstructionsRetired, 1_000_000);
            sample.sockets[0].add(HwEventKind::MemoryReads, 100_000);
            sample.sockets[0].add(HwEventKind::MemoryWrites, 50_000);
            sample.sockets[0].add(HwEventKind::UncoreCycles, (1e-3 * frequency_hz) as u64);
            engine.apply(&machine, &sample);
            session.tick(1e-3).unwrap();
        }
        let result = session.finish().unwrap();
        let aggregate_bw = result.aggregate_results[0]
            .metric("Memory bandwidth [MBytes/s]", 0)
            .expect("aggregate bandwidth");
        let series = result.timeseries[0]
            .series_for("Memory bandwidth [MBytes/s]", 0)
            .expect("bandwidth series");
        assert_eq!(series.values.len(), 8);
        for (i, &v) in series.values.iter().enumerate() {
            assert!(
                (v - aggregate_bw).abs() / aggregate_bw < 1e-9,
                "interval {i}: {v} != aggregate {aggregate_bw}"
            );
        }
        // And the aggregate Runtime [s] keeps the total, while the
        // interval series reports the dt.
        let runtime = result.aggregate_results[0].metric("Runtime [s]", 0).unwrap();
        assert!((runtime - 8e-3).abs() < 1e-6, "total runtime, got {runtime}");
        let interval_runtime = result.timeseries[0].series_for("Runtime [s]", 0).unwrap();
        assert!(interval_runtime.values.iter().all(|&v| (v - 1e-3).abs() < 1e-12));
    }

    #[test]
    fn interval_deltas_sum_to_the_aggregate_under_multiplexing() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let result = run_demo_timeline(
            &machine,
            config(
                MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::MEM]),
                vec![0, 1],
            ),
            1e-3,
            DEMO_DURATION_S,
        )
        .unwrap();
        assert_eq!(result.intervals.len(), 10);
        for g in 0..2 {
            let of_group = result.intervals_of_group(g);
            assert_eq!(of_group.len(), 5, "round-robin rotation");
            assert!(of_group.iter().all(|iv| iv.group == g));
            let num_events = result.aggregate[g].len();
            for ei in 0..num_events {
                for ci in 0..result.cpus.len() {
                    let summed: u64 = of_group.iter().map(|iv| iv.counts[ei][ci]).sum();
                    assert_eq!(
                        summed, result.aggregate[g][ei][ci],
                        "group {g} event {ei} cpu {ci}"
                    );
                }
            }
        }
        // Extrapolation scales the half-coverage aggregates back up.
        let raw = result.aggregate[0][2][0] as f64; // PMC0 of FLOPS_DP on cpu 0
        let extrapolated = result.extrapolated[0][2][0] as f64;
        assert!(
            (extrapolated - 2.0 * raw).abs() <= 1.0,
            "50% coverage doubles: raw {raw}, extrapolated {extrapolated}"
        );
    }

    #[test]
    fn demo_phases_alternate_in_the_timeline() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let result = run_demo_timeline(
            &machine,
            config(MeasurementSpec::Group(EventGroupKind::MEM), vec![0]),
            DEMO_PHASE_S,
            DEMO_DURATION_S,
        )
        .unwrap();
        let bw = result.timeseries[0].series_for("Memory bandwidth [MBytes/s]", 0).unwrap();
        assert_eq!(bw.values.len(), 4);
        assert!(
            bw.values[0] > 50.0 * bw.values[1],
            "memory phase dwarfs compute phase: {:?}",
            bw.values
        );
        assert!(bw.values[2] > 50.0 * bw.values[3]);
        // The demo's cumulative counts telescope: the four intervals sum to
        // the aggregate exactly (single group, no extrapolation).
        let reads_total: u64 = result.intervals.iter().map(|iv| iv.counts[2][0]).sum();
        assert_eq!(reads_total, result.aggregate[0][2][0]);
    }

    #[test]
    fn demo_stethoscope_rotates_every_group_once() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let result = run_demo_stethoscope(
            &machine,
            config(
                MeasurementSpec::Groups(vec![EventGroupKind::FLOPS_DP, EventGroupKind::L2]),
                vec![0],
            ),
            5e-3,
        )
        .unwrap();
        assert_eq!(result.intervals.len(), 2);
        assert_eq!(result.intervals[0].group, 0);
        assert_eq!(result.intervals[1].group, 1);
        assert!((result.duration_s - 5e-3).abs() < 1e-12);
        // Both groups carry non-zero aggregates.
        for g in 0..2 {
            let total: u64 = result.extrapolated[g].iter().flatten().sum();
            assert!(total > 0, "group {g}");
        }
    }

    #[test]
    fn stethoscope_interval_count_survives_float_rounding() {
        // 0.035 / 0.005 computes 7.000000000000001 in IEEE doubles; a
        // naive ceil would schedule an eighth, zero-length interval and
        // skew the extrapolation of group 0 by scheduling it twice.
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let result = run_demo_stethoscope(
            &machine,
            config(
                MeasurementSpec::Groups(vec![
                    EventGroupKind::FLOPS_DP,
                    EventGroupKind::MEM,
                    EventGroupKind::L2,
                    EventGroupKind::BRANCH,
                    EventGroupKind::DATA,
                    EventGroupKind::CACHE,
                    EventGroupKind::TLB,
                ]),
                vec![0],
            ),
            35e-3,
        )
        .unwrap();
        assert_eq!(result.intervals.len(), 7, "exactly one rotation through the 7 groups");
        let groups: Vec<usize> = result.intervals.iter().map(|iv| iv.group).collect();
        assert_eq!(groups, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(result.intervals.iter().all(|iv| iv.t_end_s > iv.t_start_s), "no empty interval");
    }

    #[test]
    fn absurdly_small_intervals_are_rejected_not_looped() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let err = run_demo_timeline(
            &machine,
            config(MeasurementSpec::Group(EventGroupKind::FLOPS_DP), vec![0]),
            1e-12,
            DEMO_DURATION_S,
        )
        .unwrap_err();
        assert!(matches!(err, LikwidError::Usage(_)), "got {err:?}");
    }

    #[test]
    fn suspend_resume_between_intervals_is_invisible_in_the_result() {
        // The daemon broker suspends every session between intervals so
        // another session may borrow the counter registers. For a solo
        // session the suspend/resume cycle must be invisible: identical
        // per-interval deltas, aggregates and rendered report.
        use crate::report::{Ascii, Render};
        let reference = {
            let machine = SimMachine::new(MachinePreset::WestmereEp2S);
            run_demo_timeline(
                &machine,
                config(MeasurementSpec::Group(EventGroupKind::MEM), vec![0, 1]),
                1e-3,
                DEMO_DURATION_S,
            )
            .unwrap()
        };
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let mut session = TimelineSession::new(
            &machine,
            config(MeasurementSpec::Group(EventGroupKind::MEM), vec![0, 1]),
            1e-3,
        )
        .unwrap();
        let cpus = session.session().cpus().to_vec();
        let engine = EventEngine::new(&machine);
        let mut t0 = 0.0;
        for i in 0..10 {
            session.resume().unwrap();
            let t1 = ((i + 1) as f64 * 1e-3).min(DEMO_DURATION_S);
            engine.apply(&machine, &demo_slice(&machine, &cpus, t0, t1));
            session.tick(t1 - t0).unwrap();
            session.suspend().unwrap();
            t0 = t1;
        }
        let sliced = session.finish().unwrap();
        assert_eq!(sliced.intervals, reference.intervals);
        assert_eq!(sliced.aggregate, reference.aggregate);
        assert_eq!(sliced.extrapolated, reference.extrapolated);
        assert_eq!(Ascii.render(&sliced.report()), Ascii.render(&reference.report()));
    }

    #[test]
    fn finish_scaled_extrapolates_by_wall_to_measured_ratio() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let mut session = TimelineSession::new(
            &machine,
            config(MeasurementSpec::Group(EventGroupKind::MEM), vec![0]),
            1e-3,
        )
        .unwrap();
        let engine = EventEngine::new(&machine);
        session.start().unwrap();
        engine.apply(&machine, &demo_slice(&machine, &[0], 0.0, 1e-3));
        session.tick(1e-3).unwrap();
        let result = session.finish_scaled(2.0).unwrap();
        // Raw aggregates keep the measured counts; extrapolation doubles.
        assert_eq!(result.intervals[0].counts, result.aggregate[0]);
        for (ei, per_cpu) in result.extrapolated[0].iter().enumerate() {
            assert_eq!(per_cpu[0], 2 * result.aggregate[0][ei][0], "event {ei}");
        }
        // Sub-unity and non-finite scales are session misuse.
        let machine2 = SimMachine::new(MachinePreset::WestmereEp2S);
        for bad in [0.5, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            let s = TimelineSession::new(
                &machine2,
                config(MeasurementSpec::Group(EventGroupKind::MEM), vec![0]),
                1e-3,
            )
            .unwrap();
            assert!(matches!(s.finish_scaled(bad), Err(LikwidError::Session(_))), "{bad}");
        }
    }

    #[test]
    fn timeline_report_round_trips_and_carries_the_series() {
        use crate::report::{Json, Render, Report};
        let machine = SimMachine::new(MachinePreset::NehalemEp2S);
        let result = run_demo_timeline(
            &machine,
            config(MeasurementSpec::Group(EventGroupKind::MEM), vec![0, 4]),
            1e-3,
            DEMO_DURATION_S,
        )
        .unwrap();
        let report = result.report();
        assert!(report.section("timeline").is_some());
        assert_eq!(report.value("timeline", "Intervals").unwrap().as_count(), Some(10));
        let Some(Body::TimeSeries(ts)) = report.section("timeseries.MEM").map(|s| &s.body) else {
            panic!("timeseries section missing");
        };
        assert_eq!(ts.timestamps.len(), 10);
        assert!(report.table("aggregate.MEM.events").is_some());
        let parsed = Report::from_json(&Json.render(&report)).expect("round trip");
        assert_eq!(parsed, report);
    }
}

//! `likwid-pin`: enforcing thread-core affinity from the outside.
//!
//! The tool itself is thin: it parses the pin list (`-c`), determines the
//! skip mask (from `-t` or `-s`), exports both through environment
//! variables, disables competing affinity mechanisms (`KMP_AFFINITY=disabled`
//! for recent Intel compilers), preloads the wrapper library and starts the
//! target. The actual interception logic lives in
//! [`likwid_affinity::PthreadPinner`]; this module turns a command-line
//! configuration into a ready pinner and reports the placement it will
//! produce for a given number of application threads.

use likwid_affinity::{parse_pin_list, PthreadPinner, SkipMask, ThreadingModel};
use likwid_x86_machine::SimMachine;

use crate::error::{LikwidError, Result};
use crate::report::{Body, KvEntry, Report, Row, Section, Table, Value};

/// Configuration of one `likwid-pin` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PinConfig {
    /// The `-c` pin expression.
    pub pin_expression: String,
    /// The `-t` threading model (default: gcc OpenMP, as in the tool).
    pub model: ThreadingModel,
    /// An explicit `-s` skip mask overriding the model's default.
    pub skip_mask_override: Option<SkipMask>,
}

impl PinConfig {
    /// Configuration with the default threading model (gcc OpenMP).
    pub fn new(pin_expression: &str) -> Self {
        PinConfig {
            pin_expression: pin_expression.to_string(),
            model: ThreadingModel::GccOpenMp,
            skip_mask_override: None,
        }
    }

    /// Set the threading model (`-t intel`, …).
    pub fn with_model(mut self, model: ThreadingModel) -> Self {
        self.model = model;
        self
    }

    /// Set an explicit skip mask (`-s 0x3`).
    pub fn with_skip_mask(mut self, mask: SkipMask) -> Self {
        self.skip_mask_override = Some(mask);
        self
    }

    /// The effective skip mask.
    pub fn skip_mask(&self) -> SkipMask {
        self.skip_mask_override.unwrap_or_else(|| self.model.default_skip_mask())
    }
}

/// Environment the tool would export for the preloaded wrapper library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinEnvironment {
    /// `LIKWID_PIN`: the resolved OS processor ID list.
    pub likwid_pin: String,
    /// `LIKWID_SKIP`: the skip mask.
    pub likwid_skip: String,
    /// `KMP_AFFINITY`: set to `disabled` so the Intel OpenMP runtime's own
    /// affinity mechanism does not interfere (the tool does this
    /// automatically, as described in Section II-C).
    pub kmp_affinity: String,
    /// `LD_PRELOAD`: the wrapper library.
    pub ld_preload: String,
}

/// The `likwid-pin` front end bound to one machine.
pub struct PinTool<'m> {
    machine: &'m SimMachine,
    config: PinConfig,
    resolved_list: Vec<usize>,
}

impl<'m> PinTool<'m> {
    /// Resolve a configuration against a machine.
    pub fn new(machine: &'m SimMachine, config: PinConfig) -> Result<Self> {
        let resolved_list = parse_pin_list(&config.pin_expression, machine.topology())?;
        if resolved_list.is_empty() {
            return Err(LikwidError::Pin("empty pin list".into()));
        }
        Ok(PinTool { machine, config, resolved_list })
    }

    /// The resolved OS processor IDs in pinning order.
    pub fn pin_list(&self) -> &[usize] {
        &self.resolved_list
    }

    /// The effective skip mask.
    pub fn skip_mask(&self) -> SkipMask {
        self.config.skip_mask()
    }

    /// The environment the tool exports before exec'ing the target.
    pub fn environment(&self) -> PinEnvironment {
        PinEnvironment {
            likwid_pin: self
                .resolved_list
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
            likwid_skip: self.skip_mask().to_string(),
            kmp_affinity: "disabled".to_string(),
            ld_preload: "liblikwidpin.so".to_string(),
        }
    }

    /// Build the wrapper-library state machine for the target process.
    pub fn pinner(&self) -> PthreadPinner {
        PthreadPinner::new(self.resolved_list.clone(), self.skip_mask())
    }

    /// The placement the application's workers end up with when the target
    /// runs `omp_num_threads` application threads under the configured
    /// threading model: index 0 is the master thread, `None` means the
    /// thread runs unpinned (pin-list overflow).
    ///
    /// Which created threads are actual application workers is a property of
    /// the threading *model* (the Intel runtime's first created thread is a
    /// shepherd no matter what); whether they get pinned is a property of
    /// the configured skip mask. Keeping the two separate is what lets this
    /// function show the damage of a wrong skip mask: the shepherd consumes
    /// a pin-list slot and the real workers shift and overflow.
    pub fn worker_placement(&self, omp_num_threads: usize) -> Vec<Option<usize>> {
        let mut pinner = self.pinner();
        let created = self.config.model.created_threads(omp_num_threads);
        let true_shepherds = self.config.model.default_skip_mask();
        let mut placement = vec![pinner.master_cpu()];
        for i in 0..created {
            let outcome = pinner.on_thread_create();
            if true_shepherds.skips(i) {
                continue;
            }
            placement.push(outcome.cpu());
        }
        placement.truncate(omp_num_threads);
        placement
    }

    /// Build the structured report of the placement the wrapper library will
    /// enforce for `threads` application threads (the `likwid-pin` output).
    pub fn report(&self, threads: usize) -> Report {
        let env = self.environment();
        let mut report = Report::new("likwid-pin");
        report.push(Section::new(
            "environment",
            Body::KeyValues(vec![
                KvEntry::new("Pin list", Value::Str(env.likwid_pin.clone())),
                KvEntry::new("Skip mask", Value::Str(env.likwid_skip.clone())),
                KvEntry::new("KMP_AFFINITY", Value::Str(env.kmp_affinity.clone()))
                    .with_ascii(format!("KMP_AFFINITY={}", env.kmp_affinity)),
                KvEntry::new("LD_PRELOAD", Value::Str(env.ld_preload.clone()))
                    .with_ascii(format!("LD_PRELOAD={}", env.ld_preload)),
            ]),
        ));
        let mut placement = Table::plain(vec!["thread", "hardware_thread"]);
        for (i, cpu) in self.worker_placement(threads).iter().enumerate() {
            placement.push(match cpu {
                Some(c) => Row::new(vec![Value::Count(i as u64), Value::CpuId(*c)])
                    .with_ascii(format!("  thread {i} -> hardware thread {c}")),
                None => Row::new(vec![Value::Count(i as u64), Value::Str("UNPINNED".to_string())])
                    .with_ascii(format!("  thread {i} -> UNPINNED (pin list exhausted)")),
            });
        }
        report.push(
            Section::new("placement", Body::Table(placement))
                .with_heading(format!("Placement for {threads} application threads:")),
        );
        report
    }

    /// Whether a placement keeps every worker on a distinct physical core
    /// (the property "pinned correctly" means for the STREAM experiments).
    pub fn placement_uses_distinct_cores(&self, placement: &[Option<usize>]) -> bool {
        let topo = self.machine.topology();
        let mut cores = Vec::new();
        for cpu in placement.iter().flatten() {
            let Ok(t) = topo.hw_thread(*cpu) else { return false };
            let key = (t.socket, t.core_index);
            if cores.contains(&key) {
                return false;
            }
            cores.push(key);
        }
        placement.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn paper_example_intel_pinning() {
        // `likwid-pin -c 0-3 -t intel ./a.out` with OMP_NUM_THREADS=4.
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let tool =
            PinTool::new(&machine, PinConfig::new("0-3").with_model(ThreadingModel::IntelOpenMp))
                .unwrap();
        assert_eq!(tool.pin_list(), &[0, 1, 2, 3]);
        assert_eq!(tool.skip_mask(), SkipMask(0x1));
        let placement = tool.worker_placement(4);
        assert_eq!(placement, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert!(tool.placement_uses_distinct_cores(&placement));
    }

    #[test]
    fn paper_example_hybrid_mpi_skip_mask() {
        // `likwid-pin -c 0-7 -s 0x3 ./a.out` with 8 OpenMP threads per MPI rank.
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let tool = PinTool::new(
            &machine,
            PinConfig::new("0-7")
                .with_model(ThreadingModel::IntelOpenMp)
                .with_skip_mask(SkipMask(0x3)),
        )
        .unwrap();
        assert_eq!(tool.skip_mask(), SkipMask(0x3));
        let env = tool.environment();
        assert_eq!(env.likwid_skip, "0x3");
        assert_eq!(env.kmp_affinity, "disabled");
        assert_eq!(env.likwid_pin, "0,1,2,3,4,5,6,7");
        // With Intel MPI + Intel OpenMP, 9 threads are created; the first two
        // are shepherds, so the 8 application threads (master + 7 workers)
        // land on cores 0-7 without any shepherd stealing a slot.
        let mut pinner = tool.pinner();
        let created = ThreadingModel::IntelMpiIntelOpenMp.created_threads(8);
        for _ in 0..created {
            pinner.on_thread_create();
        }
        let placement = pinner.worker_placement();
        assert_eq!(placement.len(), 8, "master + 7 workers");
        assert_eq!(placement[1], Some(1));
        assert_eq!(placement[7], Some(7));
        assert!(placement.iter().all(Option::is_some));
    }

    #[test]
    fn gcc_default_model_needs_no_skip_mask() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let tool = PinTool::new(&machine, PinConfig::new("0,6,1,7")).unwrap();
        assert_eq!(tool.skip_mask(), SkipMask(0x0));
        let placement = tool.worker_placement(4);
        assert_eq!(placement, vec![Some(0), Some(6), Some(1), Some(7)]);
        assert!(tool.placement_uses_distinct_cores(&placement));
    }

    #[test]
    fn wrong_skip_mask_overflows_and_is_detected() {
        // Pinning an Intel-compiled binary without the skip mask: the
        // shepherd consumes a core and the last worker runs unpinned.
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let tool = PinTool::new(
            &machine,
            PinConfig::new("0-3")
                .with_model(ThreadingModel::IntelOpenMp)
                .with_skip_mask(SkipMask(0)),
        )
        .unwrap();
        let placement = tool.worker_placement(4);
        assert_eq!(placement[0], Some(0));
        assert_eq!(
            placement[1],
            Some(2),
            "the shepherd consumed core 1's slot, shifting the first worker to core 2"
        );
        assert_eq!(placement.last().unwrap(), &None, "the last worker overflowed the list");
        assert!(!tool.placement_uses_distinct_cores(&placement));
    }

    #[test]
    fn socket_scatter_expression_spreads_over_both_sockets() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let tool = PinTool::new(&machine, PinConfig::new("S0:0-2@S1:0-2")).unwrap();
        assert_eq!(tool.pin_list(), &[0, 1, 2, 6, 7, 8]);
        let placement = tool.worker_placement(6);
        assert!(tool.placement_uses_distinct_cores(&placement));
        let topo = machine.topology();
        let sockets_used: std::collections::HashSet<u32> =
            placement.iter().flatten().map(|&c| topo.hw_thread(c).unwrap().socket).collect();
        assert_eq!(sockets_used.len(), 2);
    }

    #[test]
    fn bad_expressions_are_rejected() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        assert!(PinTool::new(&machine, PinConfig::new("0-99")).is_err());
        assert!(PinTool::new(&machine, PinConfig::new("abc")).is_err());
    }
}

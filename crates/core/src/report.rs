//! The structured report document model.
//!
//! Every tool and figure generator in the suite builds a [`Report`] — a
//! typed document of [`Section`]s holding [`Table`]s, [`KeyValues`] lists or
//! free [`Body::Text`] blocks over typed [`Value`]s — instead of pushing
//! pre-rendered strings. Formatting is a separate, second step: the three
//! renderers behind the [`Render`] trait turn one and the same document into
//!
//! * [`Ascii`] — the classic terminal output (byte-identical to the
//!   listings of the paper; pinned by the golden-file tests),
//! * [`Csv`] — flat machine-readable rows, and
//! * [`Json`] — a lossless serialization that [`Report::from_json`] parses
//!   back into an equal document (round-trip property).
//!
//! The model keeps *data* typed and primary; where today's ASCII output
//! uses a presentation that cannot be derived from the data alone (fixed
//! column widths, unit suffixes, free-form phrases like "Shared among 12
//! threads"), the entry or row carries an explicit ASCII override next to
//! the typed value. Scriptable consumers read the values; the ASCII
//! renderer honours the overrides.

use crate::output;

pub mod stream;

/// A typed scalar in a report.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An event or occurrence count (rendered like the tool listings:
    /// plain digits up to seven digits, scientific above).
    Count(u64),
    /// A derived metric or other real quantity.
    Real(f64),
    /// Free text.
    Str(String),
    /// An OS hardware-thread (processor) ID.
    CpuId(usize),
    /// A byte quantity (cache sizes, line sizes, data volumes).
    Bytes(u64),
}

impl Value {
    /// Default ASCII rendering of the value (used when no override is set).
    pub fn ascii(&self) -> String {
        match self {
            Value::Count(v) => output::format_count(*v),
            Value::Real(v) => output::format_value(*v),
            Value::Str(s) => s.clone(),
            Value::CpuId(c) => c.to_string(),
            Value::Bytes(b) => b.to_string(),
        }
    }

    /// Raw machine rendering (used by the CSV renderer): counts and byte
    /// quantities print full digits, reals print with round-trip precision.
    pub fn raw(&self) -> String {
        match self {
            Value::Count(v) => v.to_string(),
            Value::Real(v) => format_real(*v),
            Value::Str(s) => s.clone(),
            Value::CpuId(c) => c.to_string(),
            Value::Bytes(b) => b.to_string(),
        }
    }

    /// The count, if this is a [`Value::Count`].
    pub fn as_count(&self) -> Option<u64> {
        match self {
            Value::Count(v) => Some(*v),
            _ => None,
        }
    }

    /// The real value; counts, cpu IDs and byte quantities convert.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(v) => Some(*v),
            Value::Count(v) | Value::Bytes(v) => Some(*v as f64),
            Value::CpuId(c) => Some(*c as f64),
            Value::Str(_) => None,
        }
    }

    /// The string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The hardware-thread ID, if this is a [`Value::CpuId`].
    pub fn as_cpu_id(&self) -> Option<usize> {
        match self {
            Value::CpuId(c) => Some(*c),
            _ => None,
        }
    }

    /// The byte quantity, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<u64> {
        match self {
            Value::Bytes(b) => Some(*b),
            _ => None,
        }
    }
}

/// One typed table row, with an optional pre-formatted ASCII line that
/// overrides the default cell-by-cell rendering (fixed-width figure rows,
/// tab-separated topology rows, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The typed cells, in column order.
    pub values: Vec<Value>,
    /// Full ASCII line override (without the trailing newline).
    pub ascii: Option<String>,
}

impl Row {
    /// A row from typed values with default ASCII rendering.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values, ascii: None }
    }

    /// Attach an explicit ASCII line.
    pub fn with_ascii(mut self, line: impl Into<String>) -> Self {
        self.ascii = Some(line.into());
        self
    }
}

/// How a table is framed in ASCII output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableStyle {
    /// The bordered `+---+` grid of the `likwid-perfctr` listings; the
    /// header row is derived from the column names.
    Bordered,
    /// Plain lines: an optional explicit header line followed by one line
    /// per row (the figure tables and the topology thread listing).
    Plain,
}

/// A typed table: named columns over typed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Machine-readable column names (CSV header, JSON keys, and — for
    /// [`TableStyle::Bordered`] — the ASCII header row).
    pub columns: Vec<String>,
    /// The data rows.
    pub rows: Vec<Row>,
    /// ASCII framing.
    pub style: TableStyle,
    /// Explicit ASCII header line(s) for [`TableStyle::Plain`] tables
    /// (`None` prints no header line at all).
    pub ascii_header: Option<String>,
}

impl Table {
    /// A bordered table (the `likwid-perfctr` listing style).
    pub fn bordered<S: Into<String>>(columns: Vec<S>) -> Self {
        Table {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            style: TableStyle::Bordered,
            ascii_header: None,
        }
    }

    /// A plain-line table without an ASCII header line.
    pub fn plain<S: Into<String>>(columns: Vec<S>) -> Self {
        Table {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            style: TableStyle::Plain,
            ascii_header: None,
        }
    }

    /// Set the explicit ASCII header line of a plain table.
    pub fn with_ascii_header(mut self, header: impl Into<String>) -> Self {
        self.ascii_header = Some(header.into());
        self
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The row whose first cell is `Value::Str(key)` (event names, metric
    /// names, variant names, … label the rows of every tool table).
    pub fn row_by_key(&self, key: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.values.first().and_then(Value::as_str) == Some(key))
    }

    /// Typed lookup: the cell of the row labelled `row_key` in `column`.
    pub fn cell(&self, row_key: &str, column: &str) -> Option<&Value> {
        let col = self.column_index(column)?;
        self.row_by_key(row_key)?.values.get(col)
    }
}

/// One key/value entry, with an optional ASCII line override for free-form
/// phrasings ("Shared among 12 threads", "CPU clock: 2.93 GHz").
#[derive(Debug, Clone, PartialEq)]
pub struct KvEntry {
    /// Machine-readable key.
    pub key: String,
    /// Typed value.
    pub value: Value,
    /// Full ASCII line override (without the trailing newline); defaults to
    /// `key: value`.
    pub ascii: Option<String>,
}

impl KvEntry {
    /// An entry with default `key: value` ASCII rendering.
    pub fn new(key: impl Into<String>, value: Value) -> Self {
        KvEntry { key: key.into(), value, ascii: None }
    }

    /// Attach an explicit ASCII line.
    pub fn with_ascii(mut self, line: impl Into<String>) -> Self {
        self.ascii = Some(line.into());
        self
    }
}

/// One named series of a [`TimeSeries`] body: the per-interval values of a
/// metric (or raw event) on one measured hardware thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Metric or event name.
    pub metric: String,
    /// The OS hardware-thread ID the series was measured on.
    pub cpu: usize,
    /// One value per timestamp of the owning [`TimeSeries`].
    pub values: Vec<f64>,
}

impl Series {
    /// A new series.
    pub fn new(metric: impl Into<String>, cpu: usize, values: Vec<f64>) -> Self {
        Series { metric: metric.into(), cpu, values }
    }
}

/// A time-resolved measurement: one shared timestamp axis (interval end
/// times in seconds since measurement start) plus named per-metric series.
/// The ASCII renderer prints a compact value table with a trailing
/// sparkline per series; the CSV renderer emits long-format
/// `time,metric,cpu,value` rows; JSON round-trips losslessly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// Interval end timestamps in seconds.
    pub timestamps: Vec<f64>,
    /// The series, in display order.
    pub series: Vec<Series>,
}

impl TimeSeries {
    /// The series of a metric on one cpu.
    pub fn series_for(&self, metric: &str, cpu: usize) -> Option<&Series> {
        self.series.iter().find(|s| s.metric == metric && s.cpu == cpu)
    }
}

/// The content of a section.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// A typed table.
    Table(Table),
    /// A list of key/value entries.
    KeyValues(Vec<KvEntry>),
    /// A free text block, rendered verbatim by the ASCII renderer (ASCII
    /// art, pre-laid-out listings).
    Text(String),
    /// A time-resolved measurement (timeline mode).
    TimeSeries(TimeSeries),
}

/// How a section announces itself in ASCII output.
#[derive(Debug, Clone, PartialEq)]
pub enum Heading {
    /// No heading line.
    None,
    /// A single heading line (`Region: Init`, `Figure 5: …`).
    Line(String),
    /// A title framed by heavy rules (`likwid-topology`'s
    /// `Hardware Thread Topology` banner).
    Boxed(String),
}

/// One section of a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Machine-readable section identifier (JSON/CSV key).
    pub id: String,
    /// ASCII heading.
    pub heading: Heading,
    /// Print a rule line before the body (after the heading).
    pub rule_before: bool,
    /// Print a rule line after the body.
    pub rule_after: bool,
    /// The content.
    pub body: Body,
}

impl Section {
    /// A heading-less section.
    pub fn new(id: impl Into<String>, body: Body) -> Self {
        Section {
            id: id.into(),
            heading: Heading::None,
            rule_before: false,
            rule_after: false,
            body,
        }
    }

    /// Set a single-line heading.
    pub fn with_heading(mut self, line: impl Into<String>) -> Self {
        self.heading = Heading::Line(line.into());
        self
    }

    /// Set a heavy-rule boxed heading.
    pub fn with_boxed_heading(mut self, title: impl Into<String>) -> Self {
        self.heading = Heading::Boxed(title.into());
        self
    }

    /// Print a rule before the body.
    pub fn with_rule_before(mut self) -> Self {
        self.rule_before = true;
        self
    }

    /// Print a rule after the body.
    pub fn with_rule_after(mut self) -> Self {
        self.rule_after = true;
        self
    }
}

/// A structured tool report: the typed document every tool and figure
/// generator produces, and every renderer consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The producing tool or figure (metadata; not part of ASCII output).
    pub title: String,
    /// The sections, in output order.
    pub sections: Vec<Section>,
}

impl Report {
    /// An empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report { title: title.into(), sections: Vec::new() }
    }

    /// Append a section.
    pub fn push(&mut self, section: Section) -> &mut Self {
        self.sections.push(section);
        self
    }

    /// Append all sections of another report (used by front ends that
    /// prepend their own sections to a tool's report).
    pub fn extend(&mut self, other: Report) -> &mut Self {
        self.sections.extend(other.sections);
        self
    }

    /// The first section with the given id.
    pub fn section(&self, id: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.id == id)
    }

    /// The table body of the section with the given id.
    pub fn table(&self, id: &str) -> Option<&Table> {
        match &self.section(id)?.body {
            Body::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The value of a key in a key/value section. Returns the first match;
    /// sections may repeat a key (e.g. several socket-lock owners), in which
    /// case [`Report::values`] lists them all.
    pub fn value(&self, section_id: &str, key: &str) -> Option<&Value> {
        match &self.section(section_id)?.body {
            Body::KeyValues(entries) => entries.iter().find(|e| e.key == key).map(|e| &e.value),
            _ => None,
        }
    }

    /// All values of a (possibly repeated) key in a key/value section.
    pub fn values<'a>(&'a self, section_id: &str, key: &'a str) -> Vec<&'a Value> {
        match self.section(section_id).map(|s| &s.body) {
            Some(Body::KeyValues(entries)) => {
                entries.iter().filter(|e| e.key == key).map(|e| &e.value).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Parse a report back from its [`Json`] rendering (the round-trip
    /// property the golden tests pin: `from_json(Json.render(r)) == r`).
    pub fn from_json(text: &str) -> Result<Report, String> {
        json::parse_report(text)
    }
}

/// Round-trip rendering of a real: shortest decimal that parses back to the
/// same bits (Rust's `Display` guarantee); non-finite values use the
/// conventional spellings.
fn format_real(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// A report renderer.
pub trait Render {
    /// Render the document to its output text.
    fn render(&self, report: &Report) -> String;
}

/// The output format selected on a tool command line (`-O`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Classic terminal output.
    #[default]
    Ascii,
    /// Flat comma-separated rows.
    Csv,
    /// Lossless JSON document.
    Json,
}

impl OutputFormat {
    /// Parse a `-O` argument.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "ascii" => Some(OutputFormat::Ascii),
            "csv" => Some(OutputFormat::Csv),
            "json" => Some(OutputFormat::Json),
            _ => None,
        }
    }

    /// Infer the format from an output file extension (`-o out.json`).
    pub fn from_extension(path: &str) -> Option<Self> {
        let ext = path.rsplit_once('.')?.1;
        match ext {
            "csv" => Some(OutputFormat::Csv),
            "json" => Some(OutputFormat::Json),
            "txt" => Some(OutputFormat::Ascii),
            _ => None,
        }
    }

    /// Render a report in this format.
    pub fn render(&self, report: &Report) -> String {
        match self {
            OutputFormat::Ascii => Ascii.render(report),
            OutputFormat::Csv => Csv.render(report),
            OutputFormat::Json => Json.render(report),
        }
    }
}

/// Eight-level sparkline of a series (`▁▂▃▄▅▆▇█`), scaled to its own
/// min/max; non-finite values print as spaces, a constant series as `▄`.
fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if max <= min {
                LEVELS[3]
            } else {
                let level = ((v - min) / (max - min) * 7.0).round() as usize;
                LEVELS[level.min(7)]
            }
        })
        .collect()
}

/// Render a [`TimeSeries`] body: a `time[s]` header row, one aligned value
/// row per series, and a trailing sparkline per row.
fn render_time_series(out: &mut String, ts: &TimeSeries) {
    const TIME_LABEL: &str = "time[s]";
    let labels: Vec<String> =
        ts.series.iter().map(|s| format!("{} core {}", s.metric, s.cpu)).collect();
    let label_w =
        labels.iter().map(String::len).chain(std::iter::once(TIME_LABEL.len())).max().unwrap_or(0);
    let time_cells: Vec<String> = ts.timestamps.iter().map(|&t| output::format_value(t)).collect();
    let value_cells: Vec<Vec<String>> = ts
        .series
        .iter()
        .map(|s| s.values.iter().map(|&v| output::format_value(v)).collect())
        .collect();
    let widths: Vec<usize> = (0..ts.timestamps.len())
        .map(|j| {
            value_cells
                .iter()
                .filter_map(|row| row.get(j).map(String::len))
                .chain(std::iter::once(time_cells[j].len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    out.push_str(&format!("{TIME_LABEL:<label_w$}"));
    for (j, cell) in time_cells.iter().enumerate() {
        out.push_str(&format!("  {cell:>w$}", w = widths[j]));
    }
    out.push('\n');
    for (i, s) in ts.series.iter().enumerate() {
        out.push_str(&format!("{:<label_w$}", labels[i]));
        // A malformed document (hand-written JSON) may carry more values
        // than timestamps; render only the timestamped columns.
        for (j, cell) in value_cells[i].iter().enumerate().take(widths.len()) {
            out.push_str(&format!("  {cell:>w$}", w = widths[j]));
        }
        out.push_str("  ");
        out.push_str(&sparkline(&s.values));
        out.push('\n');
    }
}

/// The classic terminal renderer. Byte-identical to the pre-report string
/// output of every tool (pinned by `tests/report_golden.rs`).
pub struct Ascii;

impl Render for Ascii {
    fn render(&self, report: &Report) -> String {
        let mut out = String::new();
        for section in &report.sections {
            match &section.heading {
                Heading::None => {}
                Heading::Line(line) => {
                    out.push_str(line);
                    out.push('\n');
                }
                Heading::Boxed(title) => {
                    out.push_str(&output::heavy_rule());
                    out.push('\n');
                    out.push_str(title);
                    out.push('\n');
                    out.push_str(&output::heavy_rule());
                    out.push('\n');
                }
            }
            if section.rule_before {
                out.push_str(&output::rule());
                out.push('\n');
            }
            match &section.body {
                Body::KeyValues(entries) => {
                    for entry in entries {
                        match &entry.ascii {
                            Some(line) => out.push_str(line),
                            None => {
                                out.push_str(&entry.key);
                                out.push_str(": ");
                                out.push_str(&entry.value.ascii());
                            }
                        }
                        out.push('\n');
                    }
                }
                Body::Table(table) => match table.style {
                    TableStyle::Bordered => {
                        let mut grid = output::Table::new(table.columns.clone());
                        for row in &table.rows {
                            grid.add_row(row.values.iter().map(Value::ascii).collect::<Vec<_>>());
                        }
                        out.push_str(&grid.render());
                    }
                    TableStyle::Plain => {
                        if let Some(header) = &table.ascii_header {
                            out.push_str(header);
                            out.push('\n');
                        }
                        for row in &table.rows {
                            match &row.ascii {
                                Some(line) => out.push_str(line),
                                None => out.push_str(
                                    &row.values
                                        .iter()
                                        .map(Value::ascii)
                                        .collect::<Vec<_>>()
                                        .join("  "),
                                ),
                            }
                            out.push('\n');
                        }
                    }
                },
                Body::Text(text) => out.push_str(text),
                Body::TimeSeries(ts) => render_time_series(&mut out, ts),
            }
            if section.rule_after {
                out.push_str(&output::rule());
                out.push('\n');
            }
        }
        out
    }
}

/// Escape one CSV field.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The CSV renderer. Each section starts with a `SECTION,<id>` marker line;
/// key/value sections emit one `key,value` line per entry, tables emit the
/// column-name header followed by one raw-value line per row, and text
/// blocks emit one quoted `text,…` line. Values print in raw machine form
/// (full digits, round-trip reals), never the ASCII presentation.
pub struct Csv;

impl Render for Csv {
    fn render(&self, report: &Report) -> String {
        let mut out = String::new();
        for section in &report.sections {
            out.push_str("SECTION,");
            out.push_str(&csv_field(&section.id));
            out.push('\n');
            match &section.body {
                Body::KeyValues(entries) => {
                    for entry in entries {
                        out.push_str(&csv_field(&entry.key));
                        out.push(',');
                        out.push_str(&csv_field(&entry.value.raw()));
                        out.push('\n');
                    }
                }
                Body::Table(table) => {
                    out.push_str(
                        &table.columns.iter().map(|c| csv_field(c)).collect::<Vec<_>>().join(","),
                    );
                    out.push('\n');
                    for row in &table.rows {
                        out.push_str(
                            &row.values
                                .iter()
                                .map(|v| csv_field(&v.raw()))
                                .collect::<Vec<_>>()
                                .join(","),
                        );
                        out.push('\n');
                    }
                }
                Body::Text(text) => {
                    out.push_str("text,");
                    out.push_str(&csv_field(text));
                    out.push('\n');
                }
                Body::TimeSeries(ts) => {
                    out.push_str("time,metric,cpu,value\n");
                    for (j, &t) in ts.timestamps.iter().enumerate() {
                        for s in &ts.series {
                            let Some(&v) = s.values.get(j) else { continue };
                            out.push_str(&csv_field(&format_real(t)));
                            out.push(',');
                            out.push_str(&csv_field(&s.metric));
                            out.push_str(&format!(",{},", s.cpu));
                            out.push_str(&csv_field(&format_real(v)));
                            out.push('\n');
                        }
                    }
                }
            }
        }
        out
    }
}

/// The JSON renderer: a lossless serialization of the document (typed
/// values, headings, rules and ASCII overrides included), hand-rolled so
/// the workspace stays dependency-free. [`Report::from_json`] parses the
/// output back into an equal `Report`.
pub struct Json;

impl Render for Json {
    fn render(&self, report: &Report) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"title\": ");
        json::write_string(&mut out, &report.title);
        out.push_str(",\n  \"sections\": [");
        for (i, section) in report.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_section(&mut out, section);
        }
        if !report.sections.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Hand-rolled JSON writer and reader for [`Report`] documents.
mod json {
    use super::{
        Body, Heading, KvEntry, Report, Row, Section, Series, Table, TableStyle, TimeSeries, Value,
    };

    pub(super) fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_value(out: &mut String, value: &Value) {
        match value {
            Value::Count(v) => out.push_str(&format!("{{\"type\":\"count\",\"v\":{v}}}")),
            Value::Real(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{{\"type\":\"real\",\"v\":{v}}}"));
                } else {
                    out.push_str("{\"type\":\"real\",\"v\":");
                    write_string(out, &super::format_real(*v));
                    out.push('}');
                }
            }
            Value::Str(s) => {
                out.push_str("{\"type\":\"str\",\"v\":");
                write_string(out, s);
                out.push('}');
            }
            Value::CpuId(c) => out.push_str(&format!("{{\"type\":\"cpu\",\"v\":{c}}}")),
            Value::Bytes(b) => out.push_str(&format!("{{\"type\":\"bytes\",\"v\":{b}}}")),
        }
    }

    fn write_opt_string(out: &mut String, s: &Option<String>) {
        match s {
            Some(s) => write_string(out, s),
            None => out.push_str("null"),
        }
    }

    /// A raw f64 array element: a JSON number for finite values, the
    /// conventional string spelling for NaN/±inf.
    fn write_real_token(out: &mut String, v: f64) {
        if v.is_finite() {
            out.push_str(&format!("{v}"));
        } else {
            write_string(out, &super::format_real(v));
        }
    }

    fn write_real_array(out: &mut String, values: &[f64]) {
        out.push('[');
        for (i, &v) in values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_real_token(out, v);
        }
        out.push(']');
    }

    pub(super) fn write_section(out: &mut String, section: &Section) {
        out.push_str("{\"id\":");
        write_string(out, &section.id);
        out.push_str(",\"heading\":");
        match &section.heading {
            Heading::None => out.push_str("null"),
            Heading::Line(s) => {
                out.push_str("{\"kind\":\"line\",\"text\":");
                write_string(out, s);
                out.push('}');
            }
            Heading::Boxed(s) => {
                out.push_str("{\"kind\":\"boxed\",\"text\":");
                write_string(out, s);
                out.push('}');
            }
        }
        out.push_str(&format!(
            ",\"rule_before\":{},\"rule_after\":{},\"body\":",
            section.rule_before, section.rule_after
        ));
        match &section.body {
            Body::KeyValues(entries) => {
                out.push_str("{\"kind\":\"keyvalues\",\"entries\":[");
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"key\":");
                    write_string(out, &e.key);
                    out.push_str(",\"value\":");
                    write_value(out, &e.value);
                    out.push_str(",\"ascii\":");
                    write_opt_string(out, &e.ascii);
                    out.push('}');
                }
                out.push_str("]}");
            }
            Body::Table(table) => {
                out.push_str("{\"kind\":\"table\",\"style\":");
                write_string(
                    out,
                    match table.style {
                        TableStyle::Bordered => "bordered",
                        TableStyle::Plain => "plain",
                    },
                );
                out.push_str(",\"columns\":[");
                for (i, c) in table.columns.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, c);
                }
                out.push_str("],\"ascii_header\":");
                write_opt_string(out, &table.ascii_header);
                out.push_str(",\"rows\":[");
                for (i, row) in table.rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"values\":[");
                    for (j, v) in row.values.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        write_value(out, v);
                    }
                    out.push_str("],\"ascii\":");
                    write_opt_string(out, &row.ascii);
                    out.push('}');
                }
                out.push_str("]}");
            }
            Body::Text(text) => {
                out.push_str("{\"kind\":\"text\",\"text\":");
                write_string(out, text);
                out.push('}');
            }
            Body::TimeSeries(ts) => {
                out.push_str("{\"kind\":\"timeseries\",\"timestamps\":");
                write_real_array(out, &ts.timestamps);
                out.push_str(",\"series\":[");
                for (i, s) in ts.series.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"metric\":");
                    write_string(out, &s.metric);
                    out.push_str(&format!(",\"cpu\":{},\"values\":", s.cpu));
                    write_real_array(out, &s.values);
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
        out.push('}');
    }

    /// A parsed generic JSON value. Numbers keep their raw token so 64-bit
    /// counts survive without a detour through `f64`.
    #[derive(Debug, Clone, PartialEq)]
    enum JsonValue {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Array(Vec<JsonValue>),
        Object(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        fn get(&self, key: &str) -> Option<&JsonValue> {
            match self {
                JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::Str(s) => Some(s),
                _ => None,
            }
        }

        fn as_array(&self) -> Option<&[JsonValue]> {
            match self {
                JsonValue::Array(items) => Some(items),
                _ => None,
            }
        }

        fn as_bool(&self) -> Option<bool> {
            match self {
                JsonValue::Bool(b) => Some(*b),
                _ => None,
            }
        }

        fn as_opt_string(&self) -> Result<Option<String>, String> {
            match self {
                JsonValue::Null => Ok(None),
                JsonValue::Str(s) => Ok(Some(s.clone())),
                _ => Err("expected string or null".into()),
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn new(text: &'a str) -> Self {
            Parser { bytes: text.as_bytes(), pos: 0 }
        }

        fn error(&self, msg: &str) -> String {
            format!("JSON parse error at byte {}: {msg}", self.pos)
        }

        fn skip_ws(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(&format!("expected '{}'", c as char)))
            }
        }

        fn parse_value(&mut self) -> Result<JsonValue, String> {
            match self.peek() {
                Some(b'{') => self.parse_object(),
                Some(b'[') => self.parse_array(),
                Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
                Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
                Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
                Some(b'n') => self.parse_keyword("null", JsonValue::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
                _ => Err(self.error("expected a value")),
            }
        }

        fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(self.error(&format!("expected '{word}'")))
            }
        }

        fn parse_number(&mut self) -> Result<JsonValue, String> {
            self.skip_ws();
            let start = self.pos;
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(self.error("expected a number"));
            }
            Ok(JsonValue::Num(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("bad number"))?
                    .to_string(),
            ))
        }

        fn parse_hex4(&mut self) -> Result<u32, String> {
            let hex = self
                .bytes
                .get(self.pos..self.pos + 4)
                .and_then(|h| std::str::from_utf8(h).ok())
                .ok_or_else(|| self.error("bad \\u escape"))?;
            let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
            self.pos += 4;
            Ok(code)
        }

        fn parse_string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&c) = self.bytes.get(self.pos) else {
                    return Err(self.error("unterminated string"));
                };
                self.pos += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err(self.error("unterminated escape"));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let code = self.parse_hex4()?;
                                let ch = if (0xD800..0xDC00).contains(&code) {
                                    // High surrogate: serializers that force
                                    // ASCII (e.g. Python's json) encode
                                    // non-BMP characters as surrogate pairs.
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(self.error("lone high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("bad surrogate pair"))?
                                } else if (0xDC00..0xE000).contains(&code) {
                                    return Err(self.error("lone low surrogate"));
                                } else {
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("bad \\u code point"))?
                                };
                                out.push(ch);
                            }
                            _ => return Err(self.error("unknown escape")),
                        }
                    }
                    _ => {
                        // Continue a multi-byte UTF-8 sequence verbatim.
                        let len = utf8_len(c);
                        let chunk = self
                            .bytes
                            .get(self.pos - 1..self.pos - 1 + len)
                            .ok_or_else(|| self.error("truncated UTF-8"))?;
                        out.push_str(
                            std::str::from_utf8(chunk).map_err(|_| self.error("bad UTF-8"))?,
                        );
                        self.pos += len - 1;
                    }
                }
            }
        }

        fn parse_array(&mut self) -> Result<JsonValue, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(self.parse_value()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(self.error("expected ',' or ']'")),
                }
            }
        }

        fn parse_object(&mut self) -> Result<JsonValue, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.expect(b':')?;
                let value = self.parse_value()?;
                fields.push((key, value));
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(self.error("expected ',' or '}'")),
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0xF0..=0xF7 => 4,
            0xE0..=0xEF => 3,
            0xC0..=0xDF => 2,
            _ => 1,
        }
    }

    fn read_real_token(v: &JsonValue) -> Result<f64, String> {
        match v {
            JsonValue::Num(raw) => raw.parse().map_err(|_| format!("bad real '{raw}'")),
            JsonValue::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                other => Err(format!("bad non-finite real '{other}'")),
            },
            _ => Err("expected a real number".into()),
        }
    }

    fn read_real_array(v: &JsonValue) -> Result<Vec<f64>, String> {
        v.as_array()
            .ok_or_else(|| "expected an array of reals".to_string())?
            .iter()
            .map(read_real_token)
            .collect()
    }

    fn read_value(v: &JsonValue) -> Result<Value, String> {
        let kind = v
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "value without a type".to_string())?;
        let payload = v.get("v").ok_or_else(|| "value without a payload".to_string())?;
        match kind {
            "count" | "cpu" | "bytes" => {
                let JsonValue::Num(raw) = payload else {
                    return Err(format!("{kind} payload must be a number"));
                };
                let n: u64 = raw.parse().map_err(|_| format!("bad {kind} '{raw}'"))?;
                Ok(match kind {
                    "count" => Value::Count(n),
                    "cpu" => Value::CpuId(n as usize),
                    _ => Value::Bytes(n),
                })
            }
            "real" => Ok(Value::Real(read_real_token(payload)?)),
            "str" => Ok(Value::Str(
                payload.as_str().ok_or_else(|| "str payload must be a string".to_string())?.into(),
            )),
            other => Err(format!("unknown value type '{other}'")),
        }
    }

    fn read_section(v: &JsonValue) -> Result<Section, String> {
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "section without an id".to_string())?
            .to_string();
        let heading = match v.get("heading") {
            None | Some(JsonValue::Null) => Heading::None,
            Some(h) => {
                let text = h
                    .get("text")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "heading without text".to_string())?
                    .to_string();
                match h.get("kind").and_then(JsonValue::as_str) {
                    Some("line") => Heading::Line(text),
                    Some("boxed") => Heading::Boxed(text),
                    _ => return Err("unknown heading kind".into()),
                }
            }
        };
        let rule_before = v.get("rule_before").and_then(JsonValue::as_bool).unwrap_or(false);
        let rule_after = v.get("rule_after").and_then(JsonValue::as_bool).unwrap_or(false);
        let body_json = v.get("body").ok_or_else(|| "section without a body".to_string())?;
        let body = match body_json.get("kind").and_then(JsonValue::as_str) {
            Some("keyvalues") => {
                let entries = body_json
                    .get("entries")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| "keyvalues without entries".to_string())?;
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    out.push(KvEntry {
                        key: e
                            .get("key")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| "entry without a key".to_string())?
                            .to_string(),
                        value: read_value(
                            e.get("value").ok_or_else(|| "entry without a value".to_string())?,
                        )?,
                        ascii: e.get("ascii").map(JsonValue::as_opt_string).transpose()?.flatten(),
                    });
                }
                Body::KeyValues(out)
            }
            Some("table") => {
                let style = match body_json.get("style").and_then(JsonValue::as_str) {
                    Some("bordered") => TableStyle::Bordered,
                    Some("plain") => TableStyle::Plain,
                    _ => return Err("unknown table style".into()),
                };
                let columns = body_json
                    .get("columns")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| "table without columns".to_string())?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "column names must be strings".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let ascii_header = body_json
                    .get("ascii_header")
                    .map(JsonValue::as_opt_string)
                    .transpose()?
                    .flatten();
                let mut rows = Vec::new();
                for r in body_json
                    .get("rows")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| "table without rows".to_string())?
                {
                    let values = r
                        .get("values")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| "row without values".to_string())?
                        .iter()
                        .map(read_value)
                        .collect::<Result<Vec<_>, _>>()?;
                    let ascii = r.get("ascii").map(JsonValue::as_opt_string).transpose()?.flatten();
                    rows.push(Row { values, ascii });
                }
                Body::Table(Table { columns, rows, style, ascii_header })
            }
            Some("text") => Body::Text(
                body_json
                    .get("text")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| "text body without text".to_string())?
                    .to_string(),
            ),
            Some("timeseries") => {
                let timestamps = read_real_array(
                    body_json
                        .get("timestamps")
                        .ok_or_else(|| "timeseries without timestamps".to_string())?,
                )?;
                let mut series = Vec::new();
                for s in body_json
                    .get("series")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| "timeseries without series".to_string())?
                {
                    let metric = s
                        .get("metric")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| "series without a metric name".to_string())?
                        .to_string();
                    let cpu: usize = match s.get("cpu") {
                        Some(JsonValue::Num(raw)) => {
                            raw.parse().map_err(|_| format!("bad series cpu '{raw}'"))?
                        }
                        _ => return Err("series without a cpu".into()),
                    };
                    let values = read_real_array(
                        s.get("values").ok_or_else(|| "series without values".to_string())?,
                    )?;
                    series.push(Series { metric, cpu, values });
                }
                Body::TimeSeries(TimeSeries { timestamps, series })
            }
            _ => return Err("unknown body kind".into()),
        };
        Ok(Section { id, heading, rule_before, rule_after, body })
    }

    pub(super) fn parse_report(text: &str) -> Result<Report, String> {
        let mut parser = Parser::new(text);
        let root = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing data after document"));
        }
        let title = root
            .get("title")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "report without a title".to_string())?
            .to_string();
        let sections = root
            .get("sections")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "report without sections".to_string())?
            .iter()
            .map(read_section)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Report { title, sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut report = Report::new("sample");
        report.push(
            Section::new(
                "identification",
                Body::KeyValues(vec![
                    KvEntry::new("CPU name", Value::Str("Test CPU".into())),
                    KvEntry::new("CPU clock", Value::Real(2.93)).with_ascii("CPU clock: 2.93 GHz"),
                    KvEntry::new("L3 size", Value::Bytes(12 * 1024 * 1024))
                        .with_ascii("Size: 12 MB"),
                ]),
            )
            .with_rule_before(),
        );
        let mut events = Table::bordered(vec!["Event", "core 0", "core 1"]);
        events.push(Row::new(vec![
            Value::Str("INSTR_RETIRED_ANY".into()),
            Value::Count(313742),
            Value::Count(18_802_400),
        ]));
        report.push(Section::new("events", Body::Table(events)));
        let mut series =
            Table::plain(vec!["threads", "median"]).with_ascii_header("threads  median[MB/s]");
        series.push(
            Row::new(vec![Value::Count(4), Value::Real(38000.0)]).with_ascii("      4       38000"),
        );
        report.push(
            Section::new("series", Body::Table(series)).with_heading("Figure 5: STREAM triad"),
        );
        report.push(
            Section::new("art", Body::Text("+---+\n| 0 |\n+---+\n".into()))
                .with_boxed_heading("Cache Topology"),
        );
        report
    }

    #[test]
    fn ascii_rendering_honours_overrides_and_frames() {
        let text = Ascii.render(&sample_report());
        assert!(text.starts_with(&format!("{}\n", output::rule())));
        assert!(text.contains("CPU name: Test CPU\n"));
        assert!(text.contains("CPU clock: 2.93 GHz\n"), "override wins over default formatting");
        assert!(text.contains("Size: 12 MB\n"));
        assert!(text.contains("| INSTR_RETIRED_ANY | 313742 | 1.88024e+07 |"));
        assert!(
            text.contains("Figure 5: STREAM triad\nthreads  median[MB/s]\n      4       38000\n")
        );
        assert!(text.contains(&format!(
            "{}\nCache Topology\n{}\n",
            output::heavy_rule(),
            output::heavy_rule()
        )));
        assert!(text.ends_with("+---+\n| 0 |\n+---+\n"));
    }

    #[test]
    fn csv_rendering_uses_raw_values() {
        let csv = Csv.render(&sample_report());
        assert!(csv.contains("SECTION,identification\n"));
        assert!(csv.contains("CPU clock,2.93\n"), "raw value, not the GHz phrasing");
        assert!(csv.contains("L3 size,12582912\n"), "bytes stay full digits");
        assert!(csv.contains("Event,core 0,core 1\n"));
        assert!(csv.contains("INSTR_RETIRED_ANY,313742,18802400\n"), "counts never go scientific");
        assert!(csv.contains("text,\"+---+\n| 0 |\n+---+\n\""));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut report = Report::new("csv");
        report.push(Section::new(
            "kv",
            Body::KeyValues(vec![KvEntry::new("groups", Value::Str("( 0, 1 ) \"both\"".into()))]),
        ));
        let csv = Csv.render(&report);
        assert!(csv.contains("groups,\"( 0, 1 ) \"\"both\"\"\"\n"));
    }

    #[test]
    fn json_round_trips_the_document() {
        let report = sample_report();
        let json = Json.render(&report);
        let parsed = Report::from_json(&json).expect("parse back");
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_round_trips_awkward_values() {
        let mut report = Report::new("edge \"cases\"\n\t");
        report.push(Section::new(
            "kv",
            Body::KeyValues(vec![
                KvEntry::new("huge", Value::Count(u64::MAX)),
                KvEntry::new("tiny", Value::Real(7.679_06e-5)),
                KvEntry::new("negative", Value::Real(-0.5)),
                KvEntry::new("inf", Value::Real(f64::INFINITY)),
                KvEntry::new("ninf", Value::Real(f64::NEG_INFINITY)),
                KvEntry::new("unicode", Value::Str("Größe 12 µm — done".into())),
                KvEntry::new("cpu", Value::CpuId(23)),
            ]),
        ));
        report.push(Section::new("empty", Body::KeyValues(Vec::new())));
        let parsed = Report::from_json(&Json.render(&report)).expect("parse back");
        assert_eq!(parsed, report);
        assert_eq!(parsed.value("kv", "huge").unwrap().as_count(), Some(u64::MAX));
        assert_eq!(parsed.value("kv", "tiny").unwrap().as_real(), Some(7.679_06e-5));
    }

    #[test]
    fn json_parser_decodes_surrogate_pair_escapes() {
        // ASCII-forcing serializers (Python's json with ensure_ascii=True)
        // encode non-BMP characters as UTF-16 surrogate pairs.
        let doc = "{\"title\":\"\\ud835\\udc65\",\"sections\":[]}";
        assert_eq!(Report::from_json(doc).unwrap().title, "\u{1d465}");
        assert!(Report::from_json("{\"title\":\"\\ud835\",\"sections\":[]}").is_err());
        assert!(Report::from_json("{\"title\":\"\\ud835x\",\"sections\":[]}").is_err());
        assert!(Report::from_json("{\"title\":\"\\udc65\",\"sections\":[]}").is_err());
        assert!(Report::from_json("{\"title\":\"\\ud835\\ud835\",\"sections\":[]}").is_err());
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{").is_err());
        assert!(Report::from_json("{\"title\":\"x\"}").is_err(), "sections required");
        assert!(Report::from_json("{\"title\":\"x\",\"sections\":[]}{}").is_err(), "trailing data");
        assert!(Report::from_json("[1,2,3]").is_err());
    }

    #[test]
    fn typed_lookups_find_cells_and_values() {
        let report = sample_report();
        let events = report.table("events").expect("events table");
        assert_eq!(
            events.cell("INSTR_RETIRED_ANY", "core 1").unwrap().as_count(),
            Some(18_802_400)
        );
        assert!(events.cell("INSTR_RETIRED_ANY", "core 9").is_none());
        assert!(events.cell("NOT_AN_EVENT", "core 0").is_none());
        assert_eq!(report.value("identification", "CPU clock").unwrap().as_real(), Some(2.93));
        assert!(report.value("identification", "missing").is_none());
        assert!(report.section("missing").is_none());
    }

    #[test]
    fn output_format_selection_and_inference() {
        assert_eq!(OutputFormat::parse("ascii"), Some(OutputFormat::Ascii));
        assert_eq!(OutputFormat::parse("csv"), Some(OutputFormat::Csv));
        assert_eq!(OutputFormat::parse("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::parse("xml"), None);
        assert_eq!(OutputFormat::from_extension("out.json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::from_extension("out.csv"), Some(OutputFormat::Csv));
        assert_eq!(OutputFormat::from_extension("out.txt"), Some(OutputFormat::Ascii));
        assert_eq!(OutputFormat::from_extension("out"), None);
    }

    fn sample_time_series() -> TimeSeries {
        TimeSeries {
            timestamps: vec![0.001, 0.002, 0.003, 0.004],
            series: vec![
                Series::new("Memory bandwidth [MBytes/s]", 0, vec![20480.0, 64.0, 20480.0, 64.0]),
                Series::new("CPI", 1, vec![1.5, 1.5, 1.5, 1.5]),
            ],
        }
    }

    #[test]
    fn time_series_ascii_prints_table_and_sparkline() {
        let mut report = Report::new("tl");
        report.push(Section::new("timeseries", Body::TimeSeries(sample_time_series())));
        let text = Ascii.render(&report);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header plus one line per series:\n{text}");
        assert!(lines[0].starts_with("time[s]"));
        assert!(lines[0].contains("0.001") && lines[0].contains("0.004"));
        assert!(lines[1].starts_with("Memory bandwidth [MBytes/s] core 0"));
        assert!(lines[1].ends_with("█▁█▁"), "alternating series sparkline: {}", lines[1]);
        assert!(lines[2].starts_with("CPI core 1"));
        assert!(lines[2].ends_with("▄▄▄▄"), "constant series sparkline: {}", lines[2]);
        // Columns align: every value column is right-aligned under its
        // timestamp, so the header and rows share the table width up to the
        // sparkline suffix.
        let data_width = lines[0].len();
        assert!(lines[1].chars().count() > data_width, "sparkline extends past the table");
    }

    #[test]
    fn time_series_csv_uses_long_format() {
        let mut report = Report::new("tl");
        report.push(Section::new("timeseries", Body::TimeSeries(sample_time_series())));
        let csv = Csv.render(&report);
        assert!(csv.starts_with("SECTION,timeseries\ntime,metric,cpu,value\n"));
        assert!(csv.contains("0.001,Memory bandwidth [MBytes/s],0,20480\n"));
        assert!(csv.contains("0.001,CPI,1,1.5\n"));
        assert!(csv.contains("0.004,Memory bandwidth [MBytes/s],0,64\n"));
        // One record per (timestamp, series) pair plus the two headers.
        assert_eq!(csv.lines().count(), 2 + 4 * 2);
    }

    #[test]
    fn time_series_json_round_trips() {
        let mut report = Report::new("tl");
        report.push(
            Section::new("timeseries", Body::TimeSeries(sample_time_series()))
                .with_heading("Timeline MEM"),
        );
        let json = Json.render(&report);
        let parsed = Report::from_json(&json).expect("timeseries JSON must parse");
        assert_eq!(parsed, report);
        // Timestamps and values survive as raw reals, not stringified.
        assert!(json.contains("\"timestamps\":[0.001,0.002,0.003,0.004]"));
        assert!(json.contains("\"cpu\":1"));
    }

    #[test]
    fn time_series_with_mismatched_lengths_renders_without_panicking() {
        // A hand-written JSON document may carry more (or fewer) values
        // than timestamps; every renderer must tolerate it.
        let ts = TimeSeries {
            timestamps: vec![0.1, 0.2],
            series: vec![
                Series::new("long", 0, vec![1.0, 2.0, 3.0]),
                Series::new("short", 1, vec![4.0]),
            ],
        };
        let mut report = Report::new("tl");
        report.push(Section::new("timeseries", Body::TimeSeries(ts)));
        let text = Ascii.render(&report);
        assert!(text.contains("long core 0"));
        assert!(text.contains("short core 1"));
        let csv = Csv.render(&report);
        assert!(csv.contains("0.1,short,1,4\n"));
        assert!(!csv.contains("0.2,short"), "short series has no second value");
        let parsed = Report::from_json(&Json.render(&report)).expect("still round-trips");
        assert_eq!(parsed.sections.len(), 1);
    }

    #[test]
    fn time_series_sparkline_handles_degenerate_series() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0]), "▄");
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]), "▁ █");
        assert_eq!(sparkline(&[0.0, 3.5, 7.0]), "▁▅█");
    }

    #[test]
    fn values_expose_typed_accessors() {
        assert_eq!(Value::Count(7).as_count(), Some(7));
        assert_eq!(Value::Count(7).as_real(), Some(7.0));
        assert_eq!(Value::Bytes(64).as_bytes(), Some(64));
        assert_eq!(Value::CpuId(3).as_cpu_id(), Some(3));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_real(), None);
        assert_eq!(Value::Count(18_802_400).ascii(), "1.88024e+07");
        assert_eq!(Value::Count(18_802_400).raw(), "18802400");
    }
}

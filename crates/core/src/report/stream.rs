//! Row-at-a-time rendering for live measurement streams.
//!
//! The post-mortem [`Render`](super::Render) trait consumes a finished
//! [`Report`](super::Report); a daemon session instead emits one row of
//! metric values per interval while the measurement is still running.  A
//! [`StreamRender`] turns that trickle into terminal output incrementally:
//! `begin` prints the column header once, `row` prints each interval as it
//! arrives, and `end` optionally appends the post-mortem aggregate report
//! once the session finishes.
//!
//! Two implementations mirror the batch formats: [`LiveTable`] is the
//! fixed-width ASCII table a human watches scroll by, [`CsvStream`] is the
//! flat comma-separated form for spreadsheets and pipes.  Machine clients
//! that want lossless values skip this layer entirely and read the daemon's
//! NDJSON frames.

use super::{csv_field, format_real, Csv, Render, Report};
use crate::output::format_value;

/// The immutable shape of a stream: one time column plus one column per
/// streamed metric (or raw event) series.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamHeader {
    /// Label of the leading time column (conventionally `time[s]`).
    pub time_label: String,
    /// Labels of the value columns, e.g. `"DP MFlops/s core 2"`.
    pub columns: Vec<String>,
}

/// One interval's worth of values: the interval end time and one value per
/// header column.  `None` marks a column the interval did not cover (a group
/// that was not scheduled during multiplexed rotation).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRow {
    /// End of the interval on the session's virtual clock, in seconds.
    pub t: f64,
    /// One value per [`StreamHeader::columns`] entry.
    pub values: Vec<Option<f64>>,
}

/// An incremental renderer for live interval streams.
///
/// Each method returns the text to append to the output (possibly empty);
/// implementations may keep state between calls (column widths, row counts)
/// but must not reorder or buffer rows.
pub trait StreamRender {
    /// Render the stream header.  Called exactly once, before any row.
    fn begin(&mut self, header: &StreamHeader) -> String;
    /// Render one interval row.
    fn row(&mut self, header: &StreamHeader, row: &StreamRow) -> String;
    /// Render the stream trailer.  `aggregate` carries the post-mortem
    /// report of the finished session when the caller has one.
    fn end(&mut self, header: &StreamHeader, aggregate: Option<&Report>) -> String;
}

/// Minimum column width of the live table, so short labels still leave room
/// for six-significant-digit values.
const MIN_COL_WIDTH: usize = 12;

/// The human-facing live view: a fixed-width right-aligned table whose
/// column widths are locked in by the header so rows never jitter.
#[derive(Debug, Default)]
pub struct LiveTable {
    widths: Vec<usize>,
}

impl LiveTable {
    /// Create a live table renderer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamRender for LiveTable {
    fn begin(&mut self, header: &StreamHeader) -> String {
        self.widths = std::iter::once(&header.time_label)
            .chain(header.columns.iter())
            .map(|label| label.len().max(MIN_COL_WIDTH))
            .collect();
        let cells: Vec<String> = std::iter::once(&header.time_label)
            .chain(header.columns.iter())
            .zip(&self.widths)
            .map(|(label, &w)| format!("{label:>w$}"))
            .collect();
        let head = cells.join("  ");
        let rule = "-".repeat(head.len());
        format!("{head}\n{rule}\n")
    }

    fn row(&mut self, header: &StreamHeader, row: &StreamRow) -> String {
        debug_assert_eq!(row.values.len(), header.columns.len());
        let cells: Vec<String> = std::iter::once(format_value(row.t))
            .chain(row.values.iter().map(|v| match v {
                Some(v) => format_value(*v),
                None => "-".to_string(),
            }))
            .zip(&self.widths)
            .map(|(cell, &w)| format!("{cell:>w$}"))
            .collect();
        format!("{}\n", cells.join("  "))
    }

    fn end(&mut self, _header: &StreamHeader, aggregate: Option<&Report>) -> String {
        match aggregate {
            Some(report) => format!("\n{}", super::Ascii.render(report)),
            None => String::new(),
        }
    }
}

/// The machine-facing live view: comma-separated rows with round-trip reals,
/// mirroring the batch [`Csv`] renderer's conventions.  Uncovered columns
/// render as empty fields.
#[derive(Debug, Default)]
pub struct CsvStream;

impl CsvStream {
    /// Create a CSV stream renderer.
    pub fn new() -> Self {
        Self
    }
}

impl StreamRender for CsvStream {
    fn begin(&mut self, header: &StreamHeader) -> String {
        let cells: Vec<String> = std::iter::once(&header.time_label)
            .chain(header.columns.iter())
            .map(|label| csv_field(label))
            .collect();
        format!("{}\n", cells.join(","))
    }

    fn row(&mut self, header: &StreamHeader, row: &StreamRow) -> String {
        debug_assert_eq!(row.values.len(), header.columns.len());
        let cells: Vec<String> = std::iter::once(format_real(row.t))
            .chain(row.values.iter().map(|v| match v {
                Some(v) => format_real(*v),
                None => String::new(),
            }))
            .collect();
        format!("{}\n", cells.join(","))
    }

    fn end(&mut self, _header: &StreamHeader, aggregate: Option<&Report>) -> String {
        match aggregate {
            Some(report) => Csv.render(report),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Body, Section};

    fn header() -> StreamHeader {
        StreamHeader {
            time_label: "time[s]".to_string(),
            columns: vec!["DP MFlops/s core 0".to_string(), "x,y core 1".to_string()],
        }
    }

    #[test]
    fn live_table_locks_column_widths_at_begin() {
        let mut table = LiveTable::new();
        let header = header();
        let head = table.begin(&header);
        let lines: Vec<&str> = head.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("x,y core 1"));
        assert_eq!(lines[1], "-".repeat(lines[0].len()));

        let row1 = table.row(&header, &StreamRow { t: 0.0025, values: vec![Some(1234.5), None] });
        let row2 = table.row(&header, &StreamRow { t: 0.005, values: vec![Some(7.0), Some(0.25)] });
        // Fixed widths: every row is exactly as wide as the header line.
        assert_eq!(row1.trim_end().len(), lines[0].len());
        assert_eq!(row2.trim_end().len(), lines[0].len());
        assert!(row1.contains("1234.5"));
        // Uncovered column renders as a right-aligned dash.
        assert!(row1.trim_end().ends_with('-'));
        assert_eq!(table.end(&header, None), "");
    }

    #[test]
    fn csv_stream_escapes_labels_and_round_trips_values() {
        let mut csv = CsvStream::new();
        let header = header();
        assert_eq!(csv.begin(&header), "time[s],DP MFlops/s core 0,\"x,y core 1\"\n");
        let row = csv.row(&header, &StreamRow { t: 2.5e-3, values: vec![Some(0.1 + 0.2), None] });
        assert_eq!(row, "0.0025,0.30000000000000004,\n");
        assert_eq!(csv.end(&header, None), "");
    }

    #[test]
    fn end_appends_the_post_mortem_report() {
        let mut report = Report::new("test");
        report.push(Section::new("s", Body::Text("k v".into())).with_heading("Summary:"));

        let mut table = LiveTable::new();
        let head = table.begin(&header());
        assert!(!head.is_empty());
        let tail = table.end(&header(), Some(&report));
        assert!(tail.starts_with('\n'));
        assert!(tail.contains("Summary:"));

        let mut csv = CsvStream::new();
        let tail = csv.end(&header(), Some(&report));
        assert_eq!(tail, Csv.render(&report));
    }
}

//! `likwid-topology`: node topology probing via `cpuid`.
//!
//! The tool never asks the operating system (or, here, the machine model)
//! for the topology directly: everything is reconstructed from the `cpuid`
//! leaves, exactly like the real implementation — leaf 0xB on Nehalem and
//! newer, the legacy leaf 0x1/0x4 method on Core 2 class parts, and the
//! extended AMD leaves on K8/K10. The tests then verify that the decoded
//! picture matches the machine's ground truth for every preset, which is
//! the property the real tool relies on silicon to provide.

use likwid_x86_machine::cpuid::{decode_brand_string, decode_family_model, decode_vendor_string};
use likwid_x86_machine::{apic, CacheKind, Microarch, SimMachine, Vendor};

use crate::error::{LikwidError, Result};
use crate::output;
use crate::report::{Ascii, Body, KvEntry, Render, Report, Row, Section, Table, Value};

/// One hardware thread as reported by the tool (the rows of the
/// "HWThread / Thread / Core / Socket" listing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwThreadInfo {
    /// OS processor ID.
    pub os_id: usize,
    /// APIC ID the thread reported.
    pub apic_id: u32,
    /// SMT thread number within the core.
    pub thread_id: u32,
    /// Core ID within the package (as numbered by the hardware, holes and all).
    pub core_id: u32,
    /// Package (socket) number.
    pub socket_id: u32,
}

/// One cache level as reported by `likwid-topology -c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheInfo {
    /// Cache level.
    pub level: u32,
    /// Data/instruction/unified.
    pub kind: CacheKind,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub associativity: u32,
    /// Number of sets.
    pub sets: u32,
    /// Line size in bytes.
    pub line_size: u32,
    /// Whether the cache is inclusive.
    pub inclusive: bool,
    /// Number of hardware threads actually sharing one instance (the
    /// "Shared among N threads" line of the listing).
    pub shared_by_threads: u32,
    /// The cache groups: for each instance, the OS processor IDs sharing it.
    pub groups: Vec<Vec<usize>>,
}

/// The probed node topology.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuTopology {
    /// CPU vendor.
    pub vendor: Vendor,
    /// Identified microarchitecture.
    pub arch: Microarch,
    /// Brand string.
    pub brand: String,
    /// Display family/model.
    pub family_model: (u32, u32),
    /// Nominal clock in GHz.
    pub clock_ghz: f64,
    /// Number of sockets found.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// SMT threads per core.
    pub threads_per_core: u32,
    /// All hardware threads, indexed by OS processor ID.
    pub hw_threads: Vec<HwThreadInfo>,
    /// Data/unified cache levels.
    pub caches: Vec<CacheInfo>,
}

impl CpuTopology {
    /// Probe the topology of a machine through its `cpuid` interface.
    pub fn probe(machine: &SimMachine) -> Result<Self> {
        let num_threads = machine.num_hw_threads();

        // Identification from hardware thread 0.
        let leaf0 = machine.cpuid(0, 0, 0)?;
        let vendor_string = decode_vendor_string(leaf0);
        let vendor = Vendor::from_id_string(&vendor_string)
            .ok_or_else(|| LikwidError::Unsupported(format!("unknown vendor '{vendor_string}'")))?;
        let leaf1 = machine.cpuid(0, 1, 0)?;
        let family_model = decode_family_model(leaf1.eax);
        let arch = Microarch::from_family_model(vendor, family_model.0, family_model.1)
            .ok_or_else(|| {
                LikwidError::Unsupported(format!(
                    "unsupported processor family {:#x} model {:#x}",
                    family_model.0, family_model.1
                ))
            })?;
        let brand = decode_brand_string([
            machine.cpuid(0, 0x8000_0002, 0)?,
            machine.cpuid(0, 0x8000_0003, 0)?,
            machine.cpuid(0, 0x8000_0004, 0)?,
        ]);

        // Per-thread APIC decomposition.
        let mut hw_threads = Vec::with_capacity(num_threads);
        for cpu in 0..num_threads {
            hw_threads.push(Self::probe_thread(machine, arch, cpu)?);
        }

        // Normalise socket numbering to be dense and stable.
        let mut socket_ids: Vec<u32> = hw_threads.iter().map(|t| t.socket_id).collect();
        socket_ids.sort_unstable();
        socket_ids.dedup();
        let sockets = socket_ids.len() as u32;

        let mut core_ids_socket0: Vec<u32> =
            hw_threads.iter().filter(|t| t.socket_id == socket_ids[0]).map(|t| t.core_id).collect();
        core_ids_socket0.sort_unstable();
        core_ids_socket0.dedup();
        let cores_per_socket = core_ids_socket0.len() as u32;

        let mut smt_ids: Vec<u32> = hw_threads.iter().map(|t| t.thread_id).collect();
        smt_ids.sort_unstable();
        smt_ids.dedup();
        let threads_per_core = smt_ids.len() as u32;

        // Cache hierarchy.
        let caches = Self::probe_caches(machine, arch, &hw_threads)?;

        Ok(CpuTopology {
            vendor,
            arch,
            brand,
            family_model,
            clock_ghz: machine.clock().ghz(),
            sockets,
            cores_per_socket,
            threads_per_core,
            hw_threads,
            caches,
        })
    }

    /// Decode the topology coordinates of one hardware thread.
    fn probe_thread(machine: &SimMachine, arch: Microarch, cpu: usize) -> Result<HwThreadInfo> {
        if arch.has_leaf_0xb() {
            // Extended topology enumeration: the SMT subleaf gives the shift
            // to strip the SMT field, the core subleaf the shift to reach the
            // package number.
            let smt_leaf = machine.cpuid(cpu, 0xB, 0)?;
            let core_leaf = machine.cpuid(cpu, 0xB, 1)?;
            let apic_id = smt_leaf.edx;
            let smt_shift = smt_leaf.eax & 0x1F;
            let package_shift = core_leaf.eax & 0x1F;
            let smt_mask = (1u32 << smt_shift) - 1;
            let core_mask = (1u32 << (package_shift - smt_shift)) - 1;
            return Ok(HwThreadInfo {
                os_id: cpu,
                apic_id,
                thread_id: apic_id & smt_mask,
                core_id: (apic_id >> smt_shift) & core_mask,
                socket_id: apic_id >> package_shift,
            });
        }

        let leaf1 = machine.cpuid(cpu, 1, 0)?;
        let apic_id = leaf1.ebx >> 24;
        match arch.vendor() {
            Vendor::Intel => {
                // Legacy method: logical processors per package from leaf 1,
                // cores per package from leaf 4.
                let logical_per_package = ((leaf1.ebx >> 16) & 0xFF).max(1);
                let cores_per_package =
                    if arch.has_leaf_0x4() { (machine.cpuid(cpu, 4, 0)?.eax >> 26) + 1 } else { 1 };
                let smt_per_core = (logical_per_package / cores_per_package).max(1);
                let smt_bits = apic::ceil_log2(smt_per_core);
                let core_bits = apic::ceil_log2(cores_per_package);
                let smt_mask = (1u32 << smt_bits).wrapping_sub(1);
                let core_mask = (1u32 << core_bits).wrapping_sub(1);
                Ok(HwThreadInfo {
                    os_id: cpu,
                    apic_id,
                    thread_id: apic_id & smt_mask,
                    core_id: (apic_id >> smt_bits) & core_mask,
                    socket_id: apic_id >> (smt_bits + core_bits),
                })
            }
            Vendor::Amd => {
                let cores_per_package = (machine.cpuid(cpu, 0x8000_0008, 0)?.ecx & 0xFF) + 1;
                let core_bits = apic::ceil_log2(cores_per_package);
                let core_mask = (1u32 << core_bits).wrapping_sub(1);
                Ok(HwThreadInfo {
                    os_id: cpu,
                    apic_id,
                    thread_id: 0,
                    core_id: apic_id & core_mask,
                    socket_id: apic_id >> core_bits,
                })
            }
        }
    }

    /// Decode the cache hierarchy and build the per-level sharing groups.
    fn probe_caches(
        machine: &SimMachine,
        arch: Microarch,
        hw_threads: &[HwThreadInfo],
    ) -> Result<Vec<CacheInfo>> {
        let mut caches = Vec::new();
        match arch.vendor() {
            Vendor::Intel if arch.has_leaf_0x4() => {
                for subleaf in 0..16u32 {
                    let r = machine.cpuid(0, 4, subleaf)?;
                    let kind_bits = r.eax & 0x1F;
                    if kind_bits == 0 {
                        break;
                    }
                    let kind = CacheKind::from_cpuid_encoding(kind_bits)
                        .ok_or_else(|| LikwidError::Unsupported("bad cache type".into()))?;
                    let level = (r.eax >> 5) & 0x7;
                    // The cpuid field is the APIC-ID *span* of the sharing
                    // domain; the actual number of sharers is the size of
                    // the resulting groups (what the listing reports as
                    // "Shared among N threads").
                    let sharing_span = ((r.eax >> 14) & 0xFFF) + 1;
                    let groups = Self::sharing_groups(hw_threads, sharing_span);
                    let shared_by = groups.first().map(|g| g.len() as u32).unwrap_or(1);
                    let line_size = (r.ebx & 0xFFF) + 1;
                    let associativity = (r.ebx >> 22) + 1;
                    let sets = r.ecx + 1;
                    let size = line_size as u64 * associativity as u64 * sets as u64;
                    caches.push(CacheInfo {
                        level,
                        kind,
                        size_bytes: size,
                        associativity,
                        sets,
                        line_size,
                        inclusive: r.edx & 0b10 != 0,
                        shared_by_threads: shared_by,
                        groups,
                    });
                }
            }
            Vendor::Intel => {
                // Pentium M: leaf 2 descriptor table. Decode the descriptors
                // the machine substrate emits.
                let r = machine.cpuid(0, 2, 0)?;
                let bytes: Vec<u8> =
                    [r.eax, r.ebx, r.ecx, r.edx].iter().flat_map(|v| v.to_le_bytes()).collect();
                for (i, &b) in bytes.iter().enumerate() {
                    if i == 0 {
                        continue; // AL is the repeat count
                    }
                    let info = match b {
                        0x2c => Some((1, CacheKind::Data, 32 * 1024, 8, 64)),
                        0x30 => Some((1, CacheKind::Instruction, 32 * 1024, 8, 64)),
                        0x7d => Some((2, CacheKind::Unified, 2 * 1024 * 1024, 8, 64)),
                        0x29 => Some((3, CacheKind::Unified, 4 * 1024 * 1024, 8, 64)),
                        _ => None,
                    };
                    if let Some((level, kind, size, assoc, line)) = info {
                        caches.push(CacheInfo {
                            level,
                            kind,
                            size_bytes: size,
                            associativity: assoc,
                            sets: (size / (assoc as u64 * line as u64)) as u32,
                            line_size: line,
                            inclusive: false,
                            shared_by_threads: 1,
                            groups: Self::sharing_groups(hw_threads, 1),
                        });
                    }
                }
            }
            Vendor::Amd => {
                let l1 = machine.cpuid(0, 0x8000_0005, 0)?;
                let l1_size_kb = l1.ecx >> 24;
                let l1_assoc = (l1.ecx >> 16) & 0xFF;
                let l1_line = l1.ecx & 0xFF;
                if l1_size_kb > 0 {
                    let size = l1_size_kb as u64 * 1024;
                    caches.push(CacheInfo {
                        level: 1,
                        kind: CacheKind::Data,
                        size_bytes: size,
                        associativity: l1_assoc,
                        sets: (size / (l1_assoc as u64 * l1_line as u64)) as u32,
                        line_size: l1_line,
                        inclusive: false,
                        shared_by_threads: 1,
                        groups: Self::sharing_groups(hw_threads, 1),
                    });
                }
                let l23 = machine.cpuid(0, 0x8000_0006, 0)?;
                let l2_size_kb = l23.ecx >> 16;
                let l2_line = l23.ecx & 0xFF;
                let amd_assoc = |code: u32| match code {
                    0x1 => 1,
                    0x2 => 2,
                    0x4 => 4,
                    0x6 => 8,
                    0x8 => 16,
                    0xA => 32,
                    0xB => 48,
                    0xC => 64,
                    0xD => 96,
                    0xE => 128,
                    _ => 16,
                };
                if l2_size_kb > 0 {
                    let assoc = amd_assoc((l23.ecx >> 12) & 0xF);
                    let size = l2_size_kb as u64 * 1024;
                    caches.push(CacheInfo {
                        level: 2,
                        kind: CacheKind::Unified,
                        size_bytes: size,
                        associativity: assoc,
                        sets: (size / (assoc as u64 * l2_line as u64)) as u32,
                        line_size: l2_line,
                        inclusive: false,
                        shared_by_threads: 1,
                        groups: Self::sharing_groups(hw_threads, 1),
                    });
                }
                let l3_size = (l23.edx >> 18) as u64 * 512 * 1024;
                let l3_line = l23.edx & 0xFF;
                if l3_size > 0 {
                    let assoc = amd_assoc((l23.edx >> 12) & 0xF);
                    // The L3 is shared by all cores of the package.
                    let cores_per_package = (machine.cpuid(0, 0x8000_0008, 0)?.ecx & 0xFF) + 1;
                    caches.push(CacheInfo {
                        level: 3,
                        kind: CacheKind::Unified,
                        size_bytes: l3_size,
                        associativity: assoc,
                        sets: (l3_size / (assoc as u64 * l3_line as u64)) as u32,
                        line_size: l3_line,
                        inclusive: false,
                        shared_by_threads: cores_per_package,
                        groups: Self::sharing_groups(hw_threads, cores_per_package),
                    });
                }
            }
        }
        Ok(caches)
    }

    /// Group hardware threads that share one cache instance: threads share a
    /// cache when their APIC IDs agree above the `ceil_log2(shared_by)` low
    /// bits (the standard Intel enumeration algorithm).
    fn sharing_groups(hw_threads: &[HwThreadInfo], shared_by: u32) -> Vec<Vec<usize>> {
        let shift = apic::ceil_log2(shared_by.max(1));
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        for t in hw_threads {
            let key = t.apic_id >> shift;
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(t.os_id),
                None => groups.push((key, vec![t.os_id])),
            }
        }
        // Order groups by their first member for stable output and sort the
        // members by (SMT, core) so siblings interleave like the listings.
        let mut out: Vec<Vec<usize>> = groups.into_iter().map(|(_, m)| m).collect();
        out.sort_by_key(|g| g.iter().copied().min().unwrap_or(0));
        out
    }

    /// The OS processor IDs of one socket, SMT siblings interleaved per core
    /// (the "Socket N: ( … )" line of the listing).
    pub fn socket_members(&self, socket: u32) -> Vec<usize> {
        let mut members: Vec<&HwThreadInfo> =
            self.hw_threads.iter().filter(|t| t.socket_id == socket).collect();
        members.sort_by_key(|t| (t.core_id, t.thread_id));
        members.iter().map(|t| t.os_id).collect()
    }

    /// Build the structured report of the probed topology: the standard
    /// listing (Section II-B), with the per-level cache parameters when
    /// `extended` is set (`-c`) and the per-socket ASCII art when
    /// `ascii_art` is set (`-g`).
    pub fn report(&self, extended: bool, ascii_art: bool) -> Report {
        let mut report = Report::new("likwid-topology");
        report.push(
            Section::new(
                "identification",
                Body::KeyValues(vec![
                    KvEntry::new("CPU name", Value::Str(self.brand.clone())),
                    KvEntry::new("CPU type", Value::Str(self.arch.display_name().to_string())),
                    KvEntry::new("CPU clock", Value::Real(self.clock_ghz))
                        .with_ascii(format!("CPU clock: {:.2} GHz", self.clock_ghz)),
                ]),
            )
            .with_rule_before(),
        );
        report.push(
            Section::new(
                "thread-topology",
                Body::KeyValues(vec![
                    KvEntry::new("Sockets", Value::Count(self.sockets as u64)),
                    KvEntry::new("Cores per socket", Value::Count(self.cores_per_socket as u64)),
                    KvEntry::new("Threads per core", Value::Count(self.threads_per_core as u64)),
                ]),
            )
            .with_boxed_heading("Hardware Thread Topology"),
        );
        let mut threads = Table::plain(vec!["hwthread", "thread", "core", "socket"])
            .with_ascii_header("HWThread\tThread\tCore\tSocket");
        for t in &self.hw_threads {
            threads.push(
                Row::new(vec![
                    Value::CpuId(t.os_id),
                    Value::Count(t.thread_id as u64),
                    Value::Count(t.core_id as u64),
                    Value::Count(t.socket_id as u64),
                ])
                .with_ascii(format!(
                    "{}\t\t{}\t{}\t{}",
                    t.os_id, t.thread_id, t.core_id, t.socket_id
                )),
            );
        }
        report.push(Section::new("hwthreads", Body::Table(threads)).with_rule_before());
        let sockets = (0..self.sockets)
            .map(|socket| {
                let ids: Vec<String> =
                    self.socket_members(socket).iter().map(|id| id.to_string()).collect();
                KvEntry::new(
                    format!("Socket {socket}"),
                    Value::Str(format!("( {} )", ids.join(" "))),
                )
            })
            .collect();
        report.push(
            Section::new("sockets", Body::KeyValues(sockets)).with_rule_before().with_rule_after(),
        );
        report.push(
            Section::new("cache-topology", Body::Text(String::new()))
                .with_boxed_heading("Cache Topology"),
        );
        for cache in self.caches.iter().filter(|c| c.kind != CacheKind::Instruction) {
            let mut entries = vec![
                KvEntry::new("Level", Value::Count(cache.level as u64)),
                KvEntry::new("Size", Value::Bytes(cache.size_bytes)).with_ascii(format!(
                    "Size: {}",
                    if cache.size_bytes >= 1024 * 1024 {
                        format!("{} MB", cache.size_bytes / (1024 * 1024))
                    } else {
                        format!("{} kB", cache.size_bytes / 1024)
                    }
                )),
                KvEntry::new("Type", Value::Str(cache.kind.display_name().to_string())),
            ];
            if extended {
                entries
                    .push(KvEntry::new("Associativity", Value::Count(cache.associativity as u64)));
                entries.push(KvEntry::new("Number of sets", Value::Count(cache.sets as u64)));
                entries.push(KvEntry::new("Cache line size", Value::Bytes(cache.line_size as u64)));
                entries.push(
                    KvEntry::new(
                        "Inclusive",
                        Value::Str(if cache.inclusive { "true" } else { "false" }.to_string()),
                    )
                    .with_ascii(if cache.inclusive {
                        "Inclusive cache"
                    } else {
                        "Non Inclusive cache"
                    }),
                );
                entries.push(
                    KvEntry::new(
                        "Shared among threads",
                        Value::Count(cache.shared_by_threads as u64),
                    )
                    .with_ascii(format!("Shared among {} threads", cache.shared_by_threads)),
                );
            }
            let groups: Vec<String> = cache
                .groups
                .iter()
                .map(|g| {
                    let ids: Vec<String> = g.iter().map(|id| id.to_string()).collect();
                    format!("( {} )", ids.join(" "))
                })
                .collect();
            entries.push(KvEntry::new("Cache groups", Value::Str(groups.join(" "))));
            report.push(
                Section::new(format!("cache.l{}", cache.level), Body::KeyValues(entries))
                    .with_rule_after(),
            );
        }
        if ascii_art {
            for socket in 0..self.sockets {
                report.push(
                    Section::new(
                        format!("art.socket{socket}"),
                        Body::Text(self.render_ascii_socket(socket)),
                    )
                    .with_heading(format!("Socket {socket}:")),
                );
            }
        }
        report
    }

    /// Render the standard text report (the `likwid-topology` output of
    /// Section II-B); `extended` adds the per-level cache parameters (`-c`).
    pub fn render_text(&self, extended: bool) -> String {
        Ascii.render(&self.report(extended, false))
    }

    /// Render the `-g` ASCII-art view of one socket.
    pub fn render_ascii_socket(&self, socket: u32) -> String {
        let members = self.socket_members(socket);
        // Core boxes: the SMT siblings of each physical core.
        let mut core_boxes: Vec<String> = Vec::new();
        let mut seen_cores: Vec<u32> = Vec::new();
        for &os_id in &members {
            let t = &self.hw_threads[os_id];
            if seen_cores.contains(&t.core_id) {
                continue;
            }
            seen_cores.push(t.core_id);
            let siblings: Vec<String> = members
                .iter()
                .filter(|&&m| self.hw_threads[m].core_id == t.core_id)
                .map(|m| m.to_string())
                .collect();
            core_boxes.push(siblings.join(" "));
        }

        // One row per data cache level: per-core caches repeat per core, the
        // shared LLC spans the socket.
        let mut cache_rows: Vec<Vec<String>> = Vec::new();
        for cache in self.caches.iter().filter(|c| c.kind != CacheKind::Instruction) {
            let label = if cache.size_bytes >= 1024 * 1024 {
                format!("{}MB", cache.size_bytes / (1024 * 1024))
            } else {
                format!("{}kB", cache.size_bytes / 1024)
            };
            let instances_in_socket =
                cache.groups.iter().filter(|g| g.iter().any(|&id| members.contains(&id))).count();
            cache_rows.push(vec![label; instances_in_socket.max(1)]);
        }
        output::socket_ascii_art(&core_boxes, &cache_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use likwid_x86_machine::MachinePreset;

    #[test]
    fn probe_matches_ground_truth_for_all_presets() {
        for &preset in MachinePreset::all() {
            let machine = SimMachine::new(preset);
            let probed = CpuTopology::probe(&machine).unwrap();
            let truth = machine.topology();
            assert_eq!(probed.sockets, truth.sockets, "{preset:?} sockets");
            assert_eq!(probed.cores_per_socket, truth.cores_per_socket, "{preset:?} cores");
            assert_eq!(probed.threads_per_core, truth.threads_per_core, "{preset:?} smt");
            assert_eq!(probed.arch, machine.arch(), "{preset:?} arch identification");
            for t in &probed.hw_threads {
                let gt = truth.hw_thread(t.os_id).unwrap();
                assert_eq!(t.socket_id, gt.socket, "{preset:?} cpu {} socket", t.os_id);
                assert_eq!(t.core_id, gt.core_id, "{preset:?} cpu {} core", t.os_id);
                assert_eq!(t.thread_id, gt.smt_id, "{preset:?} cpu {} smt", t.os_id);
            }
        }
    }

    #[test]
    fn westmere_listing_matches_the_paper() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let topo = CpuTopology::probe(&machine).unwrap();
        assert_eq!(topo.sockets, 2);
        assert_eq!(topo.cores_per_socket, 6);
        assert_eq!(topo.threads_per_core, 2);
        // HWThread 3 -> thread 0, core 8, socket 0 (the BIOS hole numbering).
        let t3 = topo.hw_threads[3];
        assert_eq!((t3.thread_id, t3.core_id, t3.socket_id), (0, 8, 0));
        // Socket membership lines.
        assert_eq!(topo.socket_members(0), vec![0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17]);
        assert_eq!(topo.socket_members(1), vec![6, 18, 7, 19, 8, 20, 9, 21, 10, 22, 11, 23]);
    }

    #[test]
    fn westmere_cache_listing_matches_the_paper() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let topo = CpuTopology::probe(&machine).unwrap();
        assert_eq!(topo.caches.len(), 3);
        let l1 = &topo.caches[0];
        assert_eq!(l1.size_bytes, 32 * 1024);
        assert_eq!(l1.associativity, 8);
        assert_eq!(l1.sets, 64);
        assert_eq!(l1.line_size, 64);
        assert!(l1.inclusive);
        assert_eq!(l1.shared_by_threads, 2);
        // L1 cache groups pair SMT siblings: ( 0 12 ) ( 1 13 ) …
        assert_eq!(l1.groups[0], vec![0, 12]);
        assert_eq!(l1.groups[1], vec![1, 13]);
        assert_eq!(l1.groups.len(), 12);

        let l3 = &topo.caches[2];
        assert_eq!(l3.size_bytes, 12 * 1024 * 1024);
        assert_eq!(l3.associativity, 16);
        assert_eq!(l3.sets, 12288);
        assert!(!l3.inclusive);
        assert_eq!(l3.groups.len(), 2, "one L3 group per socket");
        assert_eq!(l3.groups[0].len(), 12);
        // The socket-0 L3 group contains exactly socket 0's threads.
        let mut g = l3.groups[0].clone();
        g.sort_unstable();
        assert_eq!(g, vec![0, 1, 2, 3, 4, 5, 12, 13, 14, 15, 16, 17]);
    }

    #[test]
    fn text_report_contains_the_key_lines() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let topo = CpuTopology::probe(&machine).unwrap();
        let text = topo.render_text(true);
        assert!(text.contains("Sockets: 2"));
        assert!(text.contains("Cores per socket: 6"));
        assert!(text.contains("Threads per core: 2"));
        assert!(text.contains("Socket 0: ( 0 12 1 13 2 14 3 15 4 16 5 17 )"));
        assert!(text.contains("Size: 12 MB"));
        assert!(text.contains("Non Inclusive cache"));
        assert!(text.contains("Shared among 12 threads"));
        assert!(text.contains("CPU clock: 2.93 GHz"));
    }

    #[test]
    fn ascii_art_shows_cores_and_the_shared_l3() {
        let machine = SimMachine::new(MachinePreset::WestmereEp2S);
        let topo = CpuTopology::probe(&machine).unwrap();
        let art = topo.render_ascii_socket(0);
        assert!(art.contains("0 12"));
        assert!(art.contains("5 17"));
        assert!(art.contains("32kB"));
        assert!(art.contains("256kB"));
        assert!(art.contains("12MB"));
    }

    #[test]
    fn core2_uses_the_legacy_enumeration_path() {
        let machine = SimMachine::new(MachinePreset::Core2Quad);
        let topo = CpuTopology::probe(&machine).unwrap();
        assert_eq!(topo.sockets, 1);
        assert_eq!(topo.cores_per_socket, 4);
        assert_eq!(topo.threads_per_core, 1);
        // The Core 2 Quad's shared L2 groups pair cores 0/1 and 2/3.
        let l2 = topo.caches.iter().find(|c| c.level == 2).unwrap();
        assert_eq!(l2.groups.len(), 2);
        assert_eq!(l2.groups[0], vec![0, 1]);
        assert_eq!(l2.groups[1], vec![2, 3]);
    }

    #[test]
    fn istanbul_decodes_amd_cache_leaves() {
        let machine = SimMachine::new(MachinePreset::IstanbulH2S);
        let topo = CpuTopology::probe(&machine).unwrap();
        assert_eq!(topo.vendor, Vendor::Amd);
        assert_eq!(topo.sockets, 2);
        assert_eq!(topo.cores_per_socket, 6);
        let l3 = topo.caches.iter().find(|c| c.level == 3).unwrap();
        assert_eq!(l3.size_bytes, 6 * 1024 * 1024);
        assert_eq!(l3.groups.len(), 2);
        assert_eq!(l3.groups[0].len(), 6);
        let l1 = topo.caches.iter().find(|c| c.level == 1).unwrap();
        assert_eq!(l1.size_bytes, 64 * 1024);
    }

    #[test]
    fn pentium_m_uses_the_descriptor_table() {
        let machine = SimMachine::new(MachinePreset::PentiumM);
        let topo = CpuTopology::probe(&machine).unwrap();
        assert!(topo.caches.iter().any(|c| c.level == 1 && c.kind == CacheKind::Data));
        assert!(topo.caches.iter().any(|c| c.level == 2));
    }
}

//! Process-wide self-observability: spans, counters and trace export.
//!
//! The suite has grown into a concurrent system — a ticket-arbitrated
//! measurement daemon, a work-stealing sweep scheduler, an epoch-classified
//! sharded cache simulator — and this module is the window into it. Like
//! the external-trigger live-monitoring path the tools themselves model,
//! the recorder must never perturb what it observes: every measurement
//! `Report` is byte-identical whether tracing is on or off, which the
//! observation-neutrality suite pins.
//!
//! # Recorder model
//!
//! A single process-wide recorder, off by default. When **disabled** (the
//! steady state), every instrumentation point is one relaxed atomic load
//! and an early return: no heap allocation, no lock, no time query. Span
//! names that need formatting are passed as closures so the `format!` only
//! runs when the recorder is live.
//!
//! When **enabled** (via [`start`] or the shared `--trace <file>` switch),
//! events buffer in a per-thread `Vec` (no cross-thread contention on the
//! hot path) and drain into a global sink when the thread exits or when
//! [`stop`] collects the trace. Real-time spans are stamped from one
//! process-wide monotonic epoch; subsystems with deterministic virtual
//! clocks (the timeline session) emit events on reserved *virtual tracks*
//! with their simulated timestamps, so those parts of a trace are
//! bit-reproducible run to run.
//!
//! # Export formats
//!
//! * [`chrome_json`] — Chrome trace-event JSON (`ph: B/E/X/C`), loadable in
//!   Perfetto / `chrome://tracing`. Each subsystem is a process
//!   (`pid` = crate), each recording thread a track (`tid` = worker);
//!   counters render as counter tracks.
//! * [`folded`] — folded-stacks text (`a;b;c <self-nanoseconds>`) for
//!   `flamegraph.pl` and friends.
//! * [`summary_report`] — span totals and counter sums as a typed
//!   [`Report`], so trace rollups ride the ASCII/CSV/JSON renderers.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::args::{ArgSpec, ParsedArgs};
use crate::error::{LikwidError, Result};
use crate::report::{Body, KvEntry, OutputFormat, Report, Row, Section, Table, Value};

/// Subsystem categories; each maps to one trace "process".
pub mod cat {
    /// Core tools (perfctr sessions, timeline intervals).
    pub const CORE: &str = "core";
    /// The fleet sweep scheduler.
    pub const FLEET: &str = "fleet";
    /// The measurement daemon broker.
    pub const DAEMON: &str = "daemon";
    /// The sharded cache simulator.
    pub const CACHESIM: &str = "cachesim";
    /// Workload experiments.
    pub const WORKLOADS: &str = "workloads";
    /// The likwid-bench front end.
    pub const BENCH: &str = "bench";
}

/// `(category, pid, process name)` — the fixed crate→process mapping.
const PROCESSES: [(&str, u64, &str); 6] = [
    (cat::CORE, 1, "likwid-core"),
    (cat::FLEET, 2, "likwid-fleet"),
    (cat::DAEMON, 3, "likwid-daemon"),
    (cat::CACHESIM, 4, "likwid-cache-sim"),
    (cat::WORKLOADS, 5, "likwid-workloads"),
    (cat::BENCH, 6, "likwid-bench"),
];

fn process_of(category: &str) -> (u64, &'static str) {
    PROCESSES
        .iter()
        .find(|(c, _, _)| *c == category)
        .map(|&(_, pid, name)| (pid, name))
        .unwrap_or((0, "likwid"))
}

/// Virtual-clock events land on `VIRTUAL_TID_BASE + track` so they never
/// interleave with (wall-clocked) recording threads.
pub const VIRTUAL_TID_BASE: u64 = 10_000;

/// What one event is.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Span open (`ph: B`).
    Begin,
    /// Span close (`ph: E`).
    End,
    /// A complete span with explicit duration (`ph: X`).
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A named monotonic counter increment (`ph: C`; the writer emits the
    /// running total).
    Counter {
        /// The increment (deltas accumulate in timestamp order).
        delta: i64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Subsystem category (see [`cat`]); selects the trace process.
    pub cat: &'static str,
    /// Event / span / counter name.
    pub name: String,
    /// Timestamp in nanoseconds (process epoch, or virtual clock).
    pub ts_ns: u64,
    /// Track: 0 = "the recording thread" (resolved at buffer time).
    pub tid: u64,
    /// Event kind.
    pub phase: Phase,
    /// Key/value annotations (attached to `B`/`X` events).
    pub args: Vec<(&'static str, String)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

struct ThreadBuf {
    tid: u64,
    events: Vec<TraceEvent>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.append(&mut self.events);
            }
        }
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

/// Whether the recorder is live. One relaxed load — the entire cost of
/// every instrumentation point while tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide trace epoch.
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn record(mut event: TraceEvent) {
    let _ = BUF.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        if event.tid == 0 {
            event.tid = buf.tid;
        }
        buf.events.push(event);
    });
}

/// Start recording. Clears any previously buffered events in the global
/// sink, so a fresh [`stop`] returns only this recording.
pub fn start() {
    if let Ok(mut sink) = SINK.lock() {
        sink.clear();
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Hand the calling thread's buffered events to the global sink now.
///
/// [`stop`] collects the stopping thread's buffer and every exited
/// thread's; a long-lived worker (a persistent pool thread) that records
/// events must flush between jobs, or its events only surface when the
/// thread exits. No-op when the buffer is empty.
pub fn flush_thread() {
    let _ = BUF.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        if !buf.events.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.append(&mut buf.events);
            }
        }
    });
}

/// Stop recording and collect every buffered event, sorted by timestamp
/// (stable, so same-thread ordering — and `B`/`E` nesting — is preserved).
pub fn stop() -> Vec<TraceEvent> {
    ENABLED.store(false, Ordering::Relaxed);
    let _ = BUF.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        if !buf.events.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                let events = &mut buf.events;
                sink.append(events);
            }
        }
    });
    let mut events = match SINK.lock() {
        Ok(mut sink) => std::mem::take(&mut *sink),
        Err(_) => Vec::new(),
    };
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// An RAII span guard: records `B` on creation (when enabled) and the
/// matching `E` on drop. Inert — and allocation-free — when tracing is off.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    cat: &'static str,
    live: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            record(TraceEvent {
                cat: self.cat,
                name: String::new(),
                ts_ns: now_ns(),
                tid: 0,
                phase: Phase::End,
                args: Vec::new(),
            });
        }
    }
}

/// Open a span with a static name.
#[inline]
pub fn span(category: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span { cat: category, live: false };
    }
    span_begin(category, name.to_string(), Vec::new())
}

/// Open a span whose name is formatted only when tracing is enabled.
#[inline]
pub fn span_with(category: &'static str, name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { cat: category, live: false };
    }
    span_begin(category, name(), Vec::new())
}

/// Open a span with lazily-built name and annotations.
#[inline]
pub fn span_args(
    category: &'static str,
    name: impl FnOnce() -> String,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> Span {
    if !enabled() {
        return Span { cat: category, live: false };
    }
    span_begin(category, name(), args())
}

fn span_begin(category: &'static str, name: String, args: Vec<(&'static str, String)>) -> Span {
    record(TraceEvent { cat: category, name, ts_ns: now_ns(), tid: 0, phase: Phase::Begin, args });
    Span { cat: category, live: true }
}

/// Record an instantaneous event (a zero-duration `X` span).
#[inline]
pub fn instant(category: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        cat: category,
        name: name.to_string(),
        ts_ns: now_ns(),
        tid: 0,
        phase: Phase::Complete { dur_ns: 0 },
        args: Vec::new(),
    });
}

/// Record an instantaneous event with lazily-built annotations.
#[inline]
pub fn instant_args(
    category: &'static str,
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        cat: category,
        name: name.to_string(),
        ts_ns: now_ns(),
        tid: 0,
        phase: Phase::Complete { dur_ns: 0 },
        args: args(),
    });
}

/// Record a complete span from an earlier [`now`] stamp to now, with
/// lazily-built name and annotations.
#[inline]
pub fn complete_since(
    category: &'static str,
    start_ns: u64,
    name: impl FnOnce() -> String,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    let end = now_ns();
    record(TraceEvent {
        cat: category,
        name: name(),
        ts_ns: start_ns,
        tid: 0,
        phase: Phase::Complete { dur_ns: end.saturating_sub(start_ns) },
        args: args(),
    });
}

/// A wall-clock stamp for a later [`complete_since`]; 0 when disabled.
#[inline]
pub fn now() -> u64 {
    if !enabled() {
        return 0;
    }
    now_ns()
}

/// Record a complete span with explicit (virtual-clock) timestamps on a
/// reserved virtual track. Deterministic inputs give deterministic events.
#[inline]
pub fn complete_virtual(
    category: &'static str,
    track: u64,
    start_ns: u64,
    dur_ns: u64,
    name: impl FnOnce() -> String,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        cat: category,
        name: name(),
        ts_ns: start_ns,
        tid: VIRTUAL_TID_BASE + track,
        phase: Phase::Complete { dur_ns },
        args: args(),
    });
}

/// Bump a named monotonic counter.
#[inline]
pub fn count(category: &'static str, name: &'static str, delta: i64) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        cat: category,
        name: name.to_string(),
        ts_ns: now_ns(),
        tid: 0,
        phase: Phase::Counter { delta },
        args: Vec::new(),
    });
}

/// Bump a counter whose name is formatted only when tracing is enabled.
#[inline]
pub fn count_with(category: &'static str, name: impl FnOnce() -> String, delta: i64) {
    if !enabled() {
        return;
    }
    record(TraceEvent {
        cat: category,
        name: name(),
        ts_ns: now_ns(),
        tid: 0,
        phase: Phase::Counter { delta },
        args: Vec::new(),
    });
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → the microsecond `ts`/`dur` fields of the trace format
/// (fractional when needed; f64 `Display` is shortest-round-trip).
fn micros(ns: u64) -> String {
    format!("{}", ns as f64 / 1000.0)
}

/// Render events as Chrome trace-event JSON (Perfetto-loadable).
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(events.len() + 16);
    // Metadata: name each used process and thread track.
    let mut pids: Vec<u64> = Vec::new();
    let mut tracks: Vec<(u64, u64)> = Vec::new();
    for e in events {
        let (pid, name) = process_of(e.cat);
        if !pids.contains(&pid) {
            pids.push(pid);
            lines.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ));
        }
        if !tracks.contains(&(pid, e.tid)) {
            tracks.push((pid, e.tid));
            let track = if e.tid >= VIRTUAL_TID_BASE {
                format!("virtual-{}", e.tid - VIRTUAL_TID_BASE)
            } else {
                format!("thread-{}", e.tid)
            };
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                 \"args\":{{\"name\":\"{track}\"}}}}",
                e.tid
            ));
        }
    }
    let mut totals: BTreeMap<(u64, String), i64> = BTreeMap::new();
    for e in events {
        let (pid, _) = process_of(e.cat);
        let common = format!(
            "\"cat\":\"{}\",\"pid\":{pid},\"tid\":{},\"ts\":{}",
            escape_json(e.cat),
            e.tid,
            micros(e.ts_ns)
        );
        let args_json = |args: &[(&'static str, String)]| {
            let body: Vec<String> = args
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
                .collect();
            body.join(",")
        };
        match &e.phase {
            Phase::Begin => {
                lines.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"B\",{common},\"args\":{{{}}}}}",
                    escape_json(&e.name),
                    args_json(&e.args)
                ));
            }
            Phase::End => {
                lines.push(format!("{{\"ph\":\"E\",{common}}}"));
            }
            Phase::Complete { dur_ns } => {
                lines.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",{common},\"dur\":{},\"args\":{{{}}}}}",
                    escape_json(&e.name),
                    micros(*dur_ns),
                    args_json(&e.args)
                ));
            }
            Phase::Counter { delta } => {
                let total = totals.entry((pid, e.name.clone())).or_insert(0);
                *total += delta;
                lines.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",{common},\"args\":{{\"value\":{}}}}}",
                    escape_json(&e.name),
                    *total
                ));
            }
        }
    }
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n", lines.join(","))
}

/// Render events as folded stacks (`proc;outer;inner <self-ns>` lines),
/// ready for `flamegraph.pl`. Self time is span duration minus enclosed
/// child time, walked per track; counters are skipped.
pub fn folded(events: &[TraceEvent]) -> String {
    let mut tracks: BTreeMap<(u64, u64), Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        let (pid, _) = process_of(e.cat);
        tracks.entry((pid, e.tid)).or_default().push(e);
    }
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for ((pid, _tid), track) in &tracks {
        let name = PROCESSES
            .iter()
            .find(|(_, p, _)| p == pid)
            .map(|&(_, _, name)| name)
            .unwrap_or("likwid");
        // (name, start, child time) per open frame.
        let mut stack: Vec<(String, u64, u64)> = Vec::new();
        let path_of = |stack: &[(String, u64, u64)], leaf: &str| {
            let mut path = String::from(name);
            for (frame, _, _) in stack {
                path.push(';');
                path.push_str(&frame.replace(';', ":"));
            }
            path.push(';');
            path.push_str(&leaf.replace(';', ":"));
            path
        };
        let last_ts = track.last().map(|e| e.ts_ns).unwrap_or(0);
        for e in track {
            match &e.phase {
                Phase::Begin => stack.push((e.name.clone(), e.ts_ns, 0)),
                Phase::End => {
                    if let Some((frame, start, child)) = stack.pop() {
                        let dur = e.ts_ns.saturating_sub(start);
                        let path = path_of(&stack, &frame);
                        *agg.entry(path).or_default() += dur.saturating_sub(child);
                        if let Some(parent) = stack.last_mut() {
                            parent.2 += dur;
                        }
                    }
                }
                Phase::Complete { dur_ns } => {
                    let path = path_of(&stack, &e.name);
                    *agg.entry(path).or_default() += dur_ns;
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += dur_ns;
                    }
                }
                Phase::Counter { .. } => {}
            }
        }
        // Close frames left open (a span alive at stop time) at the last
        // timestamp the track saw.
        while let Some((frame, start, child)) = stack.pop() {
            let dur = last_ts.saturating_sub(start);
            let path = path_of(&stack, &frame);
            *agg.entry(path).or_default() += dur.saturating_sub(child);
            if let Some(parent) = stack.last_mut() {
                parent.2 += dur;
            }
        }
    }
    let mut out = String::new();
    for (path, self_ns) in &agg {
        out.push_str(&format!("{path} {self_ns}\n"));
    }
    out
}

/// Per-span and per-counter rollups as a typed [`Report`] (section ids
/// `trace`, `trace.spans`, `trace.counters`), so trace summaries ride the
/// ASCII/CSV/JSON renderers like every other document of the suite.
pub fn summary_report(events: &[TraceEvent]) -> Report {
    // Pair B/E per track to get span durations; X events carry their own.
    let mut open: BTreeMap<(u64, u64), Vec<(String, String, u64)>> = BTreeMap::new();
    let mut spans: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut counters: BTreeMap<String, i64> = BTreeMap::new();
    let mut span_events = 0u64;
    let mut counter_events = 0u64;
    for e in events {
        let (pid, _) = process_of(e.cat);
        match &e.phase {
            Phase::Begin => {
                span_events += 1;
                open.entry((pid, e.tid)).or_default().push((
                    e.cat.to_string(),
                    e.name.clone(),
                    e.ts_ns,
                ));
            }
            Phase::End => {
                if let Some((cat, name, start)) = open.entry((pid, e.tid)).or_default().pop() {
                    let entry = spans.entry(format!("{cat}.{name}")).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += e.ts_ns.saturating_sub(start);
                }
            }
            Phase::Complete { dur_ns } => {
                span_events += 1;
                let entry = spans.entry(format!("{}.{}", e.cat, e.name)).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur_ns;
            }
            Phase::Counter { delta } => {
                counter_events += 1;
                *counters.entry(format!("{}.{}", e.cat, e.name)).or_insert(0) += delta;
            }
        }
    }
    let mut report = Report::new("likwid-trace");
    report.push(Section::new(
        "trace",
        Body::KeyValues(vec![
            KvEntry::new("events", Value::Count(events.len() as u64)),
            KvEntry::new("span events", Value::Count(span_events)),
            KvEntry::new("counter events", Value::Count(counter_events)),
        ]),
    ));
    if !spans.is_empty() {
        let mut table = Table::plain(vec!["span", "count", "total us"]);
        for (name, (count, total_ns)) in &spans {
            table.push(Row::new(vec![
                Value::Str(name.clone()),
                Value::Count(*count),
                Value::Real(*total_ns as f64 / 1000.0),
            ]));
        }
        report.push(Section::new("trace.spans", Body::Table(table)).with_heading("Trace spans"));
    }
    if !counters.is_empty() {
        let mut table = Table::plain(vec!["counter", "total"]);
        for (name, total) in &counters {
            table.push(Row::new(vec![
                Value::Str(name.clone()),
                Value::Count((*total).max(0) as u64),
            ]));
        }
        report.push(
            Section::new("trace.counters", Body::Table(table)).with_heading("Trace counters"),
        );
    }
    report
}

/// The trace output format, selected by file extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (`.json`).
    Chrome,
    /// Folded flamegraph stacks (`.folded`).
    Folded,
}

/// Add the shared `--trace <file>` switch to a binary's [`ArgSpec`].
pub fn trace_flag(spec: ArgSpec) -> ArgSpec {
    spec.flag(
        "--trace",
        None,
        Some("file"),
        "record a self-observability trace (.json: Chrome trace events, .folded: flamegraph stacks)",
    )
}

/// A live CLI trace recording; [`TraceSink::finish`] writes the file.
#[derive(Debug)]
pub struct TraceSink {
    path: String,
    format: TraceFormat,
}

/// Start a recording when `--trace <file>` was given; the extension picks
/// the format. Measurement output is unaffected either way — the trace
/// goes to its own file and the rollup to stderr.
pub fn begin_cli(parsed: &ParsedArgs) -> Result<Option<TraceSink>> {
    let Some(path) = parsed.value("--trace") else {
        return Ok(None);
    };
    let format = if path.ends_with(".json") {
        TraceFormat::Chrome
    } else if path.ends_with(".folded") {
        TraceFormat::Folded
    } else {
        return Err(LikwidError::Usage(format!(
            "--trace: cannot infer a trace format from '{path}' (expected .json or .folded)"
        )));
    };
    start();
    Ok(Some(TraceSink { path: path.to_string(), format }))
}

impl TraceSink {
    /// Stop recording, write the trace file and print the span/counter
    /// rollup to stderr (never stdout: reports stay byte-identical).
    pub fn finish(self) -> Result<()> {
        let events = stop();
        let text = match self.format {
            TraceFormat::Chrome => chrome_json(&events),
            TraceFormat::Folded => folded(&events),
        };
        std::fs::write(&self.path, text)
            .map_err(|e| LikwidError::Output(format!("cannot write trace '{}': {e}", self.path)))?;
        eprint!("{}", OutputFormat::Ascii.render(&summary_report(&events)));
        eprintln!("likwid-trace: wrote {}", self.path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that toggle it serialize here.
    static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn event(category: &'static str, name: &str, ts_ns: u64, tid: u64, phase: Phase) -> TraceEvent {
        TraceEvent { cat: category, name: name.to_string(), ts_ns, tid, phase, args: Vec::new() }
    }

    /// A hand-built two-track trace: a nested pair of spans on one thread,
    /// a complete span plus counters on another.
    fn sample_events() -> Vec<TraceEvent> {
        vec![
            event(cat::FLEET, "sweep", 1_000, 1, Phase::Begin),
            event(cat::FLEET, "point", 2_000, 1, Phase::Begin),
            event(cat::FLEET, "", 5_000, 1, Phase::End),
            event(cat::FLEET, "", 9_000, 1, Phase::End),
            event(cat::CACHESIM, "epoch.parallel", 3_000, 2, Phase::Complete { dur_ns: 4_000 }),
            event(cat::FLEET, "memo_hit", 4_000, 1, Phase::Counter { delta: 1 }),
            event(cat::FLEET, "memo_hit", 6_000, 1, Phase::Counter { delta: 2 }),
        ]
    }

    #[test]
    fn chrome_json_has_balanced_phases_and_running_counter_totals() {
        let text = chrome_json(&sample_events());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert_eq!(text.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(text.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"C\"").count(), 2);
        // Counter events carry the running total, not the delta.
        assert!(text.contains("\"args\":{\"value\":1}"));
        assert!(text.contains("\"args\":{\"value\":3}"));
        // Both subsystems appear as named processes.
        assert!(text.contains("\"name\":\"likwid-fleet\""));
        assert!(text.contains("\"name\":\"likwid-cache-sim\""));
        // Timestamps are microseconds.
        assert!(text.contains("\"ts\":1"), "1000 ns = 1 us: {text}");
        assert!(text.contains("\"dur\":4"), "4000 ns = 4 us");
    }

    #[test]
    fn folded_attributes_self_time_minus_children() {
        let text = folded(&sample_events());
        // sweep: 8 us total minus the 3 us "point" child = 5 us self.
        assert!(text.contains("likwid-fleet;sweep 5000\n"), "{text}");
        assert!(text.contains("likwid-fleet;sweep;point 3000\n"), "{text}");
        assert!(text.contains("likwid-cache-sim;epoch.parallel 4000\n"), "{text}");
    }

    #[test]
    fn folded_closes_spans_left_open_at_the_last_timestamp() {
        let events = vec![
            event(cat::DAEMON, "session", 1_000, 1, Phase::Begin),
            event(cat::DAEMON, "tick", 2_000, 1, Phase::Complete { dur_ns: 500 }),
        ];
        let text = folded(&events);
        assert!(text.contains("likwid-daemon;session 500\n"), "{text}");
        assert!(text.contains("likwid-daemon;session;tick 500\n"), "{text}");
    }

    #[test]
    fn summary_report_rolls_up_spans_and_counters_and_round_trips() {
        let report = summary_report(&sample_events());
        assert_eq!(report.value("trace", "events").and_then(Value::as_count), Some(7));
        assert_eq!(report.value("trace", "span events").and_then(Value::as_count), Some(3));
        let spans = report.table("trace.spans").expect("span table");
        assert_eq!(spans.cell("fleet.sweep", "count").and_then(Value::as_count), Some(1));
        assert_eq!(spans.cell("fleet.point", "count").and_then(Value::as_count), Some(1));
        assert_eq!(
            spans.cell("fleet.point", "total us").and_then(Value::as_real),
            Some(3.0),
            "B at 2000, E at 5000"
        );
        let counters = report.table("trace.counters").expect("counter table");
        assert_eq!(counters.cell("fleet.memo_hit", "total").and_then(Value::as_count), Some(3));
        // The summary rides every renderer and survives the JSON round trip.
        for format in [OutputFormat::Ascii, OutputFormat::Csv, OutputFormat::Json] {
            assert!(!format.render(&report).is_empty());
        }
        let back = Report::from_json(&OutputFormat::Json.render(&report)).expect("round trip");
        assert_eq!(back, report);
    }

    #[test]
    fn recorder_is_inert_when_disabled() {
        let _serial = TRACE_TEST_LOCK.lock().unwrap();
        assert!(!enabled());
        let span = span(cat::CORE, "never-recorded");
        count(cat::CORE, "never-counted", 1);
        instant(cat::CORE, "never-instant");
        complete_virtual(cat::CORE, 0, 0, 1, || unreachable!("name must not format"), Vec::new);
        let _ = span_with(cat::CORE, || unreachable!("name must not format"));
        drop(span);
        assert_eq!(now(), 0);
    }

    #[test]
    fn enabled_recorder_buffers_and_drains_across_threads() {
        let _serial = TRACE_TEST_LOCK.lock().unwrap();
        start();
        {
            let _outer = span_with(cat::CORE, || "utest.outer".to_string());
            count(cat::CORE, "utest.counter", 2);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _inner = span_with(cat::CORE, || "utest.inner".to_string());
                    count(cat::CORE, "utest.counter", 3);
                });
            });
        }
        let events = stop();
        // Other tests in this binary may trace concurrently; look only at
        // our own uniquely-named events.
        let ours: Vec<&TraceEvent> =
            events.iter().filter(|e| e.name.starts_with("utest.")).collect();
        assert_eq!(ours.iter().filter(|e| matches!(e.phase, Phase::Begin)).count(), 2);
        let counted: i64 = ours
            .iter()
            .filter_map(|e| match e.phase {
                Phase::Counter { delta } => Some(delta),
                _ => None,
            })
            .sum();
        assert_eq!(counted, 5, "both threads' counters drained");
        // Timestamps are sorted and the spawned thread got its own track.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let tids: std::collections::BTreeSet<u64> = ours.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "two recording threads, two tracks");
        assert!(!enabled(), "stop() disables the recorder");
    }

    #[test]
    fn cli_helpers_validate_the_extension_and_write_the_file() {
        let _serial = TRACE_TEST_LOCK.lock().unwrap();
        let spec = trace_flag(ArgSpec::new("t", "t"));
        let parsed = spec.parse(&["--trace".to_string(), "out.xml".to_string()]).unwrap();
        assert!(matches!(begin_cli(&parsed).unwrap_err(), LikwidError::Usage(_)));

        let none = spec.parse(&[]).unwrap();
        assert!(begin_cli(&none).unwrap().is_none());
        assert!(!enabled(), "no --trace, no recording");

        let dir = std::env::temp_dir().join("likwid-trace-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.json");
        let parsed =
            spec.parse(&["--trace".to_string(), path.to_string_lossy().to_string()]).unwrap();
        let sink = begin_cli(&parsed).unwrap().expect("sink");
        assert!(enabled());
        drop(span(cat::CORE, "utest.cli"));
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("utest.cli"));
        assert!(!enabled());
        std::fs::remove_file(&path).ok();
    }
}

//! The `likwid-perfctrd` binary: measurement daemon and its command-line
//! client.
//!
//! Serve mode (`--socket`): bind a Unix socket, simulate one machine, and
//! accept concurrent measurement sessions until a client sends `shutdown`.
//!
//! Client mode (`--connect`): open one session and render the live stream —
//! `-O ascii` as a scrolling fixed-width table, `-O csv` as comma-separated
//! rows (both followed by the post-mortem aggregate report), `-O json` as
//! the raw NDJSON frames (one JSON document per line, ready for
//! `python3 -m json.tool --json-lines`).

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::AtomicBool;

use likwid::report::stream::{CsvStream, LiveTable, StreamRender};
use likwid::report::OutputFormat;
use likwid::{ArgSpec, LikwidError, Result};
use likwid_daemon::client::{stream_header, stream_row};
use likwid_daemon::protocol::{Frame, OpenRequest};
use likwid_daemon::SocketClient;
use likwid_x86_machine::{FaultPlan, SimMachine};

fn spec() -> ArgSpec {
    let spec = ArgSpec::new(
        "likwid-perfctrd",
        "measurement daemon: concurrent live-streaming counter sessions over a Unix socket",
    )
    .machine_flag()
    .flag("--socket", None, Some("path"), "serve the daemon protocol on this Unix socket")
    .flag("--connect", None, Some("path"), "connect to a serving daemon instead")
    .flag("-c", None, Some("cpus"), "client: hardware threads to measure (pin list)")
    .flag("-g", None, Some("group|EVENT:CTR,..."), "client: event group(s) or custom event set")
    .flag("-t", None, Some("interval"), "client: sampling interval (e.g. 1ms)")
    .flag("-S", None, Some("duration"), "client: measurement duration (e.g. 10ms)")
    .flag("--status", None, None, "client: print the daemon's observability snapshot and exit")
    .flag(
        "--inject",
        None,
        Some("spec"),
        "serve: inject faults into the MSR substrate (e.g. seed=7,read=0.2x3)",
    );
    likwid::trace::trace_flag(spec)
}

fn run(args: &[String]) -> Result<String> {
    let spec = spec();
    let parsed = spec.parse(args)?;
    if parsed.help_requested() {
        return Ok(spec.help_text());
    }
    let trace_sink = likwid::trace::begin_cli(&parsed)?;
    let text = match (parsed.value("--socket"), parsed.value("--connect")) {
        (Some(path), None) => {
            let preset = likwid::cli::parse_machine(&parsed)?;
            let machine = SimMachine::new(preset);
            if let Some(plan) = parsed.value("--inject") {
                let plan = FaultPlan::parse(plan)
                    .map_err(|e| LikwidError::Usage(format!("--inject: {e}")))?;
                machine.inject_faults(plan);
            }
            eprintln!("likwid-perfctrd: serving {} on {}", preset.id(), path);
            let shutdown = AtomicBool::new(false);
            likwid_daemon::server::serve(&machine, Path::new(path), &shutdown)?;
            Ok(String::new())
        }
        (None, Some(path)) => run_client(&parsed, Path::new(path)),
        _ => Err(LikwidError::Usage(
            "exactly one of --socket <path> (serve) or --connect <path> (client) is required"
                .into(),
        )),
    }?;
    if let Some(sink) = trace_sink {
        sink.finish()?;
    }
    Ok(text)
}

fn run_client(parsed: &likwid::ParsedArgs, path: &Path) -> Result<String> {
    if parsed.has("--status") {
        let (mut client, _hello) = SocketClient::connect(path)?;
        let status = client.status()?;
        return Ok(parsed.output()?.format.render(&status.report()));
    }
    let cpus = parsed.value("-c").unwrap_or("0").to_string();
    let group = parsed
        .value("-g")
        .ok_or_else(|| LikwidError::Usage("client mode requires -g <group>".into()))?
        .to_string();
    // Validation happens in the daemon (it answers with a typed error
    // frame); the client only needs the raw strings.
    let interval = parsed.value("-t").unwrap_or("1ms").to_string();
    let duration = parsed.value("-S").unwrap_or("10ms").to_string();
    let format = parsed.output()?.format;

    let request = OpenRequest { machine: None, cpus, group, interval, duration };
    let (mut client, _hello) = SocketClient::connect(path)?;

    let stdout = std::io::stdout();
    match format {
        OutputFormat::Json => {
            // Raw NDJSON passthrough: re-encode each frame on its own line
            // as it arrives (one JSON document per line).
            client.run_session(&request, |frame| {
                let mut out = stdout.lock();
                let _ = out.write_all(frame.to_line().as_bytes());
            })?;
            Ok(String::new())
        }
        OutputFormat::Ascii | OutputFormat::Csv => {
            let mut renderer: Box<dyn StreamRender> = match format {
                OutputFormat::Ascii => Box::new(LiveTable::new()),
                _ => Box::new(CsvStream::new()),
            };
            // Render rows live as the frames arrive; the aggregate report
            // follows once the session is done.
            let mut live = None;
            let accumulator = client.run_session(&request, |frame| {
                let mut out = stdout.lock();
                match frame {
                    Frame::Opened(opened) => {
                        let header = stream_header(opened);
                        let _ = out.write_all(renderer.begin(&header).as_bytes());
                        live = Some((opened.clone(), header));
                    }
                    Frame::Interval(interval) => {
                        if let Some((opened, header)) = &live {
                            let row = stream_row(opened, interval);
                            let _ = out.write_all(renderer.row(header, &row).as_bytes());
                        }
                    }
                    _ => {}
                }
            })?;
            let header = match live {
                Some((_, header)) => header,
                None => stream_header(accumulator.opened()),
            };
            let report = accumulator.result()?.report();
            Ok(renderer.end(&header, Some(&report)))
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(text) => {
            print!("{text}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("likwid-perfctrd: {e}");
            std::process::exit(1);
        }
    }
}

//! The session broker: admission, arbitration and multiplexing of many
//! concurrent measurement sessions over one simulated machine.
//!
//! # Arbitration model
//!
//! Counter registers are per-cpu, so two sessions conflict exactly when
//! their cpu sets intersect (plus the per-socket uncore units, handled
//! separately). The broker's invariant is simple: **between any two
//! intervals, no session's counters are live**. Every session suspends its
//! counters (folding the live counts into its accumulator and releasing the
//! registers zeroed) at the end of each interval, and resumes (reprogram +
//! zero + start) at the start of the next. Any inter-interval machine state
//! is therefore safe for any session to reprogram; a session that never
//! shares a cpu measures bit-identically to a standalone
//! [`TimelineSession`] run.
//!
//! *Core turn-taking* uses monotonic tickets: each admitted session holds a
//! ticket, renewed (strictly increasing) after every interval. A session
//! may run an interval when no other admitted, unfinished session sharing
//! one of its cpus holds a smaller ticket. The globally smallest ticket is
//! always runnable, so the schedule is deadlock-free; renewal makes it
//! round-robin fair; sessions with disjoint cpu sets never wait for each
//! other.
//!
//! *Uncore units* are per-socket and stay programmed for a session's whole
//! lifetime, so sessions whose groups touch uncore counters acquire a
//! per-socket lock at admission and hold it until they finish or abort.
//! Waiters queue in arrival order per socket; a waiter is granted when it
//! heads every queue it is in and no holder remains on any needed socket
//! (all-or-wait, so multi-socket sessions cannot interleave into a
//! deadlock). While waiting for uncore locks a session holds no ticket and
//! blocks nobody's turn. A dropped client releases its locks and its queue
//! positions ([`SessionHandle`] aborts on drop).
//!
//! # Coverage extrapolation
//!
//! A session time-sliced against others sharing its cpus measures only part
//! of its wall (virtual) lifetime. The broker charges every interval's
//! length to the *other* running sessions that conflict with it; at finish,
//! a session's aggregate is extrapolated by `(measured + foreign) /
//! measured` — exactly `1.0` for a session that was never sliced against,
//! preserving bit-identical solo results.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex};

use likwid::perfctr::timeline::MAX_INTERVALS;
use likwid::perfctr::{
    parse_interval, parse_measurement_spec, MeasurementSpec, PerfCtrConfig, TimelineResult,
    TimelineSession,
};
use likwid::trace;
use likwid::{LikwidError, Result};
use likwid_affinity::parse_pin_list;
use likwid_perf_events::{EventEngine, EventSample};
use likwid_x86_machine::{MachinePreset, SimMachine};

use crate::protocol::{
    DoneFrame, GroupSchema, IntervalFrame, OpenRequest, OpenedFrame, ResultsFrame,
};

/// Where a session's per-interval activity comes from.
pub enum ActivitySource {
    /// The synthetic demo application of `likwid-perfctr -t` (alternating
    /// memory- and compute-bound phases on the virtual clock).
    Demo,
    /// Pre-sliced samples, one per interval, in order — the
    /// `Experiment::via_daemon` path replays a traced workload.
    Replay(VecDeque<EventSample>),
}

/// A validated, admitted session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Hardware threads to measure.
    pub cpus: Vec<usize>,
    /// What to measure.
    pub spec: MeasurementSpec,
    /// Sampling interval in seconds.
    pub interval_s: f64,
    /// Measurement duration in seconds.
    pub duration_s: f64,
}

/// Lifecycle phase of an admitted session inside the broker.
enum Phase {
    /// Queued for per-socket uncore locks; holds no ticket, blocks no turn.
    WaitingUncore,
    /// Holding a turn ticket.
    Running(u64),
    /// Measurement complete, result not yet collected: holds no ticket,
    /// blocks no turn, accrues no foreign wall time. Without this state a
    /// finished-but-uncollected session's stale (small) ticket would block
    /// every conflicting session forever.
    Parked,
}

struct Slot {
    cpus: Vec<usize>,
    /// Sockets whose uncore locks the session holds (or waits for).
    sockets: Vec<u32>,
    phase: Phase,
    /// Foreign virtual time charged by conflicting sessions' intervals.
    wall_extra: f64,
}

#[derive(Default)]
struct BrokerState {
    next_id: u64,
    next_ticket: u64,
    slots: HashMap<u64, Slot>,
    /// socket -> session currently holding its uncore lock.
    uncore_holders: HashMap<u32, u64>,
    /// socket -> sessions waiting for its uncore lock, in arrival order.
    uncore_queues: HashMap<u32, VecDeque<u64>>,
    opened: u64,
    finished: u64,
    aborted: u64,
    peak_live: usize,
}

/// Broker counters exposed for tests and the daemon's own diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Sessions admitted since start.
    pub opened: u64,
    /// Sessions that ran to completion.
    pub finished: u64,
    /// Sessions released by an abort (client drop, handle drop).
    pub aborted: u64,
    /// Currently admitted sessions.
    pub live: usize,
    /// Highest concurrent session count seen.
    pub peak_live: usize,
    /// Uncore socket locks currently held.
    pub uncore_locks_held: usize,
    /// Sessions currently queued for uncore locks.
    pub uncore_waiters: usize,
}

/// The measurement daemon core: one simulated machine, one event engine,
/// and the session broker state. Shared across server connection handlers
/// by reference; all synchronisation is internal.
pub struct Daemon<'m> {
    machine: &'m SimMachine,
    engine: EventEngine,
    state: Mutex<BrokerState>,
    turn: Condvar,
    /// Serializes the live window of an interval (resume → credit → tick
    /// → suspend) machine-wide. Turn tickets already exclude sessions
    /// *sharing* cpus; this lock additionally keeps a disjoint session's
    /// activity credit out of another session's live window — uncore
    /// counters are per-socket, so without it a core-only session's
    /// credit could leak into a concurrent uncore session's registers
    /// between its tick and its suspend, breaking the telescoping
    /// invariant.
    credit: Mutex<()>,
}

impl<'m> Daemon<'m> {
    /// A daemon over a simulated machine. The caller owns the machine (and
    /// may have armed fault injection on it); every session measures this
    /// one machine.
    pub fn new(machine: &'m SimMachine) -> Self {
        Daemon {
            machine,
            engine: EventEngine::new(machine),
            state: Mutex::new(BrokerState::default()),
            turn: Condvar::new(),
            credit: Mutex::new(()),
        }
    }

    /// The simulated machine every session measures.
    pub fn machine(&self) -> &'m SimMachine {
        self.machine
    }

    /// Validate a wire request into a session configuration. Every
    /// malformed or unsatisfiable field is a typed
    /// [`LikwidError::Protocol`] — the broker never panics on client
    /// input.
    pub fn validate(&self, request: &OpenRequest) -> Result<SessionConfig> {
        if let Some(id) = &request.machine {
            let preset = MachinePreset::from_id(id).ok_or_else(|| {
                LikwidError::Protocol(format!(
                    "unknown machine preset '{id}'; available: {}",
                    MachinePreset::all().iter().map(|p| p.id()).collect::<Vec<_>>().join(", ")
                ))
            })?;
            if preset != self.machine.preset() {
                return Err(LikwidError::Protocol(format!(
                    "machine mismatch: daemon simulates '{}', request expects '{}'",
                    self.machine.preset().id(),
                    preset.id()
                )));
            }
        }

        let topo = self.machine.topology();
        let cpus = parse_pin_list(&request.cpus, topo)
            .map_err(|e| LikwidError::Protocol(format!("cpus: {e}")))?;
        if cpus.is_empty() {
            return Err(LikwidError::Protocol("cpus: empty cpu set".into()));
        }
        if cpus.len() > self.machine.num_hw_threads() {
            return Err(LikwidError::Protocol(format!(
                "cpus: {} entries exceed the machine's {} hardware threads",
                cpus.len(),
                self.machine.num_hw_threads()
            )));
        }
        let mut seen = HashSet::new();
        for &cpu in &cpus {
            if !seen.insert(cpu) {
                return Err(LikwidError::Protocol(format!("cpus: duplicate cpu {cpu}")));
            }
        }

        let spec = parse_measurement_spec(&request.group, self.engine.table())
            .map_err(|e| LikwidError::Protocol(format!("group: {e}")))?;

        let demote = |flag: &str, e: LikwidError| match e {
            LikwidError::Usage(msg) => LikwidError::Protocol(format!("{flag}: {msg}")),
            e => e,
        };
        let interval_s = parse_interval(&request.interval).map_err(|e| demote("interval", e))?;
        let duration_s = parse_interval(&request.duration).map_err(|e| demote("duration", e))?;
        let points = (duration_s / interval_s).ceil();
        if points > MAX_INTERVALS as f64 {
            return Err(LikwidError::Protocol(format!(
                "interval {interval_s} s yields {points:.0} sampling points over {duration_s} s \
                 (max {MAX_INTERVALS})"
            )));
        }

        Ok(SessionConfig { cpus, spec, interval_s, duration_s })
    }

    /// Whether a spec programs uncore counters (decided from the group
    /// definitions, before any register is touched).
    fn spec_uses_uncore(&self, spec: &MeasurementSpec) -> Result<bool> {
        let arch = self.machine.arch();
        let group_uncore = |kind| -> Result<bool> {
            let def = likwid::perfctr::group_definition(arch, kind)?;
            Ok(def.events.iter().any(|(_, slot)| slot.is_uncore()))
        };
        match spec {
            MeasurementSpec::Group(kind) => group_uncore(*kind),
            MeasurementSpec::Groups(kinds) => {
                for &kind in kinds {
                    if group_uncore(kind)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            MeasurementSpec::Custom(events) => Ok(events.iter().any(|(_, slot)| slot.is_uncore())),
        }
    }

    /// The sockets hosting the measured cpus.
    fn sockets_of(&self, cpus: &[usize]) -> Vec<u32> {
        let topo = self.machine.topology();
        let mut sockets: Vec<u32> =
            cpus.iter().filter_map(|&cpu| topo.hw_thread(cpu).ok().map(|t| t.socket)).collect();
        sockets.sort_unstable();
        sockets.dedup();
        sockets
    }

    /// Open a session for the synthetic demo application (the socket
    /// server's path).
    pub fn open(&self, request: &OpenRequest) -> Result<SessionHandle<'_, 'm>> {
        let config = self.validate(request)?;
        self.open_session(config, ActivitySource::Demo)
    }

    /// Open a session with an explicit activity source (the in-process
    /// client API; `Experiment::via_daemon` replays traced workloads).
    ///
    /// Blocks until the session is admitted: uncore sessions queue FIFO
    /// per socket, and the initial counter programming itself waits for
    /// the session's first turn on its cpus.
    pub fn open_session(
        &self,
        config: SessionConfig,
        source: ActivitySource,
    ) -> Result<SessionHandle<'_, 'm>> {
        let uncore = self.spec_uses_uncore(&config.spec)?;
        let sockets = if uncore { self.sockets_of(&config.cpus) } else { Vec::new() };

        let id = {
            let mut state = self.state.lock().unwrap();
            let id = state.next_id;
            state.next_id += 1;
            state.opened += 1;
            let phase = if uncore {
                for &socket in &sockets {
                    state.uncore_queues.entry(socket).or_default().push_back(id);
                }
                Phase::WaitingUncore
            } else {
                let ticket = state.next_ticket;
                state.next_ticket += 1;
                Phase::Running(ticket)
            };
            state.slots.insert(
                id,
                Slot {
                    cpus: config.cpus.clone(),
                    sockets: sockets.clone(),
                    phase,
                    wall_extra: 0.0,
                },
            );
            let live = state.slots.len();
            state.peak_live = state.peak_live.max(live);
            id
        };
        trace::count(trace::cat::DAEMON, "sessions_opened", 1);
        trace::instant_args(trace::cat::DAEMON, "session.open", || {
            vec![
                ("session", id.to_string()),
                ("cpus", format!("{:?}", config.cpus)),
                ("uncore", uncore.to_string()),
            ]
        });

        // Uncore admission: wait until this session heads every queue it is
        // in and no socket it needs is held, then take all its locks
        // atomically and its first ticket.
        if uncore {
            let acquire_started = trace::now();
            let mut state = self.state.lock().unwrap();
            loop {
                let granted = sockets.iter().all(|socket| {
                    !state.uncore_holders.contains_key(socket)
                        && state
                            .uncore_queues
                            .get(socket)
                            .and_then(|q| q.front())
                            .is_some_and(|&head| head == id)
                });
                if granted {
                    for &socket in &sockets {
                        state.uncore_queues.get_mut(&socket).unwrap().pop_front();
                        state.uncore_holders.insert(socket, id);
                    }
                    let ticket = state.next_ticket;
                    state.next_ticket += 1;
                    state.slots.get_mut(&id).unwrap().phase = Phase::Running(ticket);
                    break;
                }
                state = self.turn.wait(state).unwrap();
            }
            drop(state);
            trace::complete_since(
                trace::cat::DAEMON,
                acquire_started,
                || "uncore.acquire".to_string(),
                || vec![("session", id.to_string()), ("sockets", format!("{sockets:?}"))],
            );
            self.turn.notify_all();
        }

        // Programming the counters writes the per-cpu registers, so even
        // session construction takes the session's turn: no conflicting
        // session's counters are live while we program.
        self.wait_turn(id);
        let session = TimelineSession::new(
            self.machine,
            PerfCtrConfig { cpus: config.cpus.clone(), spec: config.spec.clone() },
            config.interval_s,
        );
        let session = match session {
            Ok(session) => session,
            Err(e) => {
                self.release(id, true);
                return Err(e);
            }
        };
        // Construction used the turn; hand it on.
        self.end_turn(id, 0.0, false);

        let schema = (0..session.session().num_groups())
            .map(|g| GroupSchema {
                name: session.session().group_name(g).to_string(),
                events: session.session().group_events(g),
                metrics: session.session().metric_names(g),
            })
            .collect();
        let opened = OpenedFrame {
            session: id,
            machine: self.machine.preset().id().to_string(),
            cpus: config.cpus.clone(),
            socket_lock_owners: session.session().socket_lock_owners(),
            interval_s: config.interval_s,
            duration_s: config.duration_s,
            uncore,
            groups: schema,
        };

        Ok(SessionHandle {
            daemon: self,
            id,
            session: Some(session),
            source,
            opened,
            duration_s: config.duration_s,
            interval_s: config.interval_s,
            t0: 0.0,
            index: 0,
            measurement_complete: false,
            released: false,
        })
    }

    /// Block until it is session `id`'s turn on all its cpus: no other
    /// admitted, ticket-holding session sharing a cpu has a smaller
    /// ticket.
    fn wait_turn(&self, id: u64) {
        let wait_started = trace::now();
        let mut state = self.state.lock().unwrap();
        let mut waited = false;
        loop {
            let me = state.slots.get(&id).expect("session slot exists until released");
            let my_ticket = match me.phase {
                Phase::Running(t) => t,
                Phase::WaitingUncore | Phase::Parked => {
                    unreachable!("turns are only taken by admitted, unfinished sessions")
                }
            };
            let my_cpus = &me.cpus;
            let blocked = state.slots.iter().any(|(&other_id, other)| {
                if other_id == id {
                    return false;
                }
                match other.phase {
                    Phase::Running(t) => {
                        t < my_ticket && other.cpus.iter().any(|c| my_cpus.contains(c))
                    }
                    Phase::WaitingUncore | Phase::Parked => false,
                }
            });
            if !blocked {
                if waited {
                    // Only contended turns produce a span: an uncontended
                    // wait_turn is the common case and would be noise.
                    drop(state);
                    trace::complete_since(
                        trace::cat::DAEMON,
                        wait_started,
                        || "ticket.wait".to_string(),
                        || vec![("session", id.to_string())],
                    );
                }
                return;
            }
            waited = true;
            state = self.turn.wait(state).unwrap();
        }
    }

    /// End a turn: charge the interval length to every conflicting
    /// running session's foreign-wall account, then either take a fresh
    /// (larger) ticket or park the session (after its final interval, so
    /// an uncollected result never blocks anyone), and wake waiters.
    fn end_turn(&self, id: u64, dt_s: f64, park: bool) {
        let mut state = self.state.lock().unwrap();
        let me_cpus = state.slots.get(&id).expect("session slot exists").cpus.clone();
        if dt_s > 0.0 {
            for (&other_id, other) in state.slots.iter_mut() {
                if other_id == id || !matches!(other.phase, Phase::Running(_)) {
                    continue;
                }
                if other.cpus.iter().any(|c| me_cpus.contains(c)) {
                    other.wall_extra += dt_s;
                }
            }
        }
        let phase = if park {
            Phase::Parked
        } else {
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            Phase::Running(ticket)
        };
        state.slots.get_mut(&id).unwrap().phase = phase;
        drop(state);
        self.turn.notify_all();
    }

    /// The session's accumulated foreign wall time.
    fn wall_extra(&self, id: u64) -> f64 {
        self.state.lock().unwrap().slots.get(&id).map(|s| s.wall_extra).unwrap_or(0.0)
    }

    /// Release a session: drop its slot, free its uncore locks and queue
    /// positions, wake everyone.
    fn release(&self, id: u64, aborted: bool) {
        let mut state = self.state.lock().unwrap();
        let mut forced = 0i64;
        if let Some(slot) = state.slots.remove(&id) {
            for socket in slot.sockets {
                if state.uncore_holders.get(&socket) == Some(&id) {
                    state.uncore_holders.remove(&socket);
                    if aborted {
                        forced += 1;
                    }
                }
                if let Some(queue) = state.uncore_queues.get_mut(&socket) {
                    queue.retain(|&waiting| waiting != id);
                }
            }
            if aborted {
                state.aborted += 1;
            } else {
                state.finished += 1;
            }
        }
        drop(state);
        if forced > 0 {
            // An aborted holder's locks are reclaimed by the broker, not
            // handed back — the event worth spotting in a trace.
            trace::count(trace::cat::DAEMON, "uncore_force_release", forced);
        }
        trace::count(
            trace::cat::DAEMON,
            if aborted { "sessions_aborted" } else { "sessions_finished" },
            1,
        );
        trace::instant_args(trace::cat::DAEMON, "session.release", || {
            vec![("session", id.to_string()), ("aborted", aborted.to_string())]
        });
        self.turn.notify_all();
    }

    /// Broker counters.
    pub fn stats(&self) -> BrokerStats {
        let state = self.state.lock().unwrap();
        BrokerStats {
            opened: state.opened,
            finished: state.finished,
            aborted: state.aborted,
            live: state.slots.len(),
            peak_live: state.peak_live,
            uncore_locks_held: state.uncore_holders.len(),
            uncore_waiters: state.uncore_queues.values().map(VecDeque::len).sum(),
        }
    }

    /// A point-in-time observability snapshot for the wire `status`
    /// request: active sessions with their phase, per-cpu ticket-queue
    /// depth, and uncore lock holders/waiters.
    ///
    /// Takes only the state mutex — it never waits on the turn condvar, so
    /// it cannot block (or be blocked by) a measurement turn, and it never
    /// panics mid-arbitration: every lookup is total over the snapshot.
    pub fn status(&self) -> DaemonStatus {
        let state = self.state.lock().unwrap();
        let mut sessions: Vec<SessionStatus> = state
            .slots
            .iter()
            .map(|(&id, slot)| {
                let (phase, ticket) = match slot.phase {
                    Phase::WaitingUncore => ("waiting-uncore", None),
                    Phase::Running(t) => ("running", Some(t)),
                    Phase::Parked => ("parked", None),
                };
                SessionStatus {
                    id,
                    cpus: slot.cpus.clone(),
                    phase: phase.to_string(),
                    ticket,
                    wall_extra_s: slot.wall_extra,
                }
            })
            .collect();
        sessions.sort_by_key(|s| s.id);

        // Ticket-queue depth per cpu: how many ticket-holding sessions
        // currently contend for each hardware thread.
        let mut depth: HashMap<usize, usize> = HashMap::new();
        for slot in state.slots.values() {
            if matches!(slot.phase, Phase::Running(_)) {
                for &cpu in &slot.cpus {
                    *depth.entry(cpu).or_insert(0) += 1;
                }
            }
        }
        let mut queue_depth: Vec<(usize, usize)> = depth.into_iter().collect();
        queue_depth.sort_unstable();

        let mut sockets: Vec<u32> = state
            .uncore_holders
            .keys()
            .copied()
            .chain(state.uncore_queues.iter().filter(|(_, q)| !q.is_empty()).map(|(&s, _)| s))
            .collect();
        sockets.sort_unstable();
        sockets.dedup();
        let uncore = sockets
            .into_iter()
            .map(|socket| UncoreStatus {
                socket,
                holder: state.uncore_holders.get(&socket).copied(),
                waiters: state
                    .uncore_queues
                    .get(&socket)
                    .map(|q| q.iter().copied().collect())
                    .unwrap_or_default(),
            })
            .collect();
        DaemonStatus { sessions, queue_depth, uncore }
    }

    /// Whether the broker holds no sessions, no uncore locks and no
    /// waiters — the leak check after stress and abandon tests.
    pub fn is_quiescent(&self) -> bool {
        let state = self.state.lock().unwrap();
        state.slots.is_empty()
            && state.uncore_holders.is_empty()
            && state.uncore_queues.values().all(VecDeque::is_empty)
    }
}

/// One active session in a [`DaemonStatus`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatus {
    /// Broker-assigned session id.
    pub id: u64,
    /// Measured hardware threads.
    pub cpus: Vec<usize>,
    /// Lifecycle phase: `waiting-uncore`, `running` or `parked`.
    pub phase: String,
    /// The turn ticket, when the session holds one.
    pub ticket: Option<u64>,
    /// Foreign virtual time charged so far (seconds).
    pub wall_extra_s: f64,
}

/// One socket's uncore lock state in a [`DaemonStatus`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncoreStatus {
    /// Socket id.
    pub socket: u32,
    /// Session currently holding the lock, if any.
    pub holder: Option<u64>,
    /// Sessions queued for the lock, in arrival order.
    pub waiters: Vec<u64>,
}

/// The broker's observability snapshot (the wire `status` answer).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DaemonStatus {
    /// Active sessions, id-ordered.
    pub sessions: Vec<SessionStatus>,
    /// `(cpu, ticket-holding sessions on it)` pairs, cpu-ordered; cpus
    /// nobody measures are omitted.
    pub queue_depth: Vec<(usize, usize)>,
    /// Uncore lock holders and waiters, socket-ordered; idle sockets are
    /// omitted.
    pub uncore: Vec<UncoreStatus>,
}

impl DaemonStatus {
    /// Render the snapshot as a typed [`likwid::Report`], so the `--status`
    /// client rides the suite's ASCII/CSV/JSON renderers.
    pub fn report(&self) -> likwid::Report {
        use likwid::report::{Body, Row, Section, Table, Value};
        let mut report = likwid::Report::new("likwid-perfctrd status");
        let mut sessions = Table::plain(vec!["session", "cpus", "phase", "ticket", "wall extra s"]);
        for s in &self.sessions {
            let cpus: Vec<String> = s.cpus.iter().map(|c| c.to_string()).collect();
            sessions.push(Row::new(vec![
                Value::Count(s.id),
                Value::Str(cpus.join(",")),
                Value::Str(s.phase.clone()),
                match s.ticket {
                    Some(t) => Value::Count(t),
                    None => Value::Str("-".into()),
                },
                Value::Real(s.wall_extra_s),
            ]));
        }
        report.push(
            Section::new("status.sessions", Body::Table(sessions)).with_heading("Active sessions"),
        );
        let mut queues = Table::plain(vec!["cpu", "depth"]);
        for &(cpu, depth) in &self.queue_depth {
            queues.push(Row::new(vec![Value::Count(cpu as u64), Value::Count(depth as u64)]));
        }
        report.push(
            Section::new("status.queues", Body::Table(queues)).with_heading("Ticket-queue depth"),
        );
        let mut uncore = Table::plain(vec!["socket", "holder", "waiters"]);
        for u in &self.uncore {
            let waiters: Vec<String> = u.waiters.iter().map(|w| w.to_string()).collect();
            uncore.push(Row::new(vec![
                Value::Count(u64::from(u.socket)),
                match u.holder {
                    Some(h) => Value::Count(h),
                    None => Value::Str("-".into()),
                },
                Value::Str(waiters.join(",")),
            ]));
        }
        report
            .push(Section::new("status.uncore", Body::Table(uncore)).with_heading("Uncore locks"));
        report
    }
}

/// An admitted measurement session, driven interval by interval. Dropping
/// the handle before [`SessionHandle::finish`] aborts the session and
/// releases every lock and slot it held — a vanished client can never leak
/// broker state.
pub struct SessionHandle<'d, 'm> {
    daemon: &'d Daemon<'m>,
    id: u64,
    session: Option<TimelineSession<'m>>,
    source: ActivitySource,
    opened: OpenedFrame,
    duration_s: f64,
    interval_s: f64,
    t0: f64,
    index: usize,
    measurement_complete: bool,
    released: bool,
}

impl<'d, 'm> SessionHandle<'d, 'm> {
    /// The broker-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The `opened` frame describing this session's resolved shape.
    pub fn opened(&self) -> &OpenedFrame {
        &self.opened
    }

    /// Run the next interval: wait for the session's turn, resume the
    /// counters, credit the interval's activity, close the interval,
    /// suspend the counters, hand the turn on. Returns `None` once the
    /// configured duration is covered.
    pub fn next_interval(&mut self) -> Result<Option<IntervalFrame>> {
        if self.measurement_complete {
            return Ok(None);
        }
        let session = self.session.as_mut().expect("session alive until finish");
        let t1 = ((self.index + 1) as f64 * self.interval_s).min(self.duration_s);
        let dt = t1 - self.t0;

        let sample = match &mut self.source {
            ActivitySource::Demo => likwid::perfctr::timeline::demo_slice(
                self.daemon.machine,
                &self.opened.cpus,
                self.t0,
                t1,
            ),
            ActivitySource::Replay(samples) => samples.pop_front().unwrap_or_else(|| {
                EventSample::new(
                    self.daemon.machine.num_hw_threads(),
                    self.daemon.machine.topology().sockets as usize,
                )
            }),
        };

        let window_started = trace::now();
        self.daemon.wait_turn(self.id);
        // Our ticket is minimal on all our cpus: no conflicting session
        // will program or count until we renew it. The credit lock makes
        // the whole live window atomic against *disjoint* sessions too,
        // so only this session's activity lands in its registers.
        let outcome = (|| -> Result<IntervalFrame> {
            let _credit = self.daemon.credit.lock().unwrap();
            session.resume()?;
            self.daemon.engine.apply(self.daemon.machine, &sample);
            let interval = session.tick(dt)?;
            session.suspend()?;
            let results =
                session.session().results_for_group_at(interval.group, &interval.counts, dt)?;
            Ok(IntervalFrame {
                session: self.id,
                index: self.index,
                group: interval.group,
                t_start_s: interval.t_start_s,
                t_end_s: interval.t_end_s,
                counts: interval.counts,
                metrics: results.metrics.into_iter().map(|(_, values)| values).collect(),
            })
        })();
        let complete = t1 >= self.duration_s;
        self.daemon.end_turn(self.id, dt, complete && outcome.is_ok());
        // The resume → apply → tick → suspend window, wall-clocked (the
        // session's own virtual-time intervals come from the timeline).
        let (id, index) = (self.id, self.index);
        trace::complete_since(
            trace::cat::DAEMON,
            window_started,
            || "interval.window".to_string(),
            || vec![("session", id.to_string()), ("index", index.to_string())],
        );

        let frame = outcome?;
        self.t0 = t1;
        self.index += 1;
        self.measurement_complete = complete;
        Ok(Some(frame))
    }

    /// Finish the session: apply the cross-session coverage scale and
    /// assemble the post-mortem result next to its wire frame.
    pub fn finish(mut self) -> Result<(DoneFrame, TimelineResult)> {
        let session = self.session.take().expect("session alive until finish");
        let measured = self.t0;
        let wall_extra = self.daemon.wall_extra(self.id);
        let time_scale =
            if wall_extra > 0.0 && measured > 0.0 { 1.0 + wall_extra / measured } else { 1.0 };
        // finish() folds the residual register counts one last time; hold
        // the credit lock so that read can never observe another session's
        // live window on shared cpus (suspended registers are zeroed and
        // stopped, so between windows the residual is exactly zero).
        let result = {
            let _credit = self.daemon.credit.lock().unwrap();
            session.finish_scaled(time_scale)
        };
        self.daemon.release(self.id, false);
        self.released = true;
        // Coverage scale in permille: a sliced session extrapolates by
        // >1.0x; solo sessions stay at exactly 1000.
        trace::count_with(
            trace::cat::DAEMON,
            || format!("session{}.coverage_permille", self.id),
            (time_scale * 1000.0).round() as i64,
        );
        let result = result?;
        let frame = DoneFrame {
            session: self.id,
            duration_s: result.duration_s,
            intervals: result.intervals.len(),
            time_scale,
            aggregate: result.aggregate.clone(),
            extrapolated: result.extrapolated.clone(),
            results: result.aggregate_results.iter().map(ResultsFrame::from_results).collect(),
        };
        Ok((frame, result))
    }
}

impl Drop for SessionHandle<'_, '_> {
    fn drop(&mut self) {
        if !self.released {
            // Counters are suspended between intervals, so dropping the
            // TimelineSession mid-run leaves no live counters behind; the
            // broker just needs its slot and locks back.
            self.daemon.release(self.id, true);
        }
    }
}

//! Client-side stream handling: frame accumulation, bit-identical result
//! reconstruction, and the Unix-socket client.
//!
//! A measurement session streams `interval` frames while it runs and a
//! `done` frame when it finishes. [`StreamAccumulator`] consumes that
//! stream and rebuilds the session's full [`TimelineResult`] — the
//! per-interval raw deltas, the aggregates the deltas telescope to, and
//! the per-group time series in exactly the order the post-mortem
//! `TimelineSession::finish` emits them, so `accumulator.result().report()`
//! renders byte-identically to the report a local `likwid-perfctr -t` run
//! would have produced.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use likwid::perfctr::TimelineResult;
use likwid::report::{Series, TimeSeries};
use likwid::{LikwidError, Result};

use crate::jsonv::JsonValue;
use crate::protocol::{DoneFrame, Frame, IntervalFrame, OpenRequest, OpenedFrame};

/// Accumulates one session's frame stream and reconstructs the post-mortem
/// result.
#[derive(Debug, Clone)]
pub struct StreamAccumulator {
    opened: OpenedFrame,
    intervals: Vec<IntervalFrame>,
    done: Option<DoneFrame>,
}

impl StreamAccumulator {
    /// Start accumulating a session announced by its `opened` frame.
    pub fn new(opened: OpenedFrame) -> Self {
        StreamAccumulator { opened, intervals: Vec::new(), done: None }
    }

    /// The session's `opened` frame.
    pub fn opened(&self) -> &OpenedFrame {
        &self.opened
    }

    /// The interval frames received so far.
    pub fn intervals(&self) -> &[IntervalFrame] {
        &self.intervals
    }

    /// Feed one `interval` frame. Frames must belong to this session and
    /// arrive in index order.
    pub fn push(&mut self, frame: IntervalFrame) -> Result<()> {
        if frame.session != self.opened.session {
            return Err(LikwidError::Protocol(format!(
                "interval frame for session {} on a stream of session {}",
                frame.session, self.opened.session
            )));
        }
        if frame.index != self.intervals.len() {
            return Err(LikwidError::Protocol(format!(
                "interval frame {} out of order (expected {})",
                frame.index,
                self.intervals.len()
            )));
        }
        self.intervals.push(frame);
        Ok(())
    }

    /// Feed the terminating `done` frame.
    pub fn complete(&mut self, done: DoneFrame) -> Result<()> {
        if done.session != self.opened.session {
            return Err(LikwidError::Protocol(format!(
                "done frame for session {} on a stream of session {}",
                done.session, self.opened.session
            )));
        }
        if done.intervals != self.intervals.len() {
            return Err(LikwidError::Protocol(format!(
                "done frame reports {} intervals, stream carried {}",
                done.intervals,
                self.intervals.len()
            )));
        }
        self.done = Some(done);
        Ok(())
    }

    /// Verify the telescoping invariant: per group, the streamed interval
    /// deltas sum count-by-count exactly to the aggregate of the `done`
    /// frame.
    pub fn verify_telescoping(&self) -> Result<()> {
        let done = self
            .done
            .as_ref()
            .ok_or_else(|| LikwidError::Protocol("stream not complete".into()))?;
        for (g, aggregate) in done.aggregate.iter().enumerate() {
            let mut sums: Vec<Vec<u64>> =
                aggregate.iter().map(|per_cpu| vec![0u64; per_cpu.len()]).collect();
            for frame in self.intervals.iter().filter(|f| f.group == g) {
                for (ei, per_cpu) in frame.counts.iter().enumerate() {
                    for (ci, &v) in per_cpu.iter().enumerate() {
                        sums[ei][ci] += v;
                    }
                }
            }
            if &sums != aggregate {
                return Err(LikwidError::Protocol(format!(
                    "group {g}: interval deltas do not telescope to the aggregate"
                )));
            }
        }
        Ok(())
    }

    /// Rebuild the full [`TimelineResult`] from the accumulated stream.
    pub fn result(&self) -> Result<TimelineResult> {
        let done = self
            .done
            .as_ref()
            .ok_or_else(|| LikwidError::Protocol("stream not complete".into()))?;
        let cpus = self.opened.cpus.clone();
        let group_names: Vec<String> = self.opened.groups.iter().map(|g| g.name.clone()).collect();

        let mut timeseries = Vec::with_capacity(self.opened.groups.len());
        for (g, schema) in self.opened.groups.iter().enumerate() {
            let frames: Vec<&IntervalFrame> =
                self.intervals.iter().filter(|f| f.group == g).collect();
            let timestamps: Vec<f64> = frames.iter().map(|f| f.t_end_s).collect();
            let mut series = Vec::new();
            if !frames.is_empty() {
                if schema.metrics.is_empty() {
                    for (ei, (name, _)) in schema.events.iter().enumerate() {
                        for (ci, &cpu) in cpus.iter().enumerate() {
                            let values = frames.iter().map(|f| f.counts[ei][ci] as f64).collect();
                            series.push(Series::new(name.clone(), cpu, values));
                        }
                    }
                } else {
                    for (mi, name) in schema.metrics.iter().enumerate() {
                        for (ci, &cpu) in cpus.iter().enumerate() {
                            let values = frames
                                .iter()
                                .map(|f| {
                                    f.metrics
                                        .get(mi)
                                        .and_then(|row| row.get(ci))
                                        .copied()
                                        .unwrap_or(f64::NAN)
                                })
                                .collect();
                            series.push(Series::new(name.clone(), cpu, values));
                        }
                    }
                }
            }
            timeseries.push(TimeSeries { timestamps, series });
        }

        Ok(TimelineResult {
            interval_s: self.opened.interval_s,
            duration_s: done.duration_s,
            cpus,
            socket_lock_owners: self.opened.socket_lock_owners.clone(),
            group_names,
            intervals: self.intervals.iter().map(IntervalFrame::to_interval).collect(),
            aggregate: done.aggregate.clone(),
            extrapolated: done.extrapolated.clone(),
            aggregate_results: done.results.iter().map(|r| r.to_results()).collect(),
            timeseries,
        })
    }
}

/// A blocking NDJSON client over a Unix domain socket.
pub struct SocketClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl SocketClient {
    /// Connect and consume the server's `hello` frame, which is returned.
    pub fn connect(path: &Path) -> Result<(Self, Frame)> {
        let stream = UnixStream::connect(path)
            .map_err(|e| LikwidError::Protocol(format!("connect {}: {e}", path.display())))?;
        let writer =
            stream.try_clone().map_err(|e| LikwidError::Protocol(format!("clone socket: {e}")))?;
        let mut client = SocketClient { reader: BufReader::new(stream), writer };
        let hello = client.next_frame()?;
        match &hello {
            Frame::Hello { .. } => Ok((client, hello)),
            other => Err(LikwidError::Protocol(format!("expected hello, got {other:?}"))),
        }
    }

    /// Send one command as an NDJSON line.
    pub fn send(&mut self, command: &JsonValue) -> Result<()> {
        let mut line = command.encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| LikwidError::Protocol(format!("send: {e}")))
    }

    /// Read the next frame. EOF is a protocol error (the server always
    /// terminates a session stream with `done` or `error`).
    pub fn next_frame(&mut self) -> Result<Frame> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| LikwidError::Protocol(format!("recv: {e}")))?;
        if n == 0 {
            return Err(LikwidError::Protocol("connection closed by server".into()));
        }
        Frame::from_line(&line)
    }

    /// Ask the daemon for its observability snapshot. Answered from the
    /// broker's state mutex, so it returns promptly even while other
    /// clients stream measurement sessions.
    pub fn status(&mut self) -> Result<crate::broker::DaemonStatus> {
        self.send(&crate::jsonv::obj(vec![("cmd", JsonValue::Str("status".into()))]))?;
        match self.next_frame()? {
            Frame::Status(status) => Ok(status),
            Frame::Error { kind, message } => Err(error_from_frame(&kind, message)),
            other => Err(LikwidError::Protocol(format!("expected status, got {other:?}"))),
        }
    }

    /// Open a session and drive it to completion, invoking `on_frame` for
    /// every session frame as it arrives (`opened`, each `interval`, then
    /// `done`) — the live-rendering hook. Returns the accumulated stream.
    /// A server-side `error` frame is returned as the matching typed
    /// error.
    pub fn run_session(
        &mut self,
        request: &OpenRequest,
        mut on_frame: impl FnMut(&Frame),
    ) -> Result<StreamAccumulator> {
        self.send(&request.to_json())?;
        let frame = self.next_frame()?;
        let opened = match frame {
            Frame::Opened(ref opened) => opened.clone(),
            Frame::Error { kind, message } => return Err(error_from_frame(&kind, message)),
            other => return Err(LikwidError::Protocol(format!("expected opened, got {other:?}"))),
        };
        on_frame(&frame);
        let mut accumulator = StreamAccumulator::new(opened);
        loop {
            let frame = self.next_frame()?;
            on_frame(&frame);
            match frame {
                Frame::Interval(interval) => accumulator.push(interval)?,
                Frame::Done(done) => {
                    accumulator.complete(done)?;
                    return Ok(accumulator);
                }
                Frame::Error { kind, message } => return Err(error_from_frame(&kind, message)),
                other => {
                    return Err(LikwidError::Protocol(format!(
                        "unexpected frame mid-stream: {other:?}"
                    )))
                }
            }
        }
    }
}

/// Map a wire error frame back to a typed error.
fn error_from_frame(kind: &str, message: String) -> LikwidError {
    match kind {
        "usage" => LikwidError::Usage(message),
        _ => LikwidError::Protocol(message),
    }
}

/// The live-stream column layout of a session: one column per (metric or
/// event, cpu) pair of every group, in group order — the same `"{name}
/// core {cpu}"` labels the post-mortem time-series renderer uses.
pub fn stream_header(opened: &OpenedFrame) -> likwid::report::stream::StreamHeader {
    let mut columns = Vec::new();
    for group in &opened.groups {
        let names: Vec<&str> = if group.metrics.is_empty() {
            group.events.iter().map(|(name, _)| name.as_str()).collect()
        } else {
            group.metrics.iter().map(String::as_str).collect()
        };
        for name in names {
            for &cpu in &opened.cpus {
                columns.push(format!("{name} core {cpu}"));
            }
        }
    }
    likwid::report::stream::StreamHeader { time_label: "time[s]".to_string(), columns }
}

/// One interval frame as a live-stream row: the measured group's values in
/// its column span, `None` (not covered this interval) everywhere else.
pub fn stream_row(
    opened: &OpenedFrame,
    frame: &IntervalFrame,
) -> likwid::report::stream::StreamRow {
    let span = |group: &crate::protocol::GroupSchema| {
        let names = if group.metrics.is_empty() { group.events.len() } else { group.metrics.len() };
        names * opened.cpus.len()
    };
    let total: usize = opened.groups.iter().map(span).sum();
    let offset: usize = opened.groups.iter().take(frame.group).map(span).sum();
    let mut values = vec![None; total];
    if let Some(group) = opened.groups.get(frame.group) {
        let mut at = offset;
        if group.metrics.is_empty() {
            for per_cpu in &frame.counts {
                for &v in per_cpu {
                    if at < total {
                        values[at] = Some(v as f64);
                    }
                    at += 1;
                }
            }
        } else {
            for per_cpu in &frame.metrics {
                for &v in per_cpu {
                    if at < total {
                        values[at] = Some(v);
                    }
                    at += 1;
                }
            }
        }
    }
    likwid::report::stream::StreamRow { t: frame.t_end_s, values }
}

//! A small lossless JSON codec for the daemon protocol.
//!
//! The core crate's report renderer has its own (private) JSON document
//! model; the daemon needs one property that model does not provide: raw
//! counter values are `u64` and must survive the wire bit-exactly, so the
//! value type distinguishes [`JsonValue::UInt`] from [`JsonValue::Num`].
//! Reals are encoded with Rust's shortest-round-trip `Display`, so every
//! finite `f64` parses back to the same bits; the non-finite values a
//! metric formula can produce are spelled as the strings `"NaN"`, `"inf"`
//! and `"-inf"` (JSON has no literal for them).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal without fraction or exponent —
    /// counter values keep full 64-bit precision.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a real; integers widen, the string spellings of the
    /// non-finite values parse back.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Num(v) => Some(*v),
            JsonValue::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encode a real losslessly: shortest round-trip decimal for finite
    /// values, quoted spellings for the rest.
    pub fn real(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Num(v)
        } else if v.is_nan() {
            JsonValue::Str("NaN".to_string())
        } else if v > 0.0 {
            JsonValue::Str("inf".to_string())
        } else {
            JsonValue::Str("-inf".to_string())
        }
    }

    /// Serialize to compact JSON (no insignificant whitespace — one frame
    /// fits one NDJSON line).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // Callers construct non-finite reals via `real()`; a raw
                    // Num(NaN) still must emit valid JSON.
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => encode_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document. Trailing garbage after the value is an
    /// error (a frame is exactly one value per line).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Convenience builder for object frames.
pub fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_counts_round_trip_bit_exactly() {
        for v in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
            let text = JsonValue::UInt(v).encode();
            assert_eq!(JsonValue::parse(&text).unwrap(), JsonValue::UInt(v), "{v}");
        }
    }

    #[test]
    fn f64_reals_round_trip_bit_exactly() {
        for v in [0.1 + 0.2, 2.5e-3, 1.0 / 3.0, -1.5e-308, 6.02214076e23, f64::MIN_POSITIVE] {
            let text = JsonValue::real(v).encode();
            let back = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = JsonValue::real(v).encode();
            let back = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn structures_escape_and_round_trip() {
        let frame = obj(vec![
            ("frame", JsonValue::Str("interval".into())),
            ("note", JsonValue::Str("quote \" slash \\ tab \t".into())),
            (
                "counts",
                JsonValue::Arr(vec![JsonValue::Arr(vec![
                    JsonValue::UInt(42),
                    JsonValue::UInt(u64::MAX),
                ])]),
            ),
            ("flag", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
        ]);
        let text = frame.encode();
        assert!(!text.contains('\n'), "one frame must fit one NDJSON line");
        assert_eq!(JsonValue::parse(&text).unwrap(), frame);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(JsonValue::parse(bad).is_err(), "'{bad}' parsed");
        }
    }
}

//! `likwid-perfctrd`: measurement as a service.
//!
//! The paper's tools measure one run at a time; this crate turns the
//! simulated measurement stack into a long-running daemon that accepts many
//! concurrent measurement sessions over a Unix domain socket (or through an
//! in-process client API) and streams per-interval counter deltas live
//! while the sessions run.
//!
//! * [`broker`] — the session broker: admission and validation, per-cpu
//!   turn arbitration with monotonic tickets, FIFO per-socket uncore
//!   locks, cross-session time-slicing with coverage extrapolation.
//! * [`protocol`] — the line-delimited JSON wire protocol (`hello`,
//!   `open`, `opened`, `interval`, `done`, `status`, `error` frames).
//! * [`client`] — the socket client and [`client::StreamAccumulator`],
//!   which rebuilds a bit-identical post-mortem
//!   [`likwid::perfctr::TimelineResult`] from the frame stream.
//! * [`server`] — the socket accept loop and connection handlers.
//! * [`jsonv`] — the lossless JSON codec (64-bit counts stay exact).

pub mod broker;
pub mod client;
pub mod jsonv;
pub mod protocol;
pub mod server;

pub use broker::{
    ActivitySource, BrokerStats, Daemon, DaemonStatus, SessionConfig, SessionHandle, SessionStatus,
    UncoreStatus,
};
pub use client::{SocketClient, StreamAccumulator};
pub use protocol::{DoneFrame, Frame, IntervalFrame, OpenRequest, OpenedFrame};

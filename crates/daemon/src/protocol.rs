//! The `likwid-perfctrd` wire protocol: line-delimited JSON frames.
//!
//! Every message — client command or server frame — is one JSON object on
//! one line (NDJSON). Commands carry a `cmd` member, frames a `frame`
//! member:
//!
//! * `hello` — sent by the server on connect: daemon identity, protocol
//!   version, the simulated machine preset.
//! * `open` (command) — admit a measurement session: cpu pin list, group
//!   spec, sampling interval and duration (all in the same syntax as the
//!   `likwid-perfctr` command line).
//! * `opened` — the admitted session's resolved shape: session id, cpu
//!   list, group schemas (event and metric names per group), whether the
//!   session needs the socket uncore locks.
//! * `interval` — one live per-interval sample: the raw count deltas of the
//!   active group plus the derived metric values with `time` bound to the
//!   interval length. Streamed while the measurement runs.
//! * `done` — the post-mortem result: aggregate and extrapolated counts,
//!   the full per-group aggregate results, the cross-session coverage
//!   scale. Interval frames and the `done` frame together reconstruct the
//!   complete [`TimelineResult`] bit-identically (see
//!   [`crate::client::StreamAccumulator`]).
//! * `status` (command) — ask for an observability snapshot of the broker;
//!   answered immediately from the state mutex, never blocking (or blocked
//!   by) a measurement turn.
//! * `status` (frame) — the snapshot: active sessions with their lifecycle
//!   phase and turn ticket, per-cpu ticket-queue depth, and uncore lock
//!   holders/waiters per socket.
//! * `error` — a structured protocol error; the session broker stays
//!   healthy and the connection stays open.
//! * `pong` / `ok` — replies to `ping` and `shutdown`.
//!
//! All counter values cross the wire as JSON integers ([`u64`] exactly);
//! reals use shortest-round-trip encoding, so reconstruction is bit-exact.

use crate::broker::{DaemonStatus, SessionStatus, UncoreStatus};
use crate::jsonv::{obj, JsonValue};
use likwid::perfctr::session::{Diagnostic, GroupCounts};
use likwid::perfctr::{PerfCtrResults, TimelineInterval};
use likwid::{LikwidError, Result};
use likwid_perf_events::CounterSlot;

/// Protocol version spoken by this daemon.
pub const PROTOCOL_VERSION: u64 = 1;

/// Server identity announced in the hello frame.
pub const SERVER_NAME: &str = "likwid-perfctrd";

/// A client's request to open a measurement session. All fields use the
/// `likwid-perfctr` command-line syntax and are validated by the broker
/// (never panicking — every malformed value is answered with an `error`
/// frame).
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRequest {
    /// Expected machine preset id (`westmere_ep_2s`); `None` accepts
    /// whatever the daemon simulates.
    pub machine: Option<String>,
    /// Pin list of hardware threads to measure (`0-3`, `S0:0-1,S1:0-1`).
    pub cpus: String,
    /// Event group, multiplexed group list, or custom event spec.
    pub group: String,
    /// Sampling interval (`1ms`, `250us`).
    pub interval: String,
    /// Measurement duration (`10ms`).
    pub duration: String,
}

impl OpenRequest {
    /// Build the `open` command frame.
    pub fn to_json(&self) -> JsonValue {
        let mut members = vec![("cmd", JsonValue::Str("open".into()))];
        if let Some(machine) = &self.machine {
            members.push(("machine", JsonValue::Str(machine.clone())));
        }
        members.push(("cpus", JsonValue::Str(self.cpus.clone())));
        members.push(("group", JsonValue::Str(self.group.clone())));
        members.push(("interval", JsonValue::Str(self.interval.clone())));
        members.push(("duration", JsonValue::Str(self.duration.clone())));
        obj(members)
    }

    /// Parse an `open` command frame.
    pub fn from_json(value: &JsonValue) -> Result<Self> {
        let field = |name: &str| -> Result<String> {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| LikwidError::Protocol(format!("open: missing field '{name}'")))
        };
        Ok(OpenRequest {
            machine: value.get("machine").and_then(JsonValue::as_str).map(str::to_string),
            cpus: field("cpus")?,
            group: field("group")?,
            interval: field("interval")?,
            duration: field("duration")?,
        })
    }
}

/// The resolved shape of one event group of an admitted session.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSchema {
    /// Group name (`FLOPS_DP`, `CUSTOM`).
    pub name: String,
    /// Programmed events: `(documented name, counter slot)`.
    pub events: Vec<(String, CounterSlot)>,
    /// Derived metric names, in result order (empty for custom lists).
    pub metrics: Vec<String>,
}

/// The `opened` frame: everything a client needs to interpret the interval
/// stream that follows.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenedFrame {
    /// Broker-assigned session id.
    pub session: u64,
    /// Machine preset id of the daemon.
    pub machine: String,
    /// Measured hardware threads, in column order.
    pub cpus: Vec<usize>,
    /// The measured threads carrying the uncore counts, per
    /// [`likwid::perfctr::TimelineResult::socket_lock_owners`].
    pub socket_lock_owners: Vec<usize>,
    /// Sampling interval in seconds.
    pub interval_s: f64,
    /// Measurement duration in seconds.
    pub duration_s: f64,
    /// Whether the session holds per-socket uncore locks for its lifetime.
    pub uncore: bool,
    /// One schema per group, in group-index order.
    pub groups: Vec<GroupSchema>,
}

/// One streamed interval: the live counterpart of [`TimelineInterval`] plus
/// the interval's derived metric values (per metric, per cpu — `time`
/// bound to the interval length).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalFrame {
    /// Session id.
    pub session: u64,
    /// Zero-based interval index within the session.
    pub index: usize,
    /// Group measured during this interval.
    pub group: usize,
    /// Interval start on the session's virtual clock.
    pub t_start_s: f64,
    /// Interval end on the session's virtual clock.
    pub t_end_s: f64,
    /// Raw count deltas: `counts[event][cpu_position]`, exact.
    pub counts: GroupCounts,
    /// Derived metric values: `metrics[metric][cpu_position]`, in the
    /// group-schema metric order. Empty for custom event lists.
    pub metrics: Vec<Vec<f64>>,
}

impl IntervalFrame {
    /// The raw-delta part as a core [`TimelineInterval`].
    pub fn to_interval(&self) -> TimelineInterval {
        TimelineInterval {
            t_start_s: self.t_start_s,
            t_end_s: self.t_end_s,
            group: self.group,
            counts: self.counts.clone(),
        }
    }
}

/// The `done` frame: the session's post-mortem aggregate, sufficient —
/// together with the interval stream — to rebuild the full
/// [`likwid::perfctr::TimelineResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct DoneFrame {
    /// Session id.
    pub session: u64,
    /// Total measured virtual time in seconds.
    pub duration_s: f64,
    /// Number of intervals streamed.
    pub intervals: usize,
    /// Cross-session coverage scale applied to the extrapolated aggregates
    /// (exactly `1.0` for a session that never shared its cpus).
    pub time_scale: f64,
    /// Per-group raw aggregate counts (the interval deltas of each group
    /// telescope exactly to these).
    pub aggregate: Vec<GroupCounts>,
    /// Per-group coverage-extrapolated aggregate counts.
    pub extrapolated: Vec<GroupCounts>,
    /// Per-group aggregate results (events, derived metrics, diagnostics).
    pub results: Vec<ResultsFrame>,
}

/// Wire form of [`PerfCtrResults`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsFrame {
    /// Group name.
    pub group_name: String,
    /// Measured threads.
    pub cpus: Vec<usize>,
    /// `(event name, slot, per-cpu counts)`.
    pub events: Vec<(String, CounterSlot, Vec<u64>)>,
    /// `(metric name, per-cpu values)`.
    pub metrics: Vec<(String, Vec<f64>)>,
    /// Degradations recorded by the self-healing session.
    pub diagnostics: Vec<(String, String)>,
}

impl ResultsFrame {
    /// Capture a core result set for the wire.
    pub fn from_results(results: &PerfCtrResults) -> Self {
        ResultsFrame {
            group_name: results.group_name.clone(),
            cpus: results.cpus.clone(),
            events: results.events.clone(),
            metrics: results.metrics.clone(),
            diagnostics: results
                .diagnostics
                .iter()
                .map(|d| (d.subject.clone(), d.reason.clone()))
                .collect(),
        }
    }

    /// Rebuild the core result set.
    pub fn to_results(&self) -> PerfCtrResults {
        PerfCtrResults {
            group_name: self.group_name.clone(),
            cpus: self.cpus.clone(),
            events: self.events.clone(),
            metrics: self.metrics.clone(),
            diagnostics: self
                .diagnostics
                .iter()
                .map(|(subject, reason)| Diagnostic {
                    subject: subject.clone(),
                    reason: reason.clone(),
                })
                .collect(),
        }
    }
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection greeting.
    Hello {
        /// Daemon identity ([`SERVER_NAME`]).
        server: String,
        /// Protocol version.
        protocol: u64,
        /// Simulated machine preset id.
        machine: String,
    },
    /// Session admitted.
    Opened(OpenedFrame),
    /// One live interval.
    Interval(IntervalFrame),
    /// Session finished.
    Done(DoneFrame),
    /// Reply to `status`: the broker's observability snapshot.
    Status(DaemonStatus),
    /// A structured error; the connection survives.
    Error {
        /// Error class (`protocol`, `usage`, `internal`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// Reply to `ping`.
    Pong,
    /// Reply to `shutdown`.
    Ok,
}

fn usize_arr(values: &[usize]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::UInt(v as u64)).collect())
}

fn counts_arr(counts: &GroupCounts) -> JsonValue {
    JsonValue::Arr(
        counts
            .iter()
            .map(|per_cpu| JsonValue::Arr(per_cpu.iter().map(|&v| JsonValue::UInt(v)).collect()))
            .collect(),
    )
}

fn reals_arr(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::real(v)).collect())
}

fn parse_usize_arr(value: &JsonValue, what: &str) -> Result<Vec<usize>> {
    value
        .as_arr()
        .ok_or_else(|| LikwidError::Protocol(format!("{what}: expected array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| LikwidError::Protocol(format!("{what}: expected integer")))
        })
        .collect()
}

fn parse_counts_arr(value: &JsonValue, what: &str) -> Result<GroupCounts> {
    value
        .as_arr()
        .ok_or_else(|| LikwidError::Protocol(format!("{what}: expected array")))?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| LikwidError::Protocol(format!("{what}: expected array of arrays")))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| LikwidError::Protocol(format!("{what}: expected count")))
                })
                .collect()
        })
        .collect()
}

fn parse_reals_arr(value: &JsonValue, what: &str) -> Result<Vec<f64>> {
    value
        .as_arr()
        .ok_or_else(|| LikwidError::Protocol(format!("{what}: expected array")))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| LikwidError::Protocol(format!("{what}: expected real"))))
        .collect()
}

fn required<'v>(value: &'v JsonValue, name: &str) -> Result<&'v JsonValue> {
    value.get(name).ok_or_else(|| LikwidError::Protocol(format!("frame: missing '{name}'")))
}

fn required_u64(value: &JsonValue, name: &str) -> Result<u64> {
    required(value, name)?
        .as_u64()
        .ok_or_else(|| LikwidError::Protocol(format!("frame: '{name}' must be an integer")))
}

fn required_f64(value: &JsonValue, name: &str) -> Result<f64> {
    required(value, name)?
        .as_f64()
        .ok_or_else(|| LikwidError::Protocol(format!("frame: '{name}' must be a real")))
}

fn required_str(value: &JsonValue, name: &str) -> Result<String> {
    required(value, name)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| LikwidError::Protocol(format!("frame: '{name}' must be a string")))
}

impl Frame {
    /// Encode the frame as one NDJSON line (no trailing newline).
    pub fn to_json(&self) -> JsonValue {
        match self {
            Frame::Hello { server, protocol, machine } => obj(vec![
                ("frame", JsonValue::Str("hello".into())),
                ("server", JsonValue::Str(server.clone())),
                ("protocol", JsonValue::UInt(*protocol)),
                ("machine", JsonValue::Str(machine.clone())),
            ]),
            Frame::Opened(f) => obj(vec![
                ("frame", JsonValue::Str("opened".into())),
                ("session", JsonValue::UInt(f.session)),
                ("machine", JsonValue::Str(f.machine.clone())),
                ("cpus", usize_arr(&f.cpus)),
                ("socket_lock_owners", usize_arr(&f.socket_lock_owners)),
                ("interval_s", JsonValue::real(f.interval_s)),
                ("duration_s", JsonValue::real(f.duration_s)),
                ("uncore", JsonValue::Bool(f.uncore)),
                (
                    "groups",
                    JsonValue::Arr(
                        f.groups
                            .iter()
                            .map(|g| {
                                obj(vec![
                                    ("name", JsonValue::Str(g.name.clone())),
                                    (
                                        "events",
                                        JsonValue::Arr(
                                            g.events
                                                .iter()
                                                .map(|(name, slot)| {
                                                    JsonValue::Arr(vec![
                                                        JsonValue::Str(name.clone()),
                                                        JsonValue::Str(slot.name()),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "metrics",
                                        JsonValue::Arr(
                                            g.metrics
                                                .iter()
                                                .map(|m| JsonValue::Str(m.clone()))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Frame::Interval(f) => obj(vec![
                ("frame", JsonValue::Str("interval".into())),
                ("session", JsonValue::UInt(f.session)),
                ("index", JsonValue::UInt(f.index as u64)),
                ("group", JsonValue::UInt(f.group as u64)),
                ("t_start_s", JsonValue::real(f.t_start_s)),
                ("t_end_s", JsonValue::real(f.t_end_s)),
                ("counts", counts_arr(&f.counts)),
                ("metrics", JsonValue::Arr(f.metrics.iter().map(|row| reals_arr(row)).collect())),
            ]),
            Frame::Done(f) => obj(vec![
                ("frame", JsonValue::Str("done".into())),
                ("session", JsonValue::UInt(f.session)),
                ("duration_s", JsonValue::real(f.duration_s)),
                ("intervals", JsonValue::UInt(f.intervals as u64)),
                ("time_scale", JsonValue::real(f.time_scale)),
                ("aggregate", JsonValue::Arr(f.aggregate.iter().map(counts_arr).collect())),
                ("extrapolated", JsonValue::Arr(f.extrapolated.iter().map(counts_arr).collect())),
                (
                    "results",
                    JsonValue::Arr(
                        f.results
                            .iter()
                            .map(|r| {
                                obj(vec![
                                    ("group", JsonValue::Str(r.group_name.clone())),
                                    ("cpus", usize_arr(&r.cpus)),
                                    (
                                        "events",
                                        JsonValue::Arr(
                                            r.events
                                                .iter()
                                                .map(|(name, slot, counts)| {
                                                    JsonValue::Arr(vec![
                                                        JsonValue::Str(name.clone()),
                                                        JsonValue::Str(slot.name()),
                                                        JsonValue::Arr(
                                                            counts
                                                                .iter()
                                                                .map(|&v| JsonValue::UInt(v))
                                                                .collect(),
                                                        ),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "metrics",
                                        JsonValue::Arr(
                                            r.metrics
                                                .iter()
                                                .map(|(name, values)| {
                                                    JsonValue::Arr(vec![
                                                        JsonValue::Str(name.clone()),
                                                        reals_arr(values),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "diagnostics",
                                        JsonValue::Arr(
                                            r.diagnostics
                                                .iter()
                                                .map(|(subject, reason)| {
                                                    JsonValue::Arr(vec![
                                                        JsonValue::Str(subject.clone()),
                                                        JsonValue::Str(reason.clone()),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Frame::Status(s) => obj(vec![
                ("frame", JsonValue::Str("status".into())),
                (
                    "sessions",
                    JsonValue::Arr(
                        s.sessions
                            .iter()
                            .map(|sess| {
                                let mut members = vec![
                                    ("session", JsonValue::UInt(sess.id)),
                                    ("cpus", usize_arr(&sess.cpus)),
                                    ("phase", JsonValue::Str(sess.phase.clone())),
                                ];
                                if let Some(ticket) = sess.ticket {
                                    members.push(("ticket", JsonValue::UInt(ticket)));
                                }
                                members.push(("wall_extra_s", JsonValue::real(sess.wall_extra_s)));
                                obj(members)
                            })
                            .collect(),
                    ),
                ),
                (
                    "queue_depth",
                    JsonValue::Arr(
                        s.queue_depth
                            .iter()
                            .map(|&(cpu, depth)| {
                                JsonValue::Arr(vec![
                                    JsonValue::UInt(cpu as u64),
                                    JsonValue::UInt(depth as u64),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "uncore",
                    JsonValue::Arr(
                        s.uncore
                            .iter()
                            .map(|u| {
                                let mut members =
                                    vec![("socket", JsonValue::UInt(u64::from(u.socket)))];
                                if let Some(holder) = u.holder {
                                    members.push(("holder", JsonValue::UInt(holder)));
                                }
                                members.push((
                                    "waiters",
                                    JsonValue::Arr(
                                        u.waiters.iter().map(|&w| JsonValue::UInt(w)).collect(),
                                    ),
                                ));
                                obj(members)
                            })
                            .collect(),
                    ),
                ),
            ]),
            Frame::Error { kind, message } => obj(vec![
                ("frame", JsonValue::Str("error".into())),
                ("error", JsonValue::Str(kind.clone())),
                ("message", JsonValue::Str(message.clone())),
            ]),
            Frame::Pong => obj(vec![("frame", JsonValue::Str("pong".into()))]),
            Frame::Ok => obj(vec![("frame", JsonValue::Str("ok".into()))]),
        }
    }

    /// Encode as one NDJSON line including the trailing newline.
    pub fn to_line(&self) -> String {
        let mut line = self.to_json().encode();
        line.push('\n');
        line
    }

    /// Decode a frame from a parsed JSON object.
    pub fn from_json(value: &JsonValue) -> Result<Frame> {
        let kind = required_str(value, "frame")?;
        match kind.as_str() {
            "hello" => Ok(Frame::Hello {
                server: required_str(value, "server")?,
                protocol: required_u64(value, "protocol")?,
                machine: required_str(value, "machine")?,
            }),
            "opened" => {
                let groups = required(value, "groups")?
                    .as_arr()
                    .ok_or_else(|| LikwidError::Protocol("opened: groups must be array".into()))?
                    .iter()
                    .map(|g| {
                        let events = required(g, "events")?
                            .as_arr()
                            .ok_or_else(|| {
                                LikwidError::Protocol("opened: events must be array".into())
                            })?
                            .iter()
                            .map(|pair| {
                                let pair = pair.as_arr().ok_or_else(|| {
                                    LikwidError::Protocol("opened: bad event pair".into())
                                })?;
                                let name = pair
                                    .first()
                                    .and_then(JsonValue::as_str)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("opened: bad event name".into())
                                    })?
                                    .to_string();
                                let slot = pair
                                    .get(1)
                                    .and_then(JsonValue::as_str)
                                    .and_then(CounterSlot::parse)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("opened: bad counter slot".into())
                                    })?;
                                Ok((name, slot))
                            })
                            .collect::<Result<Vec<_>>>()?;
                        let metrics = required(g, "metrics")?
                            .as_arr()
                            .ok_or_else(|| {
                                LikwidError::Protocol("opened: metrics must be array".into())
                            })?
                            .iter()
                            .map(|m| {
                                m.as_str().map(str::to_string).ok_or_else(|| {
                                    LikwidError::Protocol("opened: bad metric name".into())
                                })
                            })
                            .collect::<Result<Vec<_>>>()?;
                        Ok(GroupSchema { name: required_str(g, "name")?, events, metrics })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Frame::Opened(OpenedFrame {
                    session: required_u64(value, "session")?,
                    machine: required_str(value, "machine")?,
                    cpus: parse_usize_arr(required(value, "cpus")?, "opened.cpus")?,
                    socket_lock_owners: parse_usize_arr(
                        required(value, "socket_lock_owners")?,
                        "opened.socket_lock_owners",
                    )?,
                    interval_s: required_f64(value, "interval_s")?,
                    duration_s: required_f64(value, "duration_s")?,
                    uncore: required(value, "uncore")?
                        .as_bool()
                        .ok_or_else(|| LikwidError::Protocol("opened: bad uncore flag".into()))?,
                    groups,
                }))
            }
            "interval" => Ok(Frame::Interval(IntervalFrame {
                session: required_u64(value, "session")?,
                index: required_u64(value, "index")? as usize,
                group: required_u64(value, "group")? as usize,
                t_start_s: required_f64(value, "t_start_s")?,
                t_end_s: required_f64(value, "t_end_s")?,
                counts: parse_counts_arr(required(value, "counts")?, "interval.counts")?,
                metrics: required(value, "metrics")?
                    .as_arr()
                    .ok_or_else(|| LikwidError::Protocol("interval: metrics must be array".into()))?
                    .iter()
                    .map(|row| parse_reals_arr(row, "interval.metrics"))
                    .collect::<Result<Vec<_>>>()?,
            })),
            "done" => {
                let results = required(value, "results")?
                    .as_arr()
                    .ok_or_else(|| LikwidError::Protocol("done: results must be array".into()))?
                    .iter()
                    .map(|r| {
                        let events = required(r, "events")?
                            .as_arr()
                            .ok_or_else(|| {
                                LikwidError::Protocol("done: events must be array".into())
                            })?
                            .iter()
                            .map(|triple| {
                                let triple = triple.as_arr().ok_or_else(|| {
                                    LikwidError::Protocol("done: bad event triple".into())
                                })?;
                                let name = triple
                                    .first()
                                    .and_then(JsonValue::as_str)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("done: bad event name".into())
                                    })?
                                    .to_string();
                                let slot = triple
                                    .get(1)
                                    .and_then(JsonValue::as_str)
                                    .and_then(CounterSlot::parse)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("done: bad counter slot".into())
                                    })?;
                                let counts = triple
                                    .get(2)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("done: missing event counts".into())
                                    })?
                                    .as_arr()
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("done: bad event counts".into())
                                    })?
                                    .iter()
                                    .map(|v| {
                                        v.as_u64().ok_or_else(|| {
                                            LikwidError::Protocol("done: bad count".into())
                                        })
                                    })
                                    .collect::<Result<Vec<_>>>()?;
                                Ok((name, slot, counts))
                            })
                            .collect::<Result<Vec<_>>>()?;
                        let metrics = required(r, "metrics")?
                            .as_arr()
                            .ok_or_else(|| {
                                LikwidError::Protocol("done: metrics must be array".into())
                            })?
                            .iter()
                            .map(|pair| {
                                let pair = pair.as_arr().ok_or_else(|| {
                                    LikwidError::Protocol("done: bad metric pair".into())
                                })?;
                                let name = pair
                                    .first()
                                    .and_then(JsonValue::as_str)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("done: bad metric name".into())
                                    })?
                                    .to_string();
                                let values = parse_reals_arr(
                                    pair.get(1).ok_or_else(|| {
                                        LikwidError::Protocol("done: missing metric values".into())
                                    })?,
                                    "done.metrics",
                                )?;
                                Ok((name, values))
                            })
                            .collect::<Result<Vec<_>>>()?;
                        let diagnostics = required(r, "diagnostics")?
                            .as_arr()
                            .ok_or_else(|| {
                                LikwidError::Protocol("done: diagnostics must be array".into())
                            })?
                            .iter()
                            .map(|pair| {
                                let pair = pair.as_arr().ok_or_else(|| {
                                    LikwidError::Protocol("done: bad diagnostic".into())
                                })?;
                                let subject = pair
                                    .first()
                                    .and_then(JsonValue::as_str)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("done: bad diagnostic".into())
                                    })?
                                    .to_string();
                                let reason = pair
                                    .get(1)
                                    .and_then(JsonValue::as_str)
                                    .ok_or_else(|| {
                                        LikwidError::Protocol("done: bad diagnostic".into())
                                    })?
                                    .to_string();
                                Ok((subject, reason))
                            })
                            .collect::<Result<Vec<_>>>()?;
                        Ok(ResultsFrame {
                            group_name: required_str(r, "group")?,
                            cpus: parse_usize_arr(required(r, "cpus")?, "done.cpus")?,
                            events,
                            metrics,
                            diagnostics,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Frame::Done(DoneFrame {
                    session: required_u64(value, "session")?,
                    duration_s: required_f64(value, "duration_s")?,
                    intervals: required_u64(value, "intervals")? as usize,
                    time_scale: required_f64(value, "time_scale")?,
                    aggregate: required(value, "aggregate")?
                        .as_arr()
                        .ok_or_else(|| {
                            LikwidError::Protocol("done: aggregate must be array".into())
                        })?
                        .iter()
                        .map(|c| parse_counts_arr(c, "done.aggregate"))
                        .collect::<Result<Vec<_>>>()?,
                    extrapolated: required(value, "extrapolated")?
                        .as_arr()
                        .ok_or_else(|| {
                            LikwidError::Protocol("done: extrapolated must be array".into())
                        })?
                        .iter()
                        .map(|c| parse_counts_arr(c, "done.extrapolated"))
                        .collect::<Result<Vec<_>>>()?,
                    results,
                }))
            }
            "status" => {
                let sessions = required(value, "sessions")?
                    .as_arr()
                    .ok_or_else(|| LikwidError::Protocol("status: sessions must be array".into()))?
                    .iter()
                    .map(|s| {
                        Ok(SessionStatus {
                            id: required_u64(s, "session")?,
                            cpus: parse_usize_arr(required(s, "cpus")?, "status.cpus")?,
                            phase: required_str(s, "phase")?,
                            ticket: s.get("ticket").and_then(JsonValue::as_u64),
                            wall_extra_s: required_f64(s, "wall_extra_s")?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let queue_depth = required(value, "queue_depth")?
                    .as_arr()
                    .ok_or_else(|| {
                        LikwidError::Protocol("status: queue_depth must be array".into())
                    })?
                    .iter()
                    .map(|pair| {
                        let pair = parse_usize_arr(pair, "status.queue_depth")?;
                        match pair.as_slice() {
                            [cpu, depth] => Ok((*cpu, *depth)),
                            _ => Err(LikwidError::Protocol(
                                "status: queue_depth entries are [cpu, depth] pairs".into(),
                            )),
                        }
                    })
                    .collect::<Result<Vec<_>>>()?;
                let uncore = required(value, "uncore")?
                    .as_arr()
                    .ok_or_else(|| LikwidError::Protocol("status: uncore must be array".into()))?
                    .iter()
                    .map(|u| {
                        Ok(UncoreStatus {
                            socket: required_u64(u, "socket")? as u32,
                            holder: u.get("holder").and_then(JsonValue::as_u64),
                            waiters: required(u, "waiters")?
                                .as_arr()
                                .ok_or_else(|| {
                                    LikwidError::Protocol("status: waiters must be array".into())
                                })?
                                .iter()
                                .map(|w| {
                                    w.as_u64().ok_or_else(|| {
                                        LikwidError::Protocol("status: bad waiter id".into())
                                    })
                                })
                                .collect::<Result<Vec<_>>>()?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Frame::Status(DaemonStatus { sessions, queue_depth, uncore }))
            }
            "error" => Ok(Frame::Error {
                kind: required_str(value, "error")?,
                message: required_str(value, "message")?,
            }),
            "pong" => Ok(Frame::Pong),
            "ok" => Ok(Frame::Ok),
            other => Err(LikwidError::Protocol(format!("unknown frame '{other}'"))),
        }
    }

    /// Decode a frame from one NDJSON line.
    pub fn from_line(line: &str) -> Result<Frame> {
        let value = JsonValue::parse(line.trim())
            .map_err(|e| LikwidError::Protocol(format!("malformed frame: {e}")))?;
        Frame::from_json(&value)
    }

    /// Classify a [`LikwidError`] into an error frame. The broker answers
    /// every failed request this way instead of tearing anything down.
    pub fn from_error(err: &LikwidError) -> Frame {
        // The wire carries the bare message: the client rebuilds the typed
        // error from `kind`, and the variant's Display re-adds its prefix.
        let (kind, message) = match err {
            LikwidError::Protocol(m) => ("protocol", m.clone()),
            LikwidError::Usage(m) => ("usage", m.clone()),
            other => ("internal", other.to_string()),
        };
        Frame::Error { kind: kind.to_string(), message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_request_round_trips() {
        let req = OpenRequest {
            machine: Some("westmere_ep_2s".into()),
            cpus: "S0:0-1".into(),
            group: "FLOPS_DP,MEM".into(),
            interval: "1ms".into(),
            duration: "10ms".into(),
        };
        let back = OpenRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
        let anon = OpenRequest { machine: None, ..req };
        assert_eq!(OpenRequest::from_json(&anon.to_json()).unwrap(), anon);
    }

    #[test]
    fn open_request_missing_fields_are_protocol_errors() {
        let cmd = obj(vec![("cmd", JsonValue::Str("open".into()))]);
        let err = OpenRequest::from_json(&cmd).unwrap_err();
        assert!(matches!(err, LikwidError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn frames_round_trip_through_ndjson_lines() {
        let frames = vec![
            Frame::Hello {
                server: SERVER_NAME.into(),
                protocol: PROTOCOL_VERSION,
                machine: "westmere_ep_2s".into(),
            },
            Frame::Opened(OpenedFrame {
                session: 7,
                machine: "westmere_ep_2s".into(),
                cpus: vec![0, 1, 12],
                socket_lock_owners: vec![0, 12],
                interval_s: 2.5e-3,
                duration_s: 10e-3,
                uncore: true,
                groups: vec![GroupSchema {
                    name: "MEM".into(),
                    events: vec![
                        ("UNC_QMC_NORMAL_READS_ANY".into(), CounterSlot::UncorePmc(0)),
                        ("INSTR_RETIRED_ANY".into(), CounterSlot::Fixed(0)),
                    ],
                    metrics: vec!["Memory bandwidth [MBytes/s]".into()],
                }],
            }),
            Frame::Interval(IntervalFrame {
                session: 7,
                index: 3,
                group: 0,
                t_start_s: 7.5e-3,
                t_end_s: 0.01,
                counts: vec![vec![u64::MAX, 0], vec![1, 2]],
                metrics: vec![vec![0.1 + 0.2, f64::NAN]],
            }),
            Frame::Done(DoneFrame {
                session: 7,
                duration_s: 0.01,
                intervals: 4,
                time_scale: 1.0,
                aggregate: vec![vec![vec![10, 20]]],
                extrapolated: vec![vec![vec![40, 80]]],
                results: vec![ResultsFrame {
                    group_name: "MEM".into(),
                    cpus: vec![0, 1],
                    events: vec![("E".into(), CounterSlot::Pmc(1), vec![40, 80])],
                    metrics: vec![("m".into(), vec![1.5, f64::INFINITY])],
                    diagnostics: vec![("cpu 3".into(), "dropped".into())],
                }],
            }),
            Frame::Status(DaemonStatus {
                sessions: vec![
                    SessionStatus {
                        id: 1,
                        cpus: vec![0, 1],
                        phase: "running".into(),
                        ticket: Some(4),
                        wall_extra_s: 2.5e-3,
                    },
                    SessionStatus {
                        id: 2,
                        cpus: vec![12],
                        phase: "waiting-uncore".into(),
                        ticket: None,
                        wall_extra_s: 0.0,
                    },
                ],
                queue_depth: vec![(0, 1), (1, 1), (12, 1)],
                uncore: vec![UncoreStatus { socket: 1, holder: Some(1), waiters: vec![2] }],
            }),
            Frame::Status(DaemonStatus::default()),
            Frame::Error { kind: "protocol".into(), message: "unknown group 'NOPE'".into() },
            Frame::Pong,
            Frame::Ok,
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(line.ends_with('\n') && line.matches('\n').count() == 1);
            let back = Frame::from_line(&line).unwrap();
            // NaN breaks PartialEq; compare through re-encoding, which is
            // deterministic and lossless.
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn error_frames_classify_the_error_kind() {
        let err = LikwidError::Protocol("bad".into());
        assert!(matches!(
            Frame::from_error(&err),
            Frame::Error { kind, .. } if kind == "protocol"
        ));
        let err = LikwidError::Usage("bad".into());
        assert!(matches!(Frame::from_error(&err), Frame::Error { kind, .. } if kind == "usage"));
    }

    #[test]
    fn malformed_lines_are_protocol_errors_not_panics() {
        for bad in ["", "{", "42", "{\"frame\":\"nope\"}", "{\"frame\":\"interval\"}"] {
            let err = Frame::from_line(bad).unwrap_err();
            assert!(matches!(err, LikwidError::Protocol(_)), "'{bad}' gave {err:?}");
        }
    }
}

//! The Unix-domain-socket front end of `likwid-perfctrd`.
//!
//! One listener thread accepts connections; each connection gets a scoped
//! handler thread speaking the NDJSON protocol of [`crate::protocol`]. A
//! handler greets with `hello`, then serves commands: `open` admits a
//! measurement session through the broker and streams its interval frames
//! until `done`; `status` answers with the broker's observability snapshot
//! (never blocking a measurement turn); `ping` answers `pong`; `shutdown`
//! stops the daemon. Any
//! write failure (the client vanished) aborts the in-flight session, which
//! releases its broker slot and uncore locks.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use likwid::Result;
use likwid_x86_machine::SimMachine;

use crate::broker::Daemon;
use crate::jsonv::JsonValue;
use crate::protocol::{Frame, OpenRequest, PROTOCOL_VERSION, SERVER_NAME};

/// Accept-loop poll interval while checking the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Serve the daemon protocol on a Unix socket until `shutdown` becomes
/// true (a client's `shutdown` command sets it). Removes a stale socket
/// file first; the socket file is removed again on exit.
pub fn serve(machine: &SimMachine, socket_path: &Path, shutdown: &AtomicBool) -> Result<()> {
    // Bind under a temporary name and rename into place once listening:
    // clients poll for the socket file, and between bind(2) and listen(2)
    // a connect would be refused. The rename is atomic, so the advertised
    // path only ever names a socket that is already accepting.
    let bind_path = {
        let mut name = socket_path.as_os_str().to_os_string();
        name.push(".bind");
        std::path::PathBuf::from(name)
    };
    let _ = std::fs::remove_file(&bind_path);
    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(&bind_path).map_err(|e| {
        likwid::LikwidError::Protocol(format!("bind {}: {e}", socket_path.display()))
    })?;
    std::fs::rename(&bind_path, socket_path).map_err(|e| {
        likwid::LikwidError::Protocol(format!("rename {}: {e}", socket_path.display()))
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| likwid::LikwidError::Protocol(format!("nonblocking: {e}")))?;

    let daemon = Daemon::new(machine);
    std::thread::scope(|scope| {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let daemon = &daemon;
                    scope.spawn(move || {
                        handle_connection(daemon, stream, shutdown);
                        // The scope unblocks on closure return, before the
                        // thread-local trace buffer's exit-time flush —
                        // hand broker spans over explicitly.
                        likwid::trace::flush_thread();
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // The scope joins the remaining handlers; wake any that poll.
    });
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

/// Serve one connection. Errors answering a request become `error` frames;
/// errors writing to the socket end the connection (and abort any
/// in-flight session via the handle's drop).
fn handle_connection(daemon: &Daemon<'_>, stream: UnixStream, shutdown: &AtomicBool) {
    // A finite read timeout lets an idle handler notice a daemon shutdown
    // instead of blocking the scope join forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    let hello = Frame::Hello {
        server: SERVER_NAME.to_string(),
        protocol: PROTOCOL_VERSION,
        machine: daemon.machine().preset().id().to_string(),
    };
    if writer.write_all(hello.to_line().as_bytes()).is_err() {
        return;
    }

    let mut line = String::new();
    loop {
        // On timeout, read_line may have consumed a partial line into the
        // buffer — keep it and retry; clear only after processing.
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let text = std::mem::take(&mut line);
        if text.trim().is_empty() {
            continue;
        }
        let command = match JsonValue::parse(text.trim()) {
            Ok(value) => value,
            Err(e) => {
                let frame = Frame::Error {
                    kind: "protocol".to_string(),
                    message: format!("malformed command: {e}"),
                };
                if writer.write_all(frame.to_line().as_bytes()).is_err() {
                    return;
                }
                continue;
            }
        };
        match command.get("cmd").and_then(JsonValue::as_str) {
            Some("open") => {
                if !serve_session(daemon, &command, &mut writer) {
                    return;
                }
            }
            Some("ping") => {
                if writer.write_all(Frame::Pong.to_line().as_bytes()).is_err() {
                    return;
                }
            }
            Some("status") => {
                // Answered from the broker's state mutex alone: the snapshot
                // never waits on a measurement turn, so a monitoring client
                // can poll while sessions stream.
                let frame = Frame::Status(daemon.status());
                if writer.write_all(frame.to_line().as_bytes()).is_err() {
                    return;
                }
            }
            Some("shutdown") => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = writer.write_all(Frame::Ok.to_line().as_bytes());
                return;
            }
            other => {
                let frame = Frame::Error {
                    kind: "protocol".to_string(),
                    message: match other {
                        Some(cmd) => format!("unknown command '{cmd}'"),
                        None => "missing 'cmd'".to_string(),
                    },
                };
                if writer.write_all(frame.to_line().as_bytes()).is_err() {
                    return;
                }
            }
        }
    }
}

/// Admit and stream one session. Returns false when the connection died
/// (the caller stops serving it); request errors are answered with an
/// `error` frame and return true — the broker and the connection stay
/// healthy.
fn serve_session(daemon: &Daemon<'_>, command: &JsonValue, writer: &mut UnixStream) -> bool {
    let outcome = (|| -> Result<()> {
        let request = OpenRequest::from_json(command)?;
        let mut handle = daemon.open(&request)?;
        let opened = Frame::Opened(handle.opened().clone());
        if writer.write_all(opened.to_line().as_bytes()).is_err() {
            return Ok(()); // connection gone; handle drop aborts the session
        }
        while let Some(interval) = handle.next_interval()? {
            let frame = Frame::Interval(interval);
            if writer.write_all(frame.to_line().as_bytes()).is_err() {
                return Ok(());
            }
        }
        let (done, _result) = handle.finish()?;
        let _ = writer.write_all(Frame::Done(done).to_line().as_bytes());
        Ok(())
    })();
    if let Err(e) = outcome {
        let frame = Frame::from_error(&e);
        return writer.write_all(frame.to_line().as_bytes()).is_ok();
    }
    true
}

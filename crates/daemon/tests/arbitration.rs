//! Socket-lock and turn arbitration: uncore sessions on the same socket
//! serialize FIFO, uncore sessions on disjoint sockets overlap, dropped
//! clients release every lock and slot (no leaks after repeated
//! connect/abandon cycles), and time-sliced sessions sharing cpus are
//! extrapolated by their measured coverage.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use likwid_daemon::{Daemon, DaemonStatus, OpenRequest};
use likwid_x86_machine::{MachinePreset, SimMachine};

fn request(cpus: &str, group: &str, interval: &str, duration: &str) -> OpenRequest {
    OpenRequest {
        machine: None,
        cpus: cpus.to_string(),
        group: group.to_string(),
        interval: interval.to_string(),
        duration: duration.to_string(),
    }
}

/// The machine's hardware threads on one socket, as a pin-list string.
fn socket_cpus(machine: &SimMachine, socket: u32, count: usize) -> String {
    let topo = machine.topology();
    let cpus: Vec<String> = (0..machine.num_hw_threads())
        .filter(|&cpu| topo.hw_thread(cpu).map(|t| t.socket == socket).unwrap_or(false))
        .take(count)
        .map(|cpu| cpu.to_string())
        .collect();
    assert_eq!(cpus.len(), count, "socket {socket} has at least {count} hw threads");
    cpus.join(",")
}

/// Drive a session to completion and return its interval count.
fn run_to_completion(daemon: &Daemon<'_>, request: &OpenRequest) -> usize {
    let mut handle = daemon.open(request).expect("session admitted");
    let mut n = 0;
    while handle.next_interval().expect("interval").is_some() {
        n += 1;
    }
    let (done, _result) = handle.finish().expect("finish");
    assert_eq!(done.intervals, n);
    n
}

fn wait_for(mut condition: impl FnMut() -> bool, what: &str) {
    for _ in 0..2000 {
        if condition() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn same_socket_uncore_sessions_serialize_fifo() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let cpus = socket_cpus(&machine, 0, 2);

    // The holder takes socket 0's uncore lock at admission.
    let mut holder = daemon.open(&request(&cpus, "MEM", "2ms", "6ms")).expect("holder admitted");
    assert_eq!(daemon.stats().uncore_locks_held, 1);

    // Two more uncore sessions on the same socket queue behind it, in
    // arrival order; their `open` blocks, so each runs on its own thread.
    let order = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let spawn_waiter = |tag: &'static str| {
            let daemon = &daemon;
            let order = &order;
            let cpus = cpus.clone();
            scope.spawn(move || {
                let req = request(&cpus, "MEM", "2ms", "6ms");
                let mut handle = daemon.open(&req).expect("waiter admitted");
                order.lock().unwrap().push(tag);
                while handle.next_interval().expect("interval").is_some() {}
                handle.finish().expect("finish");
            })
        };
        spawn_waiter("first");
        wait_for(|| daemon.stats().uncore_waiters == 1, "first waiter queued");
        spawn_waiter("second");
        wait_for(|| daemon.stats().uncore_waiters == 2, "second waiter queued");

        // While the lock is held neither waiter is admitted.
        while holder.next_interval().expect("interval").is_some() {}
        assert!(order.lock().unwrap().is_empty(), "waiters blocked while the lock is held");
        holder.finish().expect("finish");
    });
    assert_eq!(*order.lock().unwrap(), vec!["first", "second"], "FIFO grant order");
    assert!(daemon.is_quiescent());
    assert_eq!(daemon.stats().finished, 3);
}

#[test]
fn disjoint_socket_uncore_sessions_overlap() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);

    // Both admissions succeed immediately — no cross-socket serialization.
    let h0 = daemon
        .open(&request(&socket_cpus(&machine, 0, 2), "MEM", "2ms", "6ms"))
        .expect("socket 0 session");
    let h1 = daemon
        .open(&request(&socket_cpus(&machine, 1, 2), "MEM", "2ms", "6ms"))
        .expect("socket 1 session");
    let stats = daemon.stats();
    assert_eq!(stats.uncore_locks_held, 2, "one lock per socket, held concurrently");
    assert_eq!(stats.uncore_waiters, 0);
    assert_eq!(stats.live, 2);

    // They interleave interval-by-interval without ever waiting on each
    // other (disjoint cpu sets: a single thread can alternate freely).
    let mut handles = [h0, h1];
    loop {
        let mut progressed = false;
        for handle in &mut handles {
            if handle.next_interval().expect("interval").is_some() {
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for handle in handles {
        let (done, result) = handle.finish().expect("finish");
        // Disjoint cpu sets: never time-sliced, coverage scale is exactly 1.
        assert_eq!(done.time_scale, 1.0);
        assert_eq!(result.aggregate, result.extrapolated);
    }
    assert!(daemon.is_quiescent());
}

#[test]
fn dropped_handle_releases_locks_and_slots() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let cpus = socket_cpus(&machine, 0, 2);

    let mut handle = daemon.open(&request(&cpus, "MEM", "2ms", "6ms")).expect("admitted");
    handle.next_interval().expect("one interval");
    assert_eq!(daemon.stats().uncore_locks_held, 1);
    drop(handle);

    assert!(daemon.is_quiescent(), "dropping the handle releases the lock and slot");
    let stats = daemon.stats();
    assert_eq!(stats.aborted, 1);
    assert_eq!(stats.finished, 0);

    // The lock is immediately grantable again.
    run_to_completion(&daemon, &request(&cpus, "MEM", "2ms", "6ms"));
    assert_eq!(daemon.stats().finished, 1);
}

#[test]
fn hundred_connect_abandon_cycles_leak_nothing() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let uncore_cpus = socket_cpus(&machine, 0, 1);

    for i in 0..100 {
        // Alternate core-only and uncore sessions; abandon at different
        // stages of their lifecycle.
        let req = if i % 2 == 0 {
            request("0,1", "FLOPS_DP", "2ms", "6ms")
        } else {
            request(&uncore_cpus, "MEM", "2ms", "6ms")
        };
        let mut handle = daemon.open(&req).expect("admitted");
        for _ in 0..(i % 3) {
            handle.next_interval().expect("interval");
        }
        drop(handle);
    }
    assert!(daemon.is_quiescent(), "100 abandoned sessions must leak no slot or lock");
    let stats = daemon.stats();
    assert_eq!(stats.opened, 100);
    assert_eq!(stats.aborted, 100);
    assert_eq!(stats.uncore_locks_held, 0);
    assert_eq!(stats.uncore_waiters, 0);

    // And the broker still works.
    assert_eq!(run_to_completion(&daemon, &request(&uncore_cpus, "MEM", "2ms", "6ms")), 3);
}

#[test]
fn shared_cpu_sessions_time_slice_with_coverage_extrapolation() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);

    // Two core-only sessions on the same cpu: the broker's tickets force
    // strict alternation, so each session measures half the combined wall
    // time. Each session is driven by its own thread (as each connection
    // handler would); the tickets alone determine the schedule. Session
    // b's admission (programming its counters takes a turn) waits for a's
    // first ticket renewal, so b is opened on its own thread too; its slot
    // exists — and accrues foreign wall time — as soon as `open` is
    // called, which the `live == 2` wait below pins down before a runs.
    let mut a = daemon.open(&request("0", "FLOPS_DP", "2ms", "6ms")).expect("a admitted");
    let (done_a, result_a, done_b, result_b) = std::thread::scope(|scope| {
        let driver_b = scope.spawn(|| {
            let mut b = daemon.open(&request("0", "FLOPS_DP", "2ms", "6ms")).expect("b admitted");
            while b.next_interval().expect("b interval").is_some() {}
            b.finish().expect("b finish")
        });
        wait_for(|| daemon.stats().live == 2, "b's slot admitted");
        while a.next_interval().expect("a interval").is_some() {}
        let (done_a, result_a) = a.finish().expect("a finish");
        let (done_b, result_b) = driver_b.join().expect("driver b");
        (done_a, result_a, done_b, result_b)
    });

    // The ticket order is deterministic: a1, b-admission, a2, b1, a3
    // (a parks), b2, b3. b is charged all three of a's intervals — 6 ms
    // foreign over 6 ms measured; the boundary walks are identical, so
    // the ratio is exactly 2. a is charged b1 only (it parks before b2).
    assert_eq!(done_b.time_scale, 2.0);
    assert!((done_a.time_scale - (1.0 + 2.0 / 6.0)).abs() < 1e-12, "{}", done_a.time_scale);

    // Extrapolated counts are the raw aggregates scaled by the coverage
    // ratio (rounded per counter).
    for (result, scale) in [(&result_b, done_b.time_scale), (&result_a, done_a.time_scale)] {
        for (agg, extra) in result.aggregate.iter().zip(&result.extrapolated) {
            for (per_cpu_raw, per_cpu_scaled) in agg.iter().zip(extra) {
                for (&raw, &scaled) in per_cpu_raw.iter().zip(per_cpu_scaled) {
                    assert_eq!(scaled, (raw as f64 * scale).round() as u64);
                }
            }
        }
    }
    assert!(daemon.is_quiescent());
}

#[test]
fn concurrent_disjoint_core_sessions_never_wait() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);

    // Eight sessions on eight distinct cpus, all driven concurrently; none
    // shares a cpu, so every next_interval proceeds without a turn wait
    // and every coverage scale is exactly 1. The barrier holds every
    // session open until all eight are admitted.
    let completed = AtomicUsize::new(0);
    let barrier = std::sync::Barrier::new(8);
    std::thread::scope(|scope| {
        for cpu in 0..8 {
            let daemon = &daemon;
            let completed = &completed;
            let barrier = &barrier;
            scope.spawn(move || {
                let req = request(&cpu.to_string(), "FLOPS_DP", "1ms", "5ms");
                let mut handle = daemon.open(&req).expect("admitted");
                barrier.wait();
                while handle.next_interval().expect("interval").is_some() {}
                let (done, _) = handle.finish().expect("finish");
                assert_eq!(done.time_scale, 1.0, "disjoint sessions are never sliced");
                completed.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(completed.load(Ordering::SeqCst), 8);
    assert_eq!(daemon.stats().peak_live, 8, "all eight sessions were live at once");
    assert!(daemon.is_quiescent());
}

#[test]
fn status_snapshots_sessions_queues_and_uncore_without_blocking() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    assert_eq!(daemon.status(), DaemonStatus::default(), "idle broker, empty snapshot");

    let cpus = socket_cpus(&machine, 0, 2);
    let holder = daemon.open(&request(&cpus, "MEM", "2ms", "6ms")).expect("holder admitted");
    let core = daemon.open(&request("12", "FLOPS_DP", "2ms", "6ms")).expect("core admitted");

    std::thread::scope(|scope| {
        // A second uncore session on the same socket queues behind the
        // holder; its `open` blocks on the lock, so it runs on its own
        // thread while the main thread inspects the snapshot.
        scope.spawn(|| {
            drop(daemon.open(&request(&cpus, "MEM", "2ms", "6ms")).expect("waiter admitted"));
        });
        wait_for(|| daemon.stats().uncore_waiters == 1, "waiter queued");

        // status() takes only the state mutex: it answers while the
        // holder's turn is live and the waiter is parked in arbitration.
        let status = daemon.status();
        assert_eq!(status.sessions.len(), 3);
        assert!(status.sessions.windows(2).all(|w| w[0].id < w[1].id), "id-ordered");
        let phases: Vec<&str> = status.sessions.iter().map(|s| s.phase.as_str()).collect();
        assert_eq!(phases.iter().filter(|p| **p == "waiting-uncore").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "running").count(), 2);
        for session in &status.sessions {
            assert_eq!(session.ticket.is_some(), session.phase == "running");
        }

        // Ticket-queue depth covers exactly the running sessions' cpus.
        let holder_cpus: Vec<usize> = cpus.split(',').map(|c| c.parse().unwrap()).collect();
        let mut expected: Vec<(usize, usize)> =
            holder_cpus.iter().map(|&c| (c, 1)).chain([(12, 1)]).collect();
        expected.sort_unstable();
        assert_eq!(status.queue_depth, expected);

        // Socket 0's lock: held by the first session, one queued waiter.
        assert_eq!(status.uncore.len(), 1);
        let uncore = &status.uncore[0];
        assert_eq!(uncore.socket, 0);
        assert_eq!(uncore.holder, Some(status.sessions[0].id));
        assert_eq!(uncore.waiters.len(), 1);

        // Release everything so the waiter's open() can be granted.
        drop(holder);
        drop(core);
    });
    assert!(daemon.is_quiescent());
    assert_eq!(daemon.status(), DaemonStatus::default(), "quiescent broker, empty snapshot");
}

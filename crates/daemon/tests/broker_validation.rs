//! Bad-request suite: every malformed `open` request is answered with a
//! typed [`LikwidError::Protocol`] — the broker never panics on client
//! input, and a rejected request leaves the broker quiescent (no slot, no
//! lock, no queue position leaks).

use likwid::LikwidError;
use likwid_daemon::{Daemon, OpenRequest};
use likwid_x86_machine::{MachinePreset, SimMachine};

fn request(cpus: &str, group: &str, interval: &str, duration: &str) -> OpenRequest {
    OpenRequest {
        machine: None,
        cpus: cpus.to_string(),
        group: group.to_string(),
        interval: interval.to_string(),
        duration: duration.to_string(),
    }
}

fn assert_protocol_error(daemon: &Daemon<'_>, request: &OpenRequest, needle: &str) {
    match daemon.validate(request) {
        Err(LikwidError::Protocol(msg)) => {
            assert!(
                msg.contains(needle),
                "expected protocol error mentioning '{needle}', got: {msg}"
            );
        }
        Err(other) => panic!("expected LikwidError::Protocol, got: {other:?}"),
        Ok(_) => panic!("expected rejection for {request:?}"),
    }
}

#[test]
fn unknown_machine_preset_is_a_protocol_error() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let mut req = request("0", "FLOPS_DP", "1ms", "10ms");
    req.machine = Some("pdp-11".to_string());
    assert_protocol_error(&daemon, &req, "unknown machine preset");
}

#[test]
fn machine_mismatch_is_a_protocol_error() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let mut req = request("0", "FLOPS_DP", "1ms", "10ms");
    req.machine = Some(MachinePreset::Core2Quad.id().to_string());
    assert_protocol_error(&daemon, &req, "machine mismatch");
}

#[test]
fn matching_machine_id_is_accepted() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let mut req = request("0", "FLOPS_DP", "1ms", "10ms");
    req.machine = Some(MachinePreset::WestmereEp2S.id().to_string());
    let config = daemon.validate(&req).expect("matching preset admits");
    assert_eq!(config.cpus, vec![0]);
}

#[test]
fn malformed_pin_list_is_a_protocol_error() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    for bad in ["banana", "0-", "3-1", "S9:0"] {
        assert_protocol_error(&daemon, &request(bad, "FLOPS_DP", "1ms", "10ms"), "cpus:");
    }
}

#[test]
fn out_of_range_cpu_is_a_protocol_error() {
    let machine = SimMachine::new(MachinePreset::Core2Duo);
    let daemon = Daemon::new(&machine);
    assert_protocol_error(&daemon, &request("0,99", "FLOPS_DP", "1ms", "10ms"), "cpus:");
}

#[test]
fn unknown_group_is_a_protocol_error() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    assert_protocol_error(&daemon, &request("0", "NO_SUCH_GROUP", "1ms", "10ms"), "group:");
}

#[test]
fn malformed_custom_event_set_is_a_protocol_error() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    assert_protocol_error(&daemon, &request("0", "BOGUS_EVENT:PMC9", "1ms", "10ms"), "group:");
}

#[test]
fn bad_interval_and_duration_are_protocol_errors() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    for bad in ["0", "0ms", "bogus", "", "nan", "-1ms"] {
        assert_protocol_error(&daemon, &request("0", "FLOPS_DP", bad, "10ms"), "interval:");
        assert_protocol_error(&daemon, &request("0", "FLOPS_DP", "1ms", bad), "duration:");
    }
}

#[test]
fn interval_overflow_is_a_protocol_error() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    assert_protocol_error(&daemon, &request("0", "FLOPS_DP", "1us", "1000s"), "sampling points");
}

#[test]
fn rejected_requests_leak_nothing_and_broker_stays_healthy() {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let daemon = Daemon::new(&machine);
    let bad = [
        request("bogus", "FLOPS_DP", "1ms", "10ms"),
        request("0", "NO_SUCH_GROUP", "1ms", "10ms"),
        request("0", "MEM", "0ms", "10ms"),
        request("0", "MEM", "1ms", "never"),
    ];
    for req in &bad {
        assert!(daemon.validate(req).is_err());
        assert!(daemon.open(req).is_err());
    }
    assert!(daemon.is_quiescent(), "rejected requests must not leak broker state");
    let stats = daemon.stats();
    assert_eq!(stats.opened, 0, "validation rejects before admission");

    // The broker still serves a good session after the volley of bad ones.
    let mut handle = daemon.open(&request("0", "FLOPS_DP", "2ms", "6ms")).expect("still healthy");
    let mut intervals = 0;
    while handle.next_interval().expect("interval").is_some() {
        intervals += 1;
    }
    assert_eq!(intervals, 3);
    let (done, _result) = handle.finish().expect("finish");
    assert_eq!(done.intervals, 3);
    assert!(daemon.is_quiescent());
}

//! End-to-end socket round trip: a real `likwid-perfctrd` server on a Unix
//! socket, driven by [`SocketClient`] — session streaming, ping/pong,
//! error frames for bad requests, and shutdown.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use likwid::LikwidError;
use likwid_daemon::jsonv::{obj, JsonValue};
use likwid_daemon::{Frame, OpenRequest, SocketClient};
use likwid_x86_machine::{MachinePreset, SimMachine};

fn socket_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("likwid-perfctrd-test-{tag}-{}.sock", std::process::id()));
    path
}

fn request(cpus: &str, group: &str) -> OpenRequest {
    OpenRequest {
        machine: None,
        cpus: cpus.to_string(),
        group: group.to_string(),
        interval: "2ms".to_string(),
        duration: "6ms".to_string(),
    }
}

/// Run `body` against a live server, then shut the server down. A panic
/// in `body` still stops the server (via the shutdown flag) before the
/// scope joins it, so a failed assertion fails the test instead of
/// deadlocking the join.
fn with_server(tag: &str, body: impl FnOnce(&std::path::Path)) {
    let machine = SimMachine::new(MachinePreset::WestmereEp2S);
    let path = socket_path(tag);
    let shutdown = AtomicBool::new(false);
    let outcome = std::thread::scope(|scope| {
        let server = {
            let machine = &machine;
            let path = path.clone();
            let shutdown = &shutdown;
            scope.spawn(move || likwid_daemon::server::serve(machine, &path, shutdown))
        };
        // Wait for the socket to appear.
        for _ in 0..2000 {
            if path.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&path)));
        if outcome.is_ok() && !shutdown.load(Ordering::SeqCst) {
            let (mut client, _) = SocketClient::connect(&path).expect("shutdown connect");
            client.send(&obj(vec![("cmd", JsonValue::Str("shutdown".into()))])).expect("send");
            assert!(matches!(client.next_frame().expect("ok frame"), Frame::Ok));
        } else {
            shutdown.store(true, Ordering::SeqCst);
        }
        server.join().expect("server thread").expect("server exits cleanly");
        outcome
    });
    if let Err(panic) = outcome {
        std::panic::resume_unwind(panic);
    }
    assert!(!path.exists(), "server removes its socket file on exit");
}

#[test]
fn hello_ping_session_and_shutdown() {
    with_server("roundtrip", |path| {
        let (mut client, hello) = SocketClient::connect(path).expect("connect");
        match hello {
            Frame::Hello { server, protocol, machine } => {
                assert_eq!(server, "likwid-perfctrd");
                assert_eq!(protocol, 1);
                assert_eq!(machine, MachinePreset::WestmereEp2S.id());
            }
            other => panic!("expected hello, got {other:?}"),
        }

        client.send(&obj(vec![("cmd", JsonValue::Str("ping".into()))])).expect("send ping");
        assert!(matches!(client.next_frame().expect("pong"), Frame::Pong));

        let mut frames = Vec::new();
        let accumulator = client
            .run_session(&request("0,1", "FLOPS_DP"), |frame| {
                frames.push(format!("{frame:?}").split('(').next().unwrap().to_string());
            })
            .expect("session runs");
        assert_eq!(accumulator.intervals().len(), 3);
        accumulator.verify_telescoping().expect("deltas telescope to the aggregate");
        let result = accumulator.result().expect("result");
        assert_eq!(result.cpus, vec![0, 1]);
        assert_eq!(result.intervals.len(), 3);
        // The callback saw the full live stream, in order.
        assert_eq!(frames.first().map(String::as_str), Some("Opened"));
        assert_eq!(frames.last().map(String::as_str), Some("Done"));
        assert_eq!(frames.iter().filter(|f| f.as_str() == "Interval").count(), 3);

        // The connection survives a completed session: run another.
        let accumulator = client.run_session(&request("2", "MEM"), |_| {}).expect("uncore runs");
        accumulator.verify_telescoping().expect("uncore deltas telescope");
    });
}

#[test]
fn bad_requests_get_typed_error_frames_and_the_connection_survives() {
    with_server("badreq", |path| {
        let (mut client, _hello) = SocketClient::connect(path).expect("connect");

        let err = client.run_session(&request("0", "NO_SUCH_GROUP"), |_| {}).unwrap_err();
        match err {
            LikwidError::Protocol(msg) => assert!(msg.contains("group"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }

        // Malformed JSON gets an error frame, not a dropped connection.
        client.send(&JsonValue::Str("not an object".into())).expect("send");
        match client.next_frame().expect("error frame") {
            Frame::Error { kind, .. } => assert_eq!(kind, "protocol"),
            other => panic!("expected error frame, got {other:?}"),
        }

        // Unknown commands too.
        client.send(&obj(vec![("cmd", JsonValue::Str("dance".into()))])).expect("send");
        match client.next_frame().expect("error frame") {
            Frame::Error { kind, message } => {
                assert_eq!(kind, "protocol");
                assert!(message.contains("dance"), "{message}");
            }
            other => panic!("expected error frame, got {other:?}"),
        }

        // After all that abuse the connection still serves a session.
        let accumulator = client.run_session(&request("0", "FLOPS_DP"), |_| {}).expect("runs");
        assert_eq!(accumulator.intervals().len(), 3);
    });
}

#[test]
fn concurrent_clients_core_and_uncore() {
    with_server("concurrent", |path| {
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for i in 0..6 {
                workers.push(scope.spawn(move || {
                    let (mut client, _hello) = SocketClient::connect(path).expect("connect");
                    // Disjoint cpus; sessions 0/3 take socket-0 uncore
                    // locks and serialize, the rest run core-only.
                    let group = if i % 3 == 0 { "MEM" } else { "FLOPS_DP" };
                    let accumulator = client
                        .run_session(&request(&i.to_string(), group), |_| {})
                        .expect("session runs");
                    accumulator.verify_telescoping().expect("telescoping");
                    accumulator.result().expect("result").intervals.len()
                }));
            }
            for worker in workers {
                assert_eq!(worker.join().expect("worker"), 3);
            }
        });
    });
}

#[test]
fn dropped_connection_mid_stream_frees_the_daemon() {
    with_server("drop", |path| {
        // Open a session and vanish after the first frame: the server-side
        // write eventually fails and the handle drop releases the slot.
        {
            let (mut client, _hello) = SocketClient::connect(path).expect("connect");
            client.send(&request("0,1", "MEM").to_json()).expect("send open");
            let frame = client.next_frame().expect("opened");
            assert!(matches!(frame, Frame::Opened(_)));
            // Drop the client here, mid-stream.
        }
        // A new client can immediately take the same uncore locks — the
        // abandoned session cannot hold them for long.
        let (mut client, _hello) = SocketClient::connect(path).expect("connect");
        let accumulator =
            client.run_session(&request("0,1", "MEM"), |_| {}).expect("locks were released");
        assert_eq!(accumulator.intervals().len(), 3);
    });
}

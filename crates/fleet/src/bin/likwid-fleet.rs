//! The `likwid-fleet` binary: parallel matrix sweeps with memoization and
//! perf-regression tracking. See [`likwid_fleet::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(likwid_fleet::cli::fleet_main(&args));
}

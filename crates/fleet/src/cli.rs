//! The `likwid-fleet` command line: `run` / `compare` / `ls`.
//!
//! `run` expands the sweep named by the axis flags, executes it (work
//! stealing, optional memoization) and renders the deterministic
//! cross-point report; execution statistics go to stderr so stdout stays
//! byte-identical between cold and warm runs. `compare` diffs two
//! trajectory files and exits nonzero on regression. `ls` lists the memo
//! store of the active code epoch.

use std::fs;

use likwid::{ArgSpec, LikwidError, ParsedArgs, Result};
use likwid_workloads::openmp::CompilerPersonality;
use likwid_workloads::parse_size;
use likwid_x86_machine::MachinePreset;

use crate::memo::MemoStore;
use crate::report::fleet_report;
use crate::sched::{default_workers, run_sweep, RunOptions};
use crate::spec::{PlacementAxis, PrefetcherState, SeedRule, SweepSpec, ThreadsAxis, WorkloadSpec};
use crate::trajectory::{compare, compare_report, CompareConfig, Trajectory};

/// Exit code of a `compare` that found regressions.
pub const EXIT_REGRESSED: i32 = 2;

/// The argument specification of `likwid-fleet`.
pub fn fleet_spec() -> ArgSpec {
    let spec = ArgSpec::new(
        "likwid-fleet",
        "experiment fleet runner: parallel matrix sweeps with memoization and regression tracking",
    )
    .machine_flag()
    .flag(
        "-t",
        None,
        Some("kernels"),
        "workload axis: kernel names, or 'stream' for the paper's OpenMP triad",
    )
    .flag("-b", None, Some("size"), "working set per kernel (e.g. 16MB; default 16MB)")
    .flag(
        "-p",
        None,
        Some("placements"),
        "placement axis: unpinned, scatter, kmp-scatter, pin:0.1.2",
    )
    .flag("-C", None, Some("compilers"), "compiler personality axis: icc, gcc")
    .flag("-F", None, Some("states"), "prefetcher axis: on, off")
    .flag("-N", None, Some("threads"), "thread-count axis: comma list, or 'all' for 1..=hw threads")
    .flag("-n", None, Some("samples"), "samples per point (default 1)")
    .flag("-g", None, Some("group|EVENT:CTR,..."), "measure this event group on every point")
    .flag("-T", None, Some("interval"), "timeline mode with this interval on every point")
    .flag("--seed", None, Some("n"), "base seed; each point runs at seed^threads (default 0)")
    .flag("-W", Some("--workers"), Some("n"), "scheduler worker threads")
    .flag("--store", None, Some("dir"), "memoize results in this store; re-runs replay for free")
    .flag("--epoch", None, Some("tag"), "override the memo code-epoch tag")
    .flag("--trajectory", None, Some("file"), "also write the machine-readable trajectory here")
    .flag(
        "--threshold",
        None,
        Some("rel"),
        "compare: minimum relative change to flag (default 0.05)",
    )
    .flag(
        "--inject",
        None,
        Some("spec"),
        "arm this fault plan on every point (disables memoization)",
    );
    likwid::trace::trace_flag(spec)
        .positional("command", "run (default) | compare BASELINE CURRENT | ls", true)
        .note(likwid::perfctr::multiplex_note())
        .note(
            "The axis flags take comma-separated lists and sweep their cartesian product. \
         Reports are deterministic: a fully memoized re-run renders byte-identical output \
         (execution statistics go to stderr).",
        )
}

fn split_list(text: &str) -> Vec<&str> {
    text.split(',').map(str::trim).filter(|s| !s.is_empty()).collect()
}

fn parse_presets(parsed: &ParsedArgs) -> Result<Vec<MachinePreset>> {
    let text = parsed.value("-M").unwrap_or("core2-quad");
    split_list(text)
        .into_iter()
        .map(|id| {
            MachinePreset::from_id(id)
                .ok_or_else(|| LikwidError::Usage(format!("unknown machine preset '{id}'")))
        })
        .collect()
}

fn parse_workloads(parsed: &ParsedArgs) -> Result<Vec<WorkloadSpec>> {
    let bytes = match parsed.value("-b") {
        Some(text) => parse_size(text)
            .ok_or_else(|| LikwidError::Usage(format!("-b: cannot parse size '{text}'")))?,
        None => 16 << 20,
    };
    split_list(parsed.value("-t").unwrap_or("triad"))
        .into_iter()
        .map(|name| {
            Ok(if name == "stream" {
                WorkloadSpec::StreamTriad
            } else {
                WorkloadSpec::Kernel { name: name.to_string(), working_set_bytes: bytes, passes: 1 }
            })
        })
        .collect()
}

fn parse_placements(parsed: &ParsedArgs) -> Result<Vec<PlacementAxis>> {
    let Some(text) = parsed.value("-p") else { return Ok(vec![PlacementAxis::Scatter]) };
    split_list(text)
        .into_iter()
        .map(|token| match token {
            "unpinned" => Ok(PlacementAxis::Unpinned),
            "scatter" => Ok(PlacementAxis::Scatter),
            "kmp-scatter" => Ok(PlacementAxis::KmpScatter),
            _ => match token.strip_prefix("pin:") {
                Some(list) => list
                    .split('.')
                    .map(|c| {
                        c.parse::<usize>().map_err(|_| {
                            LikwidError::Usage(format!("-p: bad cpu '{c}' in '{token}'"))
                        })
                    })
                    .collect::<Result<Vec<usize>>>()
                    .map(PlacementAxis::Pin),
                None => Err(LikwidError::Usage(format!(
                    "-p: unknown placement '{token}' (unpinned, scatter, kmp-scatter, pin:0.1.2)"
                ))),
            },
        })
        .collect()
}

fn parse_personalities(parsed: &ParsedArgs) -> Result<Vec<CompilerPersonality>> {
    let Some(text) = parsed.value("-C") else { return Ok(Vec::new()) };
    split_list(text)
        .into_iter()
        .map(|token| match token {
            "icc" => Ok(CompilerPersonality::IntelIcc),
            "gcc" => Ok(CompilerPersonality::Gcc),
            _ => Err(LikwidError::Usage(format!("-C: unknown compiler '{token}' (icc, gcc)"))),
        })
        .collect()
}

fn parse_prefetchers(parsed: &ParsedArgs) -> Result<Vec<PrefetcherState>> {
    let Some(text) = parsed.value("-F") else { return Ok(Vec::new()) };
    split_list(text)
        .into_iter()
        .map(|token| match token {
            "on" => Ok(PrefetcherState::Enabled),
            "off" => Ok(PrefetcherState::Disabled),
            _ => {
                Err(LikwidError::Usage(format!("-F: unknown prefetcher state '{token}' (on, off)")))
            }
        })
        .collect()
}

fn parse_threads(parsed: &ParsedArgs) -> Result<ThreadsAxis> {
    match parsed.value("-N") {
        None | Some("all") => Ok(ThreadsAxis::AllHwThreads),
        Some(text) => split_list(text)
            .into_iter()
            .map(|t| {
                t.parse::<usize>()
                    .map_err(|_| LikwidError::Usage(format!("-N: bad thread count '{t}'")))
            })
            .collect::<Result<Vec<usize>>>()
            .map(ThreadsAxis::Counts),
    }
}

fn parse_count(parsed: &ParsedArgs, flag: &str, default: usize) -> Result<usize> {
    match parsed.value(flag) {
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| LikwidError::Usage(format!("{flag}: bad count '{text}'"))),
        None => Ok(default),
    }
}

/// Build the sweep named by the axis flags.
pub fn sweep_from_args(parsed: &ParsedArgs) -> Result<SweepSpec> {
    let seed = match parsed.value("--seed") {
        Some(text) => text
            .parse::<u64>()
            .map_err(|_| LikwidError::Usage(format!("--seed: bad seed '{text}'")))?,
        None => 0,
    };
    Ok(SweepSpec {
        workloads: parse_workloads(parsed)?,
        presets: parse_presets(parsed)?,
        personalities: parse_personalities(parsed)?,
        placements: parse_placements(parsed)?,
        prefetchers: parse_prefetchers(parsed)?,
        threads: parse_threads(parsed)?,
        samples: parse_count(parsed, "-n", 1)?,
        seed: SeedRule::XorThreads(seed),
        counters: parsed.value("-g").map(str::to_string),
        timeline: parsed.interval("-T")?,
        inject: parsed.value("--inject").map(str::to_string),
        filters: Vec::new(),
    })
}

fn memo_from_args(parsed: &ParsedArgs) -> Option<MemoStore> {
    parsed.value("--store").map(|root| MemoStore::open(root, parsed.value("--epoch")))
}

fn run_command(parsed: &ParsedArgs) -> Result<i32> {
    let trace_sink = likwid::trace::begin_cli(parsed)?;
    let sweep = sweep_from_args(parsed)?;
    let store = memo_from_args(parsed);
    let opts = RunOptions {
        workers: parse_count(parsed, "-W", default_workers())?,
        memo: store.as_ref(),
        daemons: &[],
    };
    let outcome = run_sweep(&sweep, &opts)?;
    if let Some(sink) = trace_sink {
        sink.finish()?;
    }
    let target = parsed.output()?;
    target
        .write(&target.format.render(&fleet_report(&sweep, &outcome)))
        .map_err(|e| LikwidError::Output(format!("cannot write output: {e}")))?;
    if let Some(path) = parsed.value("--trajectory") {
        fs::write(path, Trajectory::from_outcome(&outcome).encode())
            .map_err(|e| LikwidError::Output(format!("cannot write '{path}': {e}")))?;
    }
    eprintln!("{}", outcome.stats.summary_line());
    Ok(0)
}

fn compare_command(parsed: &ParsedArgs) -> Result<i32> {
    let [_, baseline_path, current_path] = parsed.positionals() else {
        return Err(LikwidError::Usage(
            "compare takes exactly two trajectory files: compare BASELINE CURRENT".into(),
        ));
    };
    let read = |path: &String| -> Result<Trajectory> {
        let text = fs::read_to_string(path)
            .map_err(|e| LikwidError::Usage(format!("cannot read '{path}': {e}")))?;
        Trajectory::parse(&text).map_err(|e| LikwidError::Usage(format!("{path}: {e}")))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let mut cfg = CompareConfig::default();
    if let Some(text) = parsed.value("--threshold") {
        cfg.min_rel = text
            .parse::<f64>()
            .map_err(|_| LikwidError::Usage(format!("--threshold: bad ratio '{text}'")))?;
    }
    let outcome = compare(&baseline, &current, &cfg);
    let target = parsed.output()?;
    target
        .write(&target.format.render(&compare_report(&outcome)))
        .map_err(|e| LikwidError::Output(format!("cannot write output: {e}")))?;
    Ok(if outcome.regressed() { EXIT_REGRESSED } else { 0 })
}

fn ls_command(parsed: &ParsedArgs) -> Result<i32> {
    let store = memo_from_args(parsed)
        .ok_or_else(|| LikwidError::Usage("ls requires --store <dir>".into()))?;
    let entries = store.entries();
    let mut report = likwid::Report::new("likwid-fleet ls");
    let mut table = likwid::report::Table::bordered(vec!["digest", "point"]);
    for (digest, key) in &entries {
        table.push(likwid::report::Row::new(vec![
            likwid::report::Value::Str(digest.clone()),
            likwid::report::Value::Str(key.clone()),
        ]));
    }
    report.push(
        likwid::report::Section::new("memo", likwid::report::Body::Table(table)).with_heading(
            format!("Memo store {} (epoch {})", store.root().display(), store.epoch()),
        ),
    );
    let target = parsed.output()?;
    target
        .write(&target.format.render(&report))
        .map_err(|e| LikwidError::Output(format!("cannot write output: {e}")))?;
    Ok(0)
}

/// The full front end: parse, dispatch, render. Returns the process exit
/// code (0 ok, 1 usage/harness error, [`EXIT_REGRESSED`] on a failed
/// compare).
pub fn fleet_main(args: &[String]) -> i32 {
    let spec = fleet_spec();
    let dispatch = || -> Result<i32> {
        let parsed = spec.parse(args)?;
        if parsed.help_requested() {
            print!("{}", spec.help_text());
            return Ok(0);
        }
        match parsed.positionals().first().map(String::as_str) {
            None | Some("run") => run_command(&parsed),
            Some("compare") => compare_command(&parsed),
            Some("ls") => ls_command(&parsed),
            Some(other) => {
                Err(LikwidError::Usage(format!("unknown command '{other}' (run, compare, ls)")))
            }
        }
    };
    match dispatch() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("likwid-fleet: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn axis_flags_build_the_sweep() {
        let parsed = fleet_spec()
            .parse(&args(&[
                "run",
                "-t",
                "triad,copy",
                "-M",
                "core2-quad,atom",
                "-p",
                "scatter,unpinned",
                "-C",
                "icc,gcc",
                "-F",
                "on,off",
                "-N",
                "1,2",
                "-n",
                "3",
                "--seed",
                "7",
            ]))
            .unwrap();
        let sweep = sweep_from_args(&parsed).unwrap();
        assert_eq!(sweep.workloads.len(), 2);
        assert_eq!(sweep.presets, vec![MachinePreset::Core2Quad, MachinePreset::Atom]);
        assert_eq!(sweep.personalities.len(), 2);
        assert_eq!(sweep.placements, vec![PlacementAxis::Scatter, PlacementAxis::Unpinned]);
        assert_eq!(sweep.prefetchers.len(), 2);
        assert_eq!(sweep.threads, ThreadsAxis::Counts(vec![1, 2]));
        assert_eq!(sweep.samples, 3);
        assert_eq!(sweep.seed, SeedRule::XorThreads(7));
        // 2 workloads x 2 presets x 2 personalities x 2 placements x 2 pf x 2 threads
        assert_eq!(sweep.expand().unwrap().len(), 64);
    }

    #[test]
    fn bad_axis_values_are_usage_errors() {
        for bad in [
            vec!["run", "-M", "cray-1"],
            vec!["run", "-p", "sideways"],
            vec!["run", "-C", "fortran"],
            vec!["run", "-F", "maybe"],
            vec!["run", "-N", "two"],
            vec!["run", "-b", "a-lot"],
        ] {
            let parsed = fleet_spec().parse(&args(&bad)).unwrap();
            assert!(sweep_from_args(&parsed).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn help_names_the_subcommands_and_the_multiplex_rule() {
        let help = fleet_spec().help_text();
        assert!(help.contains("compare BASELINE CURRENT"));
        assert!(help.contains("multiplex"));
        assert!(help.contains("--store"));
    }

    #[test]
    fn stream_spelling_selects_the_paper_triad() {
        let parsed = fleet_spec().parse(&args(&["run", "-t", "stream"])).unwrap();
        let sweep = sweep_from_args(&parsed).unwrap();
        assert_eq!(sweep.workloads, vec![WorkloadSpec::StreamTriad]);
    }
}

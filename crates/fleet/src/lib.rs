//! The experiment fleet runner: declarative matrix sweeps over the
//! [`likwid_workloads::Experiment`] harness.
//!
//! The paper's results are a matrix — {kernels × machines × pinnings ×
//! prefetcher states} — but an `Experiment` measures one point at a time.
//! This crate runs the whole matrix:
//!
//! * [`spec`] — the declarative [`SweepSpec`]: axes over workload, machine
//!   preset, compiler personality, placement, prefetcher state and thread
//!   count, expanded by cartesian product (with per-axis filters) into
//!   [`ExperimentPoint`]s;
//! * [`point`] — executing one point in isolation: panics and fault-plan
//!   failures degrade that point to a typed [`PointError`], never the
//!   sweep;
//! * [`sched`] — the work-stealing scheduler running points in parallel
//!   over a std-thread pool, optionally routing timeline points through a
//!   shared [`likwid_daemon::Daemon`];
//! * [`memo`] — the content-addressed on-disk memo store: results keyed by
//!   a canonical digest of the full point spec plus a code-epoch tag, so
//!   identical replays are pure and a re-run sweep only executes new
//!   points (cache hit ≡ cache miss, bit-identically);
//! * [`report`] — the cross-point comparison [`likwid::Report`]: per-axis
//!   pivot tables and best/worst deltas, fully deterministic (byte-equal
//!   between cold and warm runs, whatever the worker count);
//! * [`trajectory`] — the machine-readable `BENCH_fleet.json` trajectory
//!   and the regression `compare` between two trajectory files, with a
//!   relative-spread-aware threshold;
//! * [`cli`] — the `likwid-fleet` binary (`run` / `compare` / `ls`).

pub mod cli;
pub mod memo;
pub mod point;
pub mod report;
pub mod sched;
pub mod spec;
pub mod trajectory;

pub use memo::{MemoStore, CODE_EPOCH};
pub use point::{execute, PointError, PointOutcome, PointResult};
pub use report::fleet_report;
pub use sched::{run_sweep, RunOptions, RunStats, SweepOutcome};
pub use spec::{
    ExperimentPoint, PlacementAxis, PointFilter, PrefetcherState, SeedRule, SweepSpec, ThreadsAxis,
    WorkloadSpec,
};
pub use trajectory::{compare, compare_report, CompareConfig, CompareOutcome, Trajectory};

//! The content-addressed on-disk memo store.
//!
//! Identical experiment replays are pure — the simulated machine has no
//! entropy beyond the point spec — so a completed point can be cached and
//! replayed for free. Layout:
//!
//! ```text
//! <root>/<epoch>/<digest>.json
//! ```
//!
//! where `<digest>` is [`crate::ExperimentPoint::digest_hex`] (128 bits
//! over the canonical point spec) and `<epoch>` is the [`CODE_EPOCH`] tag.
//! **Invalidation rule:** results depend on the simulator and harness
//! code, not just the spec, so any change that alters measured values must
//! bump `CODE_EPOCH` — old entries are then simply never looked up again
//! (and can be garbage-collected by deleting the old epoch directory).
//! Each entry stores its full canonical spec; a lookup whose stored spec
//! does not match byte-for-byte is treated as a miss, so even a digest
//! collision cannot alias two points. Only clean results are memoized:
//! errored and fault-injected points always re-execute.

use std::fs;
use std::path::{Path, PathBuf};

use likwid_daemon::jsonv::{self, JsonValue};

use crate::point::{result_from_json, result_to_json, PointResult};
use crate::spec::ExperimentPoint;

/// The code-epoch tag baked into this build. Bump on any change to the
/// simulator, harness or canonicalization that alters results (see the
/// pinned `canonical_spec_format_is_pinned` test in `likwid-workloads`).
pub const CODE_EPOCH: &str = "epoch-001";

/// A handle on one memo store root. Cheap to clone; safe to share across
/// scheduler workers (entries are written atomically via temp + rename,
/// and two workers never race on the same point).
#[derive(Debug, Clone)]
pub struct MemoStore {
    root: PathBuf,
    epoch: String,
}

impl MemoStore {
    /// Open (lazily — nothing is created until the first store) a memo
    /// store at `root`, under the given epoch tag or [`CODE_EPOCH`].
    pub fn open(root: impl Into<PathBuf>, epoch: Option<&str>) -> Self {
        MemoStore { root: root.into(), epoch: epoch.unwrap_or(CODE_EPOCH).to_string() }
    }

    /// The store's epoch tag.
    pub fn epoch(&self) -> &str {
        &self.epoch
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.root.join(&self.epoch).join(format!("{digest}.json"))
    }

    /// Look a point up; `Some` only for a clean hit whose stored canonical
    /// spec matches byte-for-byte.
    pub fn lookup(&self, point: &ExperimentPoint) -> Option<PointResult> {
        let digest = point.digest_hex().ok()?;
        let canonical = point.canonical().ok()?;
        let text = fs::read_to_string(self.entry_path(&digest)).ok()?;
        let doc = jsonv::JsonValue::parse(&text).ok()?;
        if doc.get("spec")?.as_str()? != canonical {
            return None;
        }
        result_from_json(doc.get("result")?)
    }

    /// Memoize a clean result. Best-effort: IO errors are reported but a
    /// full disk must not fail the sweep.
    pub fn store(&self, point: &ExperimentPoint, result: &PointResult) -> std::io::Result<()> {
        let digest = point
            .digest_hex()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let canonical = point
            .canonical()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let doc = JsonValue::Obj(vec![
            ("fleet_memo".to_string(), JsonValue::UInt(1)),
            ("epoch".to_string(), JsonValue::Str(self.epoch.clone())),
            ("key".to_string(), JsonValue::Str(point.key())),
            ("spec".to_string(), JsonValue::Str(canonical)),
            ("result".to_string(), result_to_json(result)),
        ]);
        let path = self.entry_path(&digest);
        let dir = path.parent().expect("entry paths always have a parent");
        fs::create_dir_all(dir)?;
        // Atomic publish: a concurrent reader sees the old entry or the
        // new one, never a torn write.
        let tmp = dir.join(format!(".{digest}.tmp"));
        fs::write(&tmp, doc.encode() + "\n")?;
        fs::rename(&tmp, &path)
    }

    /// Enumerate the entries of this epoch as `(digest, point key)`,
    /// sorted by digest (the `ls` subcommand).
    pub fn entries(&self) -> Vec<(String, String)> {
        let dir = self.root.join(&self.epoch);
        let mut out = Vec::new();
        let Ok(listing) = fs::read_dir(&dir) else { return out };
        for entry in listing.flatten() {
            let path = entry.path();
            if path.extension().map(|e| e != "json").unwrap_or(true) {
                continue;
            }
            let digest = match path.file_stem().and_then(|s| s.to_str()) {
                Some(s) => s.to_string(),
                None => continue,
            };
            let key = fs::read_to_string(&path)
                .ok()
                .and_then(|text| jsonv::JsonValue::parse(&text).ok())
                .and_then(|doc| doc.get("key")?.as_str().map(str::to_string))
                .unwrap_or_else(|| "<unreadable>".to_string());
            out.push((digest, key));
        }
        out.sort();
        out
    }

    /// The store root (for messages).
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::execute;
    use crate::spec::{SeedRule, SweepSpec, ThreadsAxis, WorkloadSpec};
    use likwid_x86_machine::MachinePreset;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("likwid-fleet-memo-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn points() -> Vec<ExperimentPoint> {
        let mut spec = SweepSpec::new(
            WorkloadSpec::Kernel { name: "daxpy".into(), working_set_bytes: 1 << 20, passes: 1 },
            MachinePreset::Core2Quad,
        );
        spec.threads = ThreadsAxis::Counts(vec![1, 2]);
        spec.samples = 2;
        spec.seed = SeedRule::Fixed(11);
        spec.expand().unwrap()
    }

    #[test]
    fn store_then_lookup_is_bit_identical() {
        let dir = tempdir("roundtrip");
        let store = MemoStore::open(&dir, None);
        let points = points();
        let result = execute(&points[0], &[]).expect("clean point");
        assert!(store.lookup(&points[0]).is_none(), "cold store misses");
        store.store(&points[0], &result).unwrap();
        assert_eq!(store.lookup(&points[0]), Some(result), "hit ≡ miss, bit-identically");
        assert!(store.lookup(&points[1]).is_none(), "other points still miss");
        assert_eq!(store.entries().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_change_invalidates_without_deleting() {
        let dir = tempdir("epoch");
        let store = MemoStore::open(&dir, None);
        let points = points();
        let result = execute(&points[0], &[]).expect("clean point");
        store.store(&points[0], &result).unwrap();
        let next = MemoStore::open(&dir, Some("epoch-002"));
        assert!(next.lookup(&points[0]).is_none(), "a new epoch never reads old entries");
        assert_eq!(store.lookup(&points[0]), Some(result), "the old epoch keeps its entries");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_spec_mismatch_is_a_miss_not_a_wrong_answer() {
        let dir = tempdir("collide");
        let store = MemoStore::open(&dir, None);
        let points = points();
        let result = execute(&points[0], &[]).expect("clean point");
        store.store(&points[0], &result).unwrap();
        // Forge a colliding entry: same digest file, different stored spec.
        let digest = points[0].digest_hex().unwrap();
        let path = store.entry_path(&digest);
        let forged = fs::read_to_string(&path).unwrap().replace("daxpy", "triad");
        fs::write(&path, forged).unwrap();
        assert!(store.lookup(&points[0]).is_none(), "mismatched spec must read as a miss");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Isolated execution of one experiment point.
//!
//! A sweep never dies with a point: [`execute`] catches panics, turns
//! harness errors into [`PointError::Failed`], and classifies runs whose
//! measurement session had to heal (fault injection, dead cpus) as
//! [`PointError::Degraded`] — degraded counters are not comparable across
//! a matrix, so the point is typed out instead of silently polluting the
//! pivot tables.

use std::panic::{catch_unwind, AssertUnwindSafe};

use likwid_daemon::{jsonv::JsonValue, Daemon};

use crate::spec::ExperimentPoint;

/// The distilled result of one point: everything the cross-point report
/// and the trajectory need, and nothing machine-sized (the memo store
/// serializes this).
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Per-sample reported bandwidths in MB/s.
    pub bandwidths: Vec<f64>,
    /// Modelled runtime of the measured sample (sample 0), seconds.
    pub runtime_s: f64,
    /// MFlops/s of the measured sample.
    pub mflops: f64,
    /// Kernel iterations of the measured sample.
    pub iterations: u64,
}

/// Why a point did not produce a comparable result. The sweep completes
/// either way; errored points are typed rows in the report.
#[derive(Debug, Clone, PartialEq)]
pub enum PointError {
    /// The harness returned an error (bad spec, usage conflict).
    Failed(String),
    /// The workload or harness panicked; the payload is captured.
    Panicked(String),
    /// The run completed but the measurement session degraded (healing
    /// diagnostics present — dead cpus, stuck registers).
    Degraded(String),
}

impl PointError {
    /// Short status tag (`failed` / `panicked` / `degraded`), used in
    /// reports and trajectory files.
    pub fn status(&self) -> &'static str {
        match self {
            PointError::Failed(_) => "failed",
            PointError::Panicked(_) => "panicked",
            PointError::Degraded(_) => "degraded",
        }
    }

    /// The captured message.
    pub fn message(&self) -> &str {
        match self {
            PointError::Failed(m) | PointError::Panicked(m) | PointError::Degraded(m) => m,
        }
    }
}

/// What one point produced.
pub type PointOutcome = Result<PointResult, PointError>;

/// Run one point in isolation. Timeline points whose preset matches a
/// shared daemon's machine are measured through that daemon
/// ([`likwid_workloads::Experiment::via_daemon`]); everything else runs a
/// private machine. Panics and errors degrade to [`PointError`].
pub fn execute(point: &ExperimentPoint, daemons: &[&Daemon<'_>]) -> PointOutcome {
    match catch_unwind(AssertUnwindSafe(|| run_point(point, daemons))) {
        Ok(outcome) => outcome,
        Err(payload) => Err(PointError::Panicked(panic_message(payload))),
    }
}

fn run_point(point: &ExperimentPoint, daemons: &[&Daemon<'_>]) -> PointOutcome {
    let (exp, workload) = point.build().map_err(|e| PointError::Failed(e.to_string()))?;
    let daemon = if point.timeline.is_some() && point.counters.is_some() && point.inject.is_none() {
        daemons.iter().find(|d| d.machine().preset() == point.preset)
    } else {
        None
    };
    let result = match daemon {
        Some(d) => exp.via_daemon(workload.as_ref(), d),
        None => exp.run(workload.as_ref()),
    }
    .map_err(|e| PointError::Failed(e.to_string()))?;
    if let Some(counters) = &result.counters {
        if !counters.diagnostics.is_empty() {
            let first = &counters.diagnostics[0];
            return Err(PointError::Degraded(format!(
                "{} degradation(s); first: {}: {}",
                counters.diagnostics.len(),
                first.subject,
                first.reason
            )));
        }
    }
    let first = result.first();
    Ok(PointResult {
        runtime_s: first.runtime_s,
        mflops: first.mflops,
        iterations: first.iterations,
        bandwidths: result.bandwidths(),
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serialize a result for the memo store (lossless: the jsonv codec
/// renders f64 shortest-round-trip).
pub fn result_to_json(result: &PointResult) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "bandwidths".to_string(),
            JsonValue::Arr(result.bandwidths.iter().map(|&b| JsonValue::real(b)).collect()),
        ),
        ("runtime_s".to_string(), JsonValue::real(result.runtime_s)),
        ("mflops".to_string(), JsonValue::real(result.mflops)),
        ("iterations".to_string(), JsonValue::UInt(result.iterations)),
    ])
}

/// Deserialize a memoized result; `None` on any shape mismatch (the
/// caller treats that as a cache miss).
pub fn result_from_json(value: &JsonValue) -> Option<PointResult> {
    let bandwidths = value
        .get("bandwidths")?
        .as_arr()?
        .iter()
        .map(|v| v.as_f64())
        .collect::<Option<Vec<_>>>()?;
    Some(PointResult {
        bandwidths,
        runtime_s: value.get("runtime_s")?.as_f64()?,
        mflops: value.get("mflops")?.as_f64()?,
        iterations: value.get("iterations")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SeedRule, SweepSpec, ThreadsAxis, WorkloadSpec};
    use likwid_x86_machine::MachinePreset;

    fn one_point() -> ExperimentPoint {
        let mut spec = SweepSpec::new(
            WorkloadSpec::Kernel { name: "copy".into(), working_set_bytes: 1 << 20, passes: 1 },
            MachinePreset::Core2Quad,
        );
        spec.threads = ThreadsAxis::Counts(vec![2]);
        spec.samples = 2;
        spec.seed = SeedRule::Fixed(3);
        spec.expand().unwrap().remove(0)
    }

    #[test]
    fn a_plain_point_executes_and_round_trips_through_json() {
        let result = execute(&one_point(), &[]).expect("counter-less point");
        assert_eq!(result.bandwidths.len(), 2);
        assert!(result.bandwidths[0] > 0.0);
        assert!(result.runtime_s > 0.0);
        let back = result_from_json(&result_to_json(&result)).expect("round trip");
        assert_eq!(back, result, "memo serialization must be lossless");
    }

    #[test]
    fn panics_degrade_to_a_typed_error() {
        let outcome = catch_unwind(AssertUnwindSafe(|| -> PointOutcome {
            panic!("boom in a workload");
        }))
        .unwrap_or_else(|payload| Err(PointError::Panicked(panic_message(payload))));
        let err = outcome.unwrap_err();
        assert_eq!(err.status(), "panicked");
        assert!(err.message().contains("boom"));
    }

    #[test]
    fn unknown_kernels_fail_not_panic() {
        let mut point = one_point();
        point.workload =
            WorkloadSpec::Kernel { name: "frobnicate".into(), working_set_bytes: 1, passes: 1 };
        let err = execute(&point, &[]).unwrap_err();
        assert_eq!(err.status(), "failed");
        assert!(err.message().contains("frobnicate"));
    }

    #[test]
    fn dead_cpu_fault_plans_mark_the_point_degraded() {
        let mut point = one_point();
        point.counters = Some("FLOPS_DP".into());
        point.inject = Some("dead=1@5".into());
        let err = execute(&point, &[]).unwrap_err();
        assert_eq!(err.status(), "degraded", "got {err:?}");
        assert!(err.message().contains("cpu"), "diagnostic names the cpu: {err:?}");
    }
}

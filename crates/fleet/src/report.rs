//! The deterministic cross-point report.
//!
//! One sweep renders as one [`likwid::Report`]: a header section, the
//! per-point table (expansion-ordered), one pivot table per axis that
//! actually varies, and the best/worst extremes. Everything in here is a
//! pure function of the sweep outcome — no wall-clock times, no memo-hit
//! counters — so a warm re-run renders byte-identically to the cold run
//! whatever the worker count (the CLI prints execution stats to stderr
//! instead).

use likwid::report::{Body, KvEntry, Report, Row, Section, Table, Value};
use likwid_workloads::BoxStats;

use crate::point::PointOutcome;
use crate::sched::SweepOutcome;
use crate::spec::{ExperimentPoint, SweepSpec};

/// The axes a point can be grouped by in a pivot table, with their
/// canonical cell spellings.
const AXES: &[(&str, fn(&ExperimentPoint) -> String)] = &[
    ("workload", |p| p.workload.canonical()),
    ("preset", |p| p.preset.id().to_string()),
    ("personality", |p| format!("{:?}", p.personality)),
    ("placement", |p| p.placement.canonical()),
    ("prefetchers", |p| p.prefetchers.canonical().to_string()),
    ("threads", |p| format!("t={}", p.threads)),
];

fn stats_of(outcome: &PointOutcome) -> Option<BoxStats> {
    outcome.as_ref().ok().and_then(|r| BoxStats::from_samples(&r.bandwidths))
}

/// Build the cross-point report of a completed sweep.
pub fn fleet_report(spec: &SweepSpec, outcome: &SweepOutcome) -> Report {
    let mut report = Report::new("likwid-fleet");
    report.push(header_section(spec, outcome));
    report.push(points_section(outcome));
    for &(axis, project) in AXES {
        if let Some(section) = pivot_section(outcome, axis, project) {
            report.push(section);
        }
    }
    if let Some(section) = extremes_section(outcome) {
        report.push(section);
    }
    report
}

fn header_section(spec: &SweepSpec, outcome: &SweepOutcome) -> Section {
    let mut entries = vec![
        KvEntry::new("points", Value::Count(outcome.points.len() as u64)),
        KvEntry::new("samples per point", Value::Count(spec.samples.max(1) as u64)),
        KvEntry::new("errors", Value::Count(outcome.stats.errors as u64)),
    ];
    if let Some(counters) = &spec.counters {
        entries.push(KvEntry::new("counters", Value::Str(counters.clone())));
    }
    if let Some(interval_s) = spec.timeline {
        entries.push(KvEntry::new("timeline interval s", Value::Real(interval_s)));
    }
    if let Some(plan) = &spec.inject {
        entries.push(KvEntry::new("fault plan", Value::Str(plan.clone())));
    }
    Section::new("sweep", Body::KeyValues(entries))
        .with_boxed_heading("Experiment fleet sweep")
        .with_rule_after()
}

fn stat_cells(stats: Option<&BoxStats>) -> Vec<Value> {
    match stats {
        Some(s) => vec![
            Value::Real(s.median),
            Value::Real(s.min),
            Value::Real(s.max),
            Value::Real(s.relative_spread().unwrap_or(0.0)),
        ],
        None => vec![
            Value::Str("-".into()),
            Value::Str("-".into()),
            Value::Str("-".into()),
            Value::Str("-".into()),
        ],
    }
}

fn points_section(outcome: &SweepOutcome) -> Section {
    let mut table = Table::bordered(vec![
        "point",
        "status",
        "median MB/s",
        "min MB/s",
        "max MB/s",
        "rel spread",
    ]);
    for (point, result) in &outcome.points {
        let status = match result {
            Ok(_) => "ok".to_string(),
            Err(e) => e.status().to_string(),
        };
        let stats = stats_of(result);
        let mut values = vec![Value::Str(point.key()), Value::Str(status)];
        values.extend(stat_cells(stats.as_ref()));
        table.push(Row::new(values));
    }
    Section::new("points", Body::Table(table)).with_heading("Points")
}

/// Pivot over one axis; `None` when the axis does not vary across the
/// sweep (a one-value pivot restates the points table).
fn pivot_section(
    outcome: &SweepOutcome,
    axis: &str,
    project: fn(&ExperimentPoint) -> String,
) -> Option<Section> {
    // First-seen order follows expansion order, hence is deterministic.
    let mut groups: Vec<(String, Vec<&PointOutcome>)> = Vec::new();
    for (point, result) in &outcome.points {
        let cell = project(point);
        match groups.iter_mut().find(|(name, _)| *name == cell) {
            Some((_, members)) => members.push(result),
            None => groups.push((cell, vec![result])),
        }
    }
    if groups.len() < 2 {
        return None;
    }
    let mut table = Table::bordered(vec![
        axis.to_string(),
        "points".to_string(),
        "ok".to_string(),
        "best median MB/s".to_string(),
        "mean median MB/s".to_string(),
    ]);
    for (cell, members) in groups {
        let medians: Vec<f64> =
            members.iter().filter_map(|o| stats_of(o)).map(|s| s.median).collect();
        let mut values = vec![
            Value::Str(cell),
            Value::Count(members.len() as u64),
            Value::Count(medians.len() as u64),
        ];
        if medians.is_empty() {
            values.push(Value::Str("-".into()));
            values.push(Value::Str("-".into()));
        } else {
            let best = medians.iter().cloned().fold(f64::MIN, f64::max);
            let mean = medians.iter().sum::<f64>() / medians.len() as f64;
            values.push(Value::Real(best));
            values.push(Value::Real(mean));
        }
        table.push(Row::new(values));
    }
    Some(
        Section::new(format!("pivot_{axis}"), Body::Table(table))
            .with_heading(format!("Pivot: {axis}")),
    )
}

fn extremes_section(outcome: &SweepOutcome) -> Option<Section> {
    let mut measured: Vec<(&ExperimentPoint, BoxStats)> = outcome
        .points
        .iter()
        .filter_map(|(point, result)| stats_of(result).map(|s| (point, s)))
        .collect();
    if measured.len() < 2 {
        return None;
    }
    // Stable under ties: expansion order breaks them.
    let best = measured
        .iter()
        .enumerate()
        .max_by(|(ia, (_, a)), (ib, (_, b))| a.median.total_cmp(&b.median).then(ib.cmp(ia)))
        .map(|(_, m)| m)
        .copied()?;
    measured.retain(|(p, _)| !std::ptr::eq(*p, best.0));
    let worst = measured
        .iter()
        .enumerate()
        .min_by(|(ia, (_, a)), (ib, (_, b))| a.median.total_cmp(&b.median).then(ia.cmp(ib)))
        .map(|(_, m)| m)
        .copied()?;
    let delta_pct =
        if worst.1.median == 0.0 { 0.0 } else { (best.1.median / worst.1.median - 1.0) * 100.0 };
    let entries = vec![
        KvEntry::new("best point", Value::Str(best.0.key())),
        KvEntry::new("best median MB/s", Value::Real(best.1.median)),
        KvEntry::new("worst point", Value::Str(worst.0.key())),
        KvEntry::new("worst median MB/s", Value::Real(worst.1.median)),
        KvEntry::new("best over worst %", Value::Real(delta_pct)),
    ];
    Some(Section::new("extremes", Body::KeyValues(entries)).with_heading("Extremes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{run_sweep, RunOptions};
    use crate::spec::{PlacementAxis, SeedRule, SweepSpec, ThreadsAxis, WorkloadSpec};
    use likwid::report::Json;
    use likwid::report::Render;
    use likwid_x86_machine::MachinePreset;

    fn sweep() -> SweepSpec {
        let mut spec = SweepSpec::new(
            WorkloadSpec::Kernel { name: "triad".into(), working_set_bytes: 1 << 20, passes: 1 },
            MachinePreset::Core2Quad,
        );
        spec.placements = vec![PlacementAxis::Scatter, PlacementAxis::Unpinned];
        spec.threads = ThreadsAxis::Counts(vec![1, 2]);
        spec.samples = 3;
        spec.seed = SeedRule::XorThreads(7);
        spec
    }

    #[test]
    fn report_has_points_pivots_and_extremes() {
        let spec = sweep();
        let outcome = run_sweep(&spec, &RunOptions { workers: 2, ..Default::default() }).unwrap();
        let report = fleet_report(&spec, &outcome);
        assert_eq!(report.table("points").unwrap().num_rows(), 4);
        assert!(report.section("pivot_placement").is_some(), "placement varies");
        assert!(report.section("pivot_threads").is_some(), "threads vary");
        assert!(report.section("pivot_preset").is_none(), "one preset, no pivot");
        assert!(report.value("extremes", "best point").is_some());
        assert!(report.value("extremes", "best over worst %").unwrap().as_real().unwrap() >= 0.0);
    }

    #[test]
    fn report_is_byte_identical_across_worker_counts() {
        let spec = sweep();
        let a = run_sweep(&spec, &RunOptions { workers: 1, ..Default::default() }).unwrap();
        let b = run_sweep(&spec, &RunOptions { workers: 8, ..Default::default() }).unwrap();
        let render = |o: &SweepOutcome| Json.render(&fleet_report(&spec, o));
        assert_eq!(render(&a), render(&b));
    }
}

//! The work-stealing parallel scheduler.
//!
//! Points are dealt round-robin onto per-worker deques; each worker drains
//! its own queue from the front and steals from the back of its siblings
//! when idle, so a straggler point (a 24-thread STREAM sweep next to a
//! 1-thread one) never serializes the tail of the sweep. Results land in
//! expansion-order slots, so the outcome — and everything rendered from it
//! — is byte-identical whatever the worker count or steal order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use likwid::trace;
use likwid_daemon::Daemon;

use crate::memo::MemoStore;
use crate::point::{execute, PointOutcome};
use crate::spec::{ExperimentPoint, SweepSpec};

/// Execution counters of one sweep. Kept out of the deterministic report:
/// the CLI prints them to stderr, so stdout stays byte-identical between
/// cold and fully memoized runs. The counts are the structured source of
/// truth — the stderr line is derived from them by [`RunStats::summary_line`],
/// and the same quantities flow into the trace recorder as named counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Points in the expanded sweep.
    pub total: usize,
    /// Points actually executed.
    pub executed: usize,
    /// Points answered from the memo store.
    pub memo_hits: usize,
    /// Points that ended in a [`crate::PointError`].
    pub errors: usize,
    /// Successful steals (a worker took a point from a sibling's queue).
    pub steals: usize,
    /// Points completed per worker (hit or executed), worker-indexed.
    pub per_worker: Vec<usize>,
}

impl RunStats {
    /// The human execution summary the CLI prints to stderr — derived from
    /// the structured counts, never the other way round.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "likwid-fleet: {} points, {} executed, {} memo hits, {} errors",
            self.total, self.executed, self.memo_hits, self.errors
        );
        if self.per_worker.len() > 1 {
            let occupancy: Vec<String> =
                self.per_worker.iter().map(|points| points.to_string()).collect();
            line.push_str(&format!(
                ", {} steals, points/worker [{}]",
                self.steals,
                occupancy.join(" ")
            ));
        }
        line
    }
}

/// How a sweep runs.
#[derive(Clone, Copy)]
pub struct RunOptions<'a> {
    /// Worker threads (clamped to at least 1 and at most the point count).
    pub workers: usize,
    /// Optional memo store consulted before and filled after execution.
    pub memo: Option<&'a MemoStore>,
    /// Shared measurement daemons; a timeline point whose preset matches a
    /// daemon's machine is measured through it.
    pub daemons: &'a [&'a Daemon<'a>],
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions { workers: default_workers(), memo: None, daemons: &[] }
    }
}

/// The default worker count: available parallelism, capped at 8.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
}

/// A completed sweep: every point with its outcome, in expansion order.
#[derive(Debug)]
pub struct SweepOutcome {
    /// `(point, outcome)` pairs, expansion-ordered.
    pub points: Vec<(ExperimentPoint, PointOutcome)>,
    /// Execution counters.
    pub stats: RunStats,
}

/// Expand and execute a sweep. Only the expansion can fail (malformed
/// spec); point-level failures are typed outcomes inside the result.
pub fn run_sweep(spec: &SweepSpec, opts: &RunOptions<'_>) -> likwid::Result<SweepOutcome> {
    let points = spec.expand()?;
    let total = points.len();
    let workers = opts.workers.clamp(1, total.max(1));

    // Deal the points round-robin; stealing rebalances whatever this
    // initial split got wrong.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, queue) in (0..total).zip((0..workers).cycle()) {
        queues[queue].lock().unwrap().push_back(index);
    }

    let slots: Vec<Mutex<Option<PointOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let executed = AtomicUsize::new(0);
    let memo_hits = AtomicUsize::new(0);
    let steals = AtomicUsize::new(0);
    let per_worker: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();

    let _sweep = trace::span_args(
        trace::cat::FLEET,
        || "sweep".to_string(),
        || vec![("points", total.to_string()), ("workers", workers.to_string())],
    );
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let points = &points;
            let executed = &executed;
            let memo_hits = &memo_hits;
            let steals = &steals;
            let per_worker = &per_worker;
            scope.spawn(move || {
                let worker_span = trace::span_with(trace::cat::FLEET, || format!("worker{me}"));
                loop {
                    let index = {
                        let own = queues[me].lock().unwrap().pop_front();
                        match own {
                            Some(i) => Some(i),
                            // Steal from the *back* of a sibling: the oldest
                            // undone work, farthest from what the owner is on.
                            None => {
                                (0..queues.len()).filter(|&other| other != me).find_map(|other| {
                                    let stolen = queues[other].lock().unwrap().pop_back();
                                    if let Some(index) = stolen {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        trace::count(trace::cat::FLEET, "steals", 1);
                                        trace::instant_args(trace::cat::FLEET, "steal", || {
                                            vec![
                                                ("thief", me.to_string()),
                                                ("victim", other.to_string()),
                                                ("point", index.to_string()),
                                            ]
                                        });
                                    }
                                    stolen
                                })
                            }
                        }
                    };
                    let Some(index) = index else { break };
                    let point = &points[index];
                    let started = trace::now();
                    let memoizable = point.inject.is_none();
                    let memoized = match opts.memo {
                        Some(store) if memoizable => store.lookup(point),
                        _ => None,
                    };
                    let memo_hit = memoized.is_some();
                    let outcome = match memoized {
                        Some(result) => {
                            memo_hits.fetch_add(1, Ordering::Relaxed);
                            trace::count(trace::cat::FLEET, "memo_hit", 1);
                            Ok(result)
                        }
                        None => {
                            executed.fetch_add(1, Ordering::Relaxed);
                            trace::count(trace::cat::FLEET, "memo_miss", 1);
                            let outcome = execute(point, opts.daemons);
                            if let (Some(store), Ok(result), true) =
                                (opts.memo, outcome.as_ref(), memoizable)
                            {
                                if let Err(e) = store.store(point, result) {
                                    eprintln!(
                                        "likwid-fleet: memo write failed for {}: {e}",
                                        point.key()
                                    );
                                }
                            }
                            outcome
                        }
                    };
                    per_worker[me].fetch_add(1, Ordering::Relaxed);
                    trace::count_with(trace::cat::FLEET, || format!("worker{me}.points"), 1);
                    trace::complete_since(
                        trace::cat::FLEET,
                        started,
                        || "point".to_string(),
                        || {
                            vec![
                                ("index", index.to_string()),
                                ("key", point.key()),
                                ("memo", if memo_hit { "hit" } else { "miss" }.to_string()),
                                ("worker", me.to_string()),
                            ]
                        },
                    );
                    *slots[index].lock().unwrap() = Some(outcome);
                }
                // The scope unblocks when this closure returns — before the
                // thread-local trace buffer's exit-time flush. Hand the
                // buffer over explicitly (span closed first) so the last
                // worker's events cannot race the recorder's stop.
                drop(worker_span);
                trace::flush_thread();
            });
        }
    });

    let outcomes: Vec<PointOutcome> = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
        .collect();
    let errors = outcomes.iter().filter(|o| o.is_err()).count();
    Ok(SweepOutcome {
        stats: RunStats {
            total,
            executed: executed.into_inner(),
            memo_hits: memo_hits.into_inner(),
            errors,
            steals: steals.into_inner(),
            per_worker: per_worker.into_iter().map(AtomicUsize::into_inner).collect(),
        },
        points: points.into_iter().zip(outcomes).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlacementAxis, SeedRule, ThreadsAxis, WorkloadSpec};
    use likwid_x86_machine::MachinePreset;

    fn sweep() -> SweepSpec {
        let mut spec = SweepSpec::new(
            WorkloadSpec::Kernel { name: "copy".into(), working_set_bytes: 1 << 20, passes: 1 },
            MachinePreset::Core2Quad,
        );
        spec.threads = ThreadsAxis::Counts(vec![1, 2, 3, 4]);
        spec.samples = 2;
        spec.seed = SeedRule::XorThreads(21);
        spec
    }

    #[test]
    fn outcomes_are_expansion_ordered_for_any_worker_count() {
        let spec = sweep();
        let one = run_sweep(&spec, &RunOptions { workers: 1, ..Default::default() }).unwrap();
        let eight = run_sweep(&spec, &RunOptions { workers: 8, ..Default::default() }).unwrap();
        assert_eq!(one.stats.total, 4);
        assert_eq!(one.stats.executed, 4);
        assert_eq!(one.stats.errors, 0);
        let threads: Vec<usize> = one.points.iter().map(|(p, _)| p.threads).collect();
        assert_eq!(threads, vec![1, 2, 3, 4]);
        for ((pa, oa), (pb, ob)) in one.points.iter().zip(&eight.points) {
            assert_eq!(pa, pb);
            assert_eq!(oa, ob, "worker count must not change results");
        }
        // The structured occupancy counts always account for every point.
        assert_eq!(one.stats.per_worker, vec![4]);
        assert_eq!(one.stats.steals, 0, "one worker has nobody to steal from");
        assert_eq!(eight.stats.per_worker.len(), 4, "workers are clamped to the point count");
        assert_eq!(eight.stats.per_worker.iter().sum::<usize>(), 4);
    }

    #[test]
    fn the_stderr_summary_is_derived_from_the_structured_counts() {
        let stats = RunStats {
            total: 4,
            executed: 3,
            memo_hits: 1,
            errors: 0,
            steals: 2,
            per_worker: vec![3, 1],
        };
        assert_eq!(
            stats.summary_line(),
            "likwid-fleet: 4 points, 3 executed, 1 memo hits, 0 errors, \
             2 steals, points/worker [3 1]"
        );
        // Single-worker runs keep the historical short form.
        let serial = RunStats { per_worker: vec![4], total: 4, executed: 4, ..Default::default() };
        assert_eq!(
            serial.summary_line(),
            "likwid-fleet: 4 points, 4 executed, 0 memo hits, 0 errors"
        );
    }

    #[test]
    fn a_poisoned_point_never_kills_the_sweep() {
        let mut spec = sweep();
        spec.counters = Some("FLOPS_DP".into());
        spec.inject = Some("dead=3@5".into());
        spec.placements = vec![PlacementAxis::Pin(vec![3])];
        spec.threads = ThreadsAxis::Counts(vec![1]);
        let outcome = run_sweep(&spec, &RunOptions::default()).unwrap();
        assert_eq!(outcome.stats.total, 1);
        assert_eq!(outcome.stats.errors, 1);
        let err = outcome.points[0].1.as_ref().unwrap_err();
        assert_eq!(err.status(), "degraded");
    }
}
